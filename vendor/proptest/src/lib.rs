//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property as `cases` seeded random samples (deterministic per
//! test name). No shrinking: a failing case panics with the sampled inputs
//! unshrunk. Covers exactly the surface the workspace's property tests
//! use: range / tuple / `Just` / `prop_oneof!` / `collection::vec`
//! strategies, `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, and `ProptestConfig::with_cases`.

use rand::rngs::StdRng;
use rand::Rng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw again, don't count the case.
    Reject,
    /// `prop_assert!`-style failure.
    Fail(String),
}

/// Per-property configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: usize,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (subset of proptest's `Strategy`: sampling only).
pub trait Strategy {
    /// The type of the generated values.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Integer-like types samplable from ranges.
pub trait SampleRange: Copy + PartialOrd + std::fmt::Debug {
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange for $t {
                fn sample_inclusive(lo: $t, hi: $t, rng: &mut StdRng) -> $t {
                    debug_assert!(lo <= hi);
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
        debug_assert!(lo <= hi);
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

impl<T: SampleRange> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        // Half-open: rejection-sample away the end point for floats; for
        // integers shift the upper bound down.
        loop {
            let v = T::sample_inclusive(self.start, self.end, rng);
            if contains_half_open(self, &v) {
                return v;
            }
        }
    }
}

fn contains_half_open<T: PartialOrd>(r: &std::ops::Range<T>, v: &T) -> bool {
    *v >= r.start && *v < r.end
}

impl<T: SampleRange> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each element drawn from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs one property body over `cases` accepted samples. Used by the
/// `proptest!` expansion; not part of the public proptest API.
pub fn run_property<F>(name: &str, cfg: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0usize;
    let mut draws = 0usize;
    let max_draws = cfg.cases.saturating_mul(50).max(100);
    while accepted < cfg.cases {
        draws += 1;
        assert!(
            draws <= max_draws,
            "{name}: too many prop_assume! rejections ({draws} draws for {accepted} cases)"
        );
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {accepted}: {msg}")
            }
        }
    }
}

/// Declares property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &cfg, |rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($pat in $strat),+ ) $body
            )*
        }
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Rejects the current sample without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies (stand-in for `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..=8, y in 0u64..100, f in 0.5f64..2.0) {
            prop_assert!((3..=8).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(v in collection::vec((0u32..10, prop_oneof![Just(1u8), Just(3u8)]), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10);
                prop_assert!(b == 1 || b == 3);
            }
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let mut draws_a = Vec::new();
        let mut draws_b = Vec::new();
        for out in [&mut draws_a, &mut draws_b] {
            super::run_property("det", &ProptestConfig::with_cases(10), |rng| {
                out.push(Strategy::sample(&(0u64..1000), rng));
                Ok(())
            });
            let _ = rand::rngs::StdRng::seed_from_u64(0);
        }
        assert_eq!(draws_a, draws_b);
    }
}
