//! No-op derives backing the offline `serde` stand-in.
//!
//! Emits empty `impl serde::Serialize` / `impl serde::Deserialize` blocks
//! for the derived type. Only non-generic structs and enums are supported —
//! which covers every derive in this workspace (checked: no generic type
//! derives Serialize/Deserialize here).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword. Attribute
/// and doc-comment tokens before the item never contain a bare top-level
/// `struct`/`enum` ident, so a flat scan is sufficient.
fn derived_type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                for tt2 in tokens.by_ref() {
                    if let TokenTree::Ident(name) = tt2 {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum found in derive input")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = derived_type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = derived_type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
