//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *shape* of serde that the codebase actually uses: the two marker
//! traits and their derives. Nothing in the workspace serializes through
//! serde yet (the binary trace format is hand-rolled and the bench JSON is
//! hand-formatted), so the traits carry no methods. If real serialization
//! is ever needed, replace this crate with the real `serde` in
//! `Cargo.toml` — call sites need no changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
