//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface this workspace uses: `rngs::StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and [`Rng::gen`] /
//! [`Rng::gen_range`] for `f64`. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic and high quality, but **not**
//! stream-compatible with the real `rand` crate's `StdRng` (ChaCha12).
//! All seeds in this workspace originate here, so every simulation result
//! is reproducible against this generator.

pub mod rngs {
    /// Deterministic 64-bit generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Exposes the raw xoshiro256** state, e.g. for checkpointing a
        /// simulation mid-stream. Restore with [`StdRng::from_state`].
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// The restored generator continues the exact same stream.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to fill xoshiro state.
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Maps one uniform `u64` draw to a sample.
    fn from_draw(draw: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_draw(draw: u64) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_draw(draw: u64) -> u64 {
        draw
    }
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// One uniform 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (for `f64`: uniform in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_draw(self.next_u64())
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    #[inline]
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        debug_assert!(range.start < range.end);
        range.start + self.gen::<f64>() * (range.end - range.start)
    }
}

impl Rng for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = rngs::StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
        }
    }
}
