//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the binary trace format uses: `BytesMut` as an
//! append buffer with big-endian `put_*` (matching the real crate's
//! network byte order), `freeze`, and `Bytes` as a cheap view supporting
//! big-endian `get_*` cursor reads, `slice`, and `Deref<Target = [u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over shared immutable bytes (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes into an owned view.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Consumes 2 bytes, big-endian.
    fn get_u16(&mut self) -> u16;
    /// Consumes 4 bytes, big-endian.
    fn get_u32(&mut self) -> u32;
    /// Consumes 8 bytes, big-endian.
    fn get_u64(&mut self) -> u64;
    /// Consumes 8 bytes as an IEEE-754 double, big-endian.
    fn get_f64(&mut self) -> f64;
}

/// Append interface for growable buffers (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends 2 bytes, big-endian.
    fn put_u16(&mut self, v: u16);
    /// Appends 4 bytes, big-endian.
    fn put_u32(&mut self, v: u32);
    /// Appends 8 bytes, big-endian.
    fn put_u64(&mut self, v: u64);
    /// Appends 8 bytes as an IEEE-754 double, big-endian.
    fn put_f64(&mut self, v: f64);
}

/// Immutable shared byte view with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view over `range` of this view (no copy).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        self.take(N).try_into().expect("exact length")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }
}

/// Growable append buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_f64(std::f64::consts::PI);
        b.put_slice(b"tail");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 2 + 4 + 8 + 8 + 4);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64(), std::f64::consts::PI);
        assert_eq!(&r.copy_to_bytes(4)[..], b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_wire_order() {
        let mut b = BytesMut::with_capacity(2);
        b.put_u16(0x0102);
        assert_eq!(&b.freeze()[..], &[1, 2]);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.slice(1..2).to_vec(), vec![2]);
    }
}
