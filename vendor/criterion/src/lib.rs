//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's benches compiling and runnable without registry
//! access. Each `bench_function` runs the closure for a warm-up iteration
//! plus `sample_size` timed samples and prints min/mean per-iteration
//! wall-clock times. No statistics, plots, or baselines — swap in the real
//! `criterion` when the environment has network access; the bench sources
//! need no changes.

use std::time::{Duration, Instant};

/// Number of timed samples when the bench does not override it.
const DEFAULT_SAMPLES: usize = 10;

/// Opaque-to-the-optimizer value sink (`criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing context handed to bench closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, one warm-up call plus `samples` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let min = results.iter().min().expect("nonempty");
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    println!(
        "{name}: min {min:.2?}, mean {mean:.2?} over {} samples",
        results.len()
    );
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    report(name, &b.results);
}

/// Named group of benches sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-bench sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one named bench in the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.into()),
            self.samples,
            &mut f,
        );
        self
    }

    /// Ends the group (no-op; parity with criterion's API).
    pub fn finish(&mut self) {
        let _ = &self.parent;
    }
}

/// Bench registry and runner (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named bench at the default sample count.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.into(), DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Opens a named bench group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// Declares a bench group runner (stand-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` (stand-in for `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
