//! §IV: cycle-accurate trace simulation of the NPB kernels (Fig. 6) and
//! the FT dynamic-energy accounting (Table V).
//!
//! ```sh
//! cargo run --release --example npb_simulation          # all kernels
//! cargo run --release --example npb_simulation CG       # one kernel
//! ```

use hyppi::experiments::npb::{fig6_topology, FIG6_SPANS};
use hyppi::experiments::table5;
use hyppi::prelude::*;

fn main() {
    let only: Option<String> = std::env::args().nth(1);

    println!("== Fig. 6: NPB average packet latency (clks) ==");
    for kernel in NpbKernel::ALL {
        if let Some(k) = &only {
            if !kernel.name().eq_ignore_ascii_case(k) {
                continue;
            }
        }
        let trace = NpbTraceSpec::paper(kernel).default_window();
        print!("  {kernel}:");
        let mut base = 0.0;
        for span in FIG6_SPANS {
            let topo = fig6_topology(span);
            let routes = RoutingTable::compute_xy(&topo);
            let stats = Simulator::new(&topo, &routes, SimConfig::paper())
                .run_trace(&trace)
                .expect("simulation completes");
            let lat = stats.mean_latency();
            if span == 0 {
                base = lat;
                print!("  mesh {lat:7.2}");
            } else {
                print!("  x{span} {lat:7.2} ({:.2}x)", base / lat);
            }
        }
        println!();
    }

    if only.is_none() {
        println!("\n== Table V: FT total dynamic energy ==");
        println!("{}", table5().render());
    }
}
