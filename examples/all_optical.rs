//! §V: all-optical NoC projections — Table VI and the Fig. 8 radar plot.
//!
//! ```sh
//! cargo run --release --example all_optical
//! ```

use hyppi::experiments::{fig8, table6};

fn main() {
    println!("== Table VI: WDM photonic vs HyPPI optical routers ==");
    println!("{}", table6());

    println!("== Fig. 8: all-optical projections (smaller triangle = better) ==");
    let r = fig8();
    println!("{}", r.render());
    println!(
        "Electronic / all-HyPPI energy per bit: {:.0}x (paper: ~255x)",
        r.electronic_over_hyppi_energy()
    );
}
