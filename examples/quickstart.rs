//! Quickstart: build a hybrid NoC, evaluate its CLEAR, and simulate a
//! small trace on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hyppi::prelude::*;

fn main() {
    // 1. Link level: which technology wins at inter-core distances?
    println!("== Link-level CLEAR (equation 1) at 1 mm ==");
    for tech in LinkTechnology::ALL {
        let p = link_clear_point(tech, Micrometers::from_mm(1.0));
        println!(
            "  {:10} C={:7.0} Gb/s  L={:7.1} ps  E={:9.2} fJ/bit  A={:9.1} um^2  CLEAR={:.3e}",
            tech.name(),
            p.capability_gbps,
            p.latency_ps,
            p.energy_fj_per_bit,
            p.area_um2,
            p.clear
        );
    }

    // 2. System level: the paper's headline hybrid — electronic mesh with
    //    span-3 HyPPI express links.
    println!("\n== System-level CLEAR (equation 2) ==");
    let cfg = SoteriouConfig::paper();
    for (label, topo) in [
        (
            "plain electronic mesh     ",
            mesh(MeshSpec::paper(LinkTechnology::Electronic)),
        ),
        (
            "  + HyPPI express, span 3 ",
            express_mesh(
                MeshSpec::paper(LinkTechnology::Electronic),
                ExpressSpec {
                    span: 3,
                    tech: LinkTechnology::Hyppi,
                },
            ),
        ),
    ] {
        let model = NocModel::new(topo);
        let traffic = cfg.matrix(&model.topo);
        let eval = model.evaluate(&traffic, cfg.max_injection_rate);
        println!(
            "  {label} CLEAR={:.4}  latency={:5.1} clks  power={:5.2} W  area={:5.1} mm^2",
            eval.clear, eval.latency_clks, eval.power_w, eval.area_mm2
        );
    }

    // 3. Cycle-accurate: a burst of packets corner-to-corner.
    println!("\n== Cycle-accurate simulation ==");
    let topo = express_mesh(
        MeshSpec::paper(LinkTechnology::Electronic),
        ExpressSpec {
            span: 3,
            tech: LinkTechnology::Hyppi,
        },
    );
    let routes = RoutingTable::compute_xy(&topo);
    let events: Vec<TraceEvent> = (0..64u16)
        .map(|k| TraceEvent {
            cycle: u64::from(k) * 40,
            src: NodeId(0),
            dst: NodeId(255),
            flits: if k % 4 == 0 { 1 } else { 32 },
        })
        .collect();
    let trace = Trace::new("quickstart burst", 256, 0.0, events);
    let stats = Simulator::new(&topo, &routes, SimConfig::paper())
        .run_trace(&trace)
        .expect("simulation completes");
    println!(
        "  {} packets delivered, mean latency {:.1} clks (control {:.1}, data {:.1})",
        stats.all.count,
        stats.mean_latency(),
        stats.control.mean(),
        stats.data.mean()
    );
}
