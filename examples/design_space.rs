//! The paper's §III-B design-space exploration: all thirty base × express
//! combinations, plus Tables III and IV — Fig. 5 in table form.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use hyppi::experiments::{fig5, table3, table4};
use hyppi::prelude::*;

fn main() {
    println!("== Table III: capability C and utilization growth R ==");
    println!("{}", table3());

    println!("== Fig. 5: hybrid design space (CLEAR / latency / power / area) ==");
    let r = fig5();
    println!("{}", r.render());

    println!("Headline: electronic mesh + HyPPI express CLEAR gains vs plain mesh");
    for span in [3u16, 5, 15] {
        let gain = r.clear_gain(LinkTechnology::Electronic, (LinkTechnology::Hyppi, span));
        println!("  span {span:2}: {gain:.2}x");
    }
    println!(
        "  best: {:.2}x (paper reports up to 1.8x at span 3)\n",
        r.headline_gain()
    );

    println!("== Table IV: static power, electronic base + express links ==");
    println!("{}", table4());
}
