//! Paper-anchor tests: every absolute number the reproduction pins against
//! the paper (see `DESIGN.md` §5 and `EXPERIMENTS.md`). These run the
//! full-size 16×16 analytical models — everything here is analytic, so it
//! stays fast even in debug builds.

use hyppi::experiments::{fig8, table5};
use hyppi::prelude::*;

#[test]
fn electronic_mesh_static_power_is_1_53_w() {
    let model = NocModel::new(mesh(MeshSpec::paper(LinkTechnology::Electronic)));
    let p = model.static_power_w();
    assert!((p - 1.53).abs() / 1.53 < 0.01, "static power {p} W");
}

#[test]
fn electronic_mesh_area_is_22_1_mm2() {
    let model = NocModel::new(mesh(MeshSpec::paper(LinkTechnology::Electronic)));
    let a = model.area_mm2();
    assert!((a - 22.1).abs() / 22.1 < 0.01, "area {a} mm^2");
}

#[test]
fn table_iii_capabilities_are_exact() {
    // Purely topological: ΣC/N.
    let expect = [
        (None, 187.5),
        (Some(3u16), 218.75),
        (Some(5), 206.25),
        (Some(15), 193.75),
    ];
    for (span, c) in expect {
        let topo = match span {
            None => mesh(MeshSpec::paper(LinkTechnology::Electronic)),
            Some(s) => express_mesh(
                MeshSpec::paper(LinkTechnology::Electronic),
                ExpressSpec {
                    span: s,
                    tech: LinkTechnology::Hyppi,
                },
            ),
        };
        let model = NocModel::new(topo);
        assert!(
            (model.capability_gbps_per_node() - c).abs() < 1e-9,
            "span {span:?}: {}",
            model.capability_gbps_per_node()
        );
    }
}

#[test]
fn r_factor_orders_like_table_iii() {
    // Paper Table III: R = 0.808 (x3) < 0.885 (x5) < 1.050 (x15) < 1.122
    // (plain): more express links ⇒ slower utilization growth.
    let cfg = SoteriouConfig::paper();
    let r_of = |span: Option<u16>| {
        let topo = match span {
            None => mesh(MeshSpec::paper(LinkTechnology::Electronic)),
            Some(s) => express_mesh(
                MeshSpec::paper(LinkTechnology::Electronic),
                ExpressSpec {
                    span: s,
                    tech: LinkTechnology::Hyppi,
                },
            ),
        };
        let model = NocModel::new(topo);
        let traffic = cfg.matrix(&model.topo);
        model.evaluate(&traffic, cfg.max_injection_rate).r_factor
    };
    let (r3, r5, r15, plain) = (r_of(Some(3)), r_of(Some(5)), r_of(Some(15)), r_of(None));
    assert!(
        r3 < r5 && r5 < r15 && r15 < plain,
        "R ordering: {r3} {r5} {r15} {plain}"
    );
    // Magnitudes in the paper's neighbourhood.
    assert!((0.4..2.0).contains(&plain), "plain-mesh R {plain}");
}

#[test]
fn table_iii_r_absolute_values() {
    // Paper Table III absolute R values: 0.808 (x3), 0.885 (x5), 1.050
    // (x15), 1.122 (plain). The reproduction's queueing model lands
    // within ~4% on the express rows and ~12% on the plain mesh (the
    // paper's plain-mesh R is the most sensitive to the contention
    // approximation); pin each cell so regressions in either direction
    // are caught.
    let cfg = SoteriouConfig::paper();
    let r_of = |span: Option<u16>| {
        let topo = match span {
            None => mesh(MeshSpec::paper(LinkTechnology::Electronic)),
            Some(s) => express_mesh(
                MeshSpec::paper(LinkTechnology::Electronic),
                ExpressSpec {
                    span: s,
                    tech: LinkTechnology::Hyppi,
                },
            ),
        };
        let model = NocModel::new(topo);
        let traffic = cfg.matrix(&model.topo);
        model.evaluate(&traffic, cfg.max_injection_rate).r_factor
    };
    for (span, paper, tol) in [
        (Some(3u16), 0.808, 0.05),
        (Some(5), 0.885, 0.05),
        (Some(15), 1.050, 0.05),
        (None, 1.122, 0.13),
    ] {
        let r = r_of(span);
        assert!(
            (r - paper).abs() / paper < tol,
            "span {span:?}: R {r} vs paper {paper}"
        );
    }
}

#[test]
fn table_iv_absolute_static_power_cells() {
    // Paper Table IV, photonic express column in absolute watts: the
    // 1.53 W electronic base plus ≈1.546 / 0.928 / 0.309 W of optical
    // static power ⇒ ≈3.08 / 2.46 / 1.84 W. The reproduction includes
    // the extra hybrid router ports the paper also accounts, landing
    // within 10% of each absolute cell.
    for (span, paper_w) in [(3u16, 3.076), (5, 2.458), (15, 1.839)] {
        let p = NocModel::new(express_mesh(
            MeshSpec::paper(LinkTechnology::Electronic),
            ExpressSpec {
                span,
                tech: LinkTechnology::Photonic,
            },
        ))
        .static_power_w();
        assert!(
            (p - paper_w).abs() / paper_w < 0.10,
            "photonic span {span}: {p} W vs paper {paper_w} W"
        );
    }
    // HyPPI express in absolute watts stays within 0.25 W of the plain
    // mesh at every span ("almost no static power increase").
    for span in [3u16, 5, 15] {
        let h = NocModel::new(express_mesh(
            MeshSpec::paper(LinkTechnology::Electronic),
            ExpressSpec {
                span,
                tech: LinkTechnology::Hyppi,
            },
        ))
        .static_power_w();
        assert!(
            (1.53..1.78).contains(&h),
            "HyPPI span {span}: {h} W absolute"
        );
    }
}

#[test]
fn table_vi_optical_router_absolute_cells() {
    // Table VI is a transcription of the paper's router comparison; every
    // cell is a model input and must match exactly.
    let ph = OpticalRouterModel::photonic();
    let hy = OpticalRouterModel::hyppi();
    assert_eq!(ph.control_energy.value(), 68.2);
    assert_eq!(hy.control_energy.value(), 3.73);
    assert_eq!(ph.area.value(), 480_000.0);
    assert_eq!(hy.area.value(), 500.0);
    assert_eq!(
        (ph.element_loss_min_db, ph.element_loss_max_db),
        (0.39, 1.5)
    );
    assert_eq!(
        (hy.element_loss_min_db, hy.element_loss_max_db),
        (0.32, 9.1)
    );
    // The paper's headline contrasts: ~18× lower control energy and
    // ~960× smaller footprint for the HyPPI router.
    let energy_ratio = ph.control_energy.value() / hy.control_energy.value();
    assert!((15.0..25.0).contains(&energy_ratio), "ratio {energy_ratio}");
    let area_ratio = ph.area.value() / hy.area.value();
    assert!((900.0..1000.0).contains(&area_ratio), "ratio {area_ratio}");
}

#[test]
fn table_iv_static_power_anchors() {
    // Paper: photonic express adds ≈1.546/0.928/0.309 W; HyPPI ≈ nothing.
    let base = NocModel::new(mesh(MeshSpec::paper(LinkTechnology::Electronic))).static_power_w();
    // Expected photonic-minus-HyPPI increments: (per-link photonic static
    // ≈9.66 mW minus per-link HyPPI static ≈0.094 mW) × link count
    // (160 / 96 / 32), matching Table IV's deltas over the 1.53 W base.
    for (span, expected) in [(3u16, 1.531), (5, 0.919), (15, 0.306)] {
        let ph = NocModel::new(express_mesh(
            MeshSpec::paper(LinkTechnology::Electronic),
            ExpressSpec {
                span,
                tech: LinkTechnology::Photonic,
            },
        ))
        .static_power_w();
        let hy = NocModel::new(express_mesh(
            MeshSpec::paper(LinkTechnology::Electronic),
            ExpressSpec {
                span,
                tech: LinkTechnology::Hyppi,
            },
        ))
        .static_power_w();
        // Compare the *optical-link* increments (router-port growth is
        // identical across technologies and cancels in the difference).
        let photonic_minus_hyppi = ph - hy;
        assert!(
            (photonic_minus_hyppi - expected).abs() / expected < 0.1,
            "span {span}: photonic-HyPPI delta {photonic_minus_hyppi} (expected ≈{expected})"
        );
        assert!(hy - base < 0.3, "span {span}: HyPPI adds {} W", hy - base);
    }
}

#[test]
fn table_v_ft_energy_anchors() {
    let r = table5();
    // Base mesh ≈ 0.0042 J.
    assert!(
        (0.002..0.007).contains(&r.base_energy_j),
        "base {}",
        r.base_energy_j
    );
    // Photonic ≈ 0.9353 J at every span.
    for span in [3u16, 5, 15] {
        let e = r.energy(LinkTechnology::Photonic, span);
        assert!(
            (e - 0.9353).abs() / 0.9353 < 0.1,
            "photonic span {span}: {e} J"
        );
    }
    // HyPPI barely above base (paper: 0.0049 vs 0.0042 J).
    for span in [3u16, 5, 15] {
        let e = r.energy(LinkTechnology::Hyppi, span);
        assert!(
            e / r.base_energy_j < 1.6,
            "HyPPI span {span}: {e} vs base {}",
            r.base_energy_j
        );
    }
}

#[test]
fn fig8_anchors() {
    let r = fig8();
    let [e, p, h] = r.points;
    // Energies: 89.7 pJ/bit, ≈352 fJ/bit, ≈354 fJ/bit.
    assert!(
        (e.energy_per_bit_fj - 89_700.0).abs() / 89_700.0 < 0.1,
        "electronic {} fJ/bit",
        e.energy_per_bit_fj
    );
    assert!((p.energy_per_bit_fj - 352.0).abs() / 352.0 < 0.25);
    assert!((h.energy_per_bit_fj - 354.0).abs() / 354.0 < 0.25);
    // Areas: 22.1 / 127.7 / 1.24 mm².
    assert!((e.area_mm2 - 22.1).abs() / 22.1 < 0.02);
    assert!((p.area_mm2 - 127.7).abs() / 127.7 < 0.05);
    assert!((h.area_mm2 - 1.24).abs() / 1.24 < 0.15);
    // Latency: optical = 50% of electronic.
    assert!((p.latency_clks / e.latency_clks - 0.5).abs() < 1e-9);
}

#[test]
fn fig3_crossovers() {
    use hyppi::link_clear_point;
    // Electronics wins at 10 µm, HyPPI at 1 mm, photonics at 50 mm.
    let at = |tech, um: f64| link_clear_point(tech, Micrometers::new(um)).clear;
    assert!(at(LinkTechnology::Electronic, 10.0) > at(LinkTechnology::Hyppi, 10.0));
    assert!(at(LinkTechnology::Hyppi, 1000.0) > at(LinkTechnology::Electronic, 1000.0));
    assert!(at(LinkTechnology::Hyppi, 1000.0) > at(LinkTechnology::Photonic, 1000.0));
    assert!(at(LinkTechnology::Photonic, 50_000.0) > at(LinkTechnology::Hyppi, 50_000.0));
}
