//! Cross-crate integration tests: traffic generation → routing → simulation
//! → energy accounting, on reduced-size networks so they stay fast in debug
//! builds. Full-size paper numbers are covered by `paper_anchors.rs` and
//! the bench harness.

use hyppi::prelude::*;

fn small_spec(base: LinkTechnology) -> MeshSpec {
    MeshSpec {
        width: 8,
        height: 8,
        core_spacing_mm: 1.0,
        base_tech: base,
        capacity: Gbps::new(50.0),
    }
}

#[test]
fn npb_windows_simulate_on_small_meshes() {
    for kernel in NpbKernel::ALL {
        let spec = NpbTraceSpec {
            kernel,
            width: 8,
            height: 8,
        };
        let trace = spec.trace_window(1, 0.1);
        for span in [0u16, 3] {
            let topo = if span == 0 {
                mesh(small_spec(LinkTechnology::Electronic))
            } else {
                express_mesh(
                    small_spec(LinkTechnology::Electronic),
                    ExpressSpec {
                        span,
                        tech: LinkTechnology::Hyppi,
                    },
                )
            };
            let routes = RoutingTable::compute_xy(&topo);
            let stats = Simulator::new(&topo, &routes, SimConfig::paper())
                .run_trace(&trace)
                .unwrap_or_else(|e| panic!("{kernel} span {span}: {e}"));
            assert_eq!(
                stats.all.count,
                trace.total_packets() as u64,
                "{kernel} span {span}: all packets delivered"
            );
            assert_eq!(stats.flits_delivered, trace.total_flits());
        }
    }
}

#[test]
fn simulated_flit_counts_match_analytic_routing() {
    // The simulator and the analytic volume router must agree on link
    // flit counts for identical traffic (they share the routing table).
    let topo = express_mesh(
        small_spec(LinkTechnology::Electronic),
        ExpressSpec {
            span: 3,
            tech: LinkTechnology::Hyppi,
        },
    );
    let routes = RoutingTable::compute_xy(&topo);
    let mut volume = CommVolume::zero(64, 0.0);
    let mut events = Vec::new();
    for (i, (s, d)) in [(0u16, 63u16), (5, 58), (17, 40), (63, 0), (32, 39)]
        .iter()
        .enumerate()
    {
        volume.add(NodeId(*s), NodeId(*d), 32);
        events.push(TraceEvent {
            cycle: i as u64 * 100,
            src: NodeId(*s),
            dst: NodeId(*d),
            flits: 32,
        });
    }
    let analytic = EnergyCounts::from_volume(&topo, &routes, &volume);
    let trace = Trace::new("check", 64, 0.0, events);
    let stats = Simulator::new(&topo, &routes, SimConfig::paper())
        .run_trace(&trace)
        .expect("completes");
    assert_eq!(stats.link_flits, analytic.link_flits);
    assert_eq!(stats.router_flits, analytic.router_flits);
}

#[test]
fn express_links_reduce_simulated_latency_for_long_traffic() {
    let base = mesh(small_spec(LinkTechnology::Electronic));
    let hybrid = express_mesh(
        small_spec(LinkTechnology::Electronic),
        ExpressSpec {
            span: 3,
            tech: LinkTechnology::Hyppi,
        },
    );
    // Row-crossing traffic.
    let events: Vec<TraceEvent> = (0..8u16)
        .map(|y| TraceEvent {
            cycle: 0,
            src: NodeId(y * 8),
            dst: NodeId(y * 8 + 7),
            flits: 32,
        })
        .collect();
    let run = |topo: &Topology| {
        let routes = RoutingTable::compute_xy(topo);
        Simulator::new(topo, &routes, SimConfig::paper())
            .run_trace(&Trace::new("rows", 64, 0.0, events.clone()))
            .expect("completes")
            .mean_latency()
    };
    let plain = run(&base);
    let express = run(&hybrid);
    assert!(
        express < plain,
        "express {express} should beat plain {plain}"
    );
}

#[test]
fn trace_serialization_roundtrips_through_simulation() {
    let spec = NpbTraceSpec {
        kernel: NpbKernel::Lu,
        width: 8,
        height: 8,
    };
    let trace = spec.trace_window(2, 1.0);
    let decoded = Trace::from_bytes(trace.to_bytes()).expect("roundtrip");
    assert_eq!(trace, decoded);

    let topo = mesh(small_spec(LinkTechnology::Electronic));
    let routes = RoutingTable::compute_xy(&topo);
    let a = Simulator::new(&topo, &routes, SimConfig::paper())
        .run_trace(&trace)
        .expect("completes");
    let b = Simulator::new(&topo, &routes, SimConfig::paper())
        .run_trace(&decoded)
        .expect("completes");
    assert_eq!(a, b, "identical traces give identical runs");
}

#[test]
fn analytic_evaluation_composes_for_all_technologies() {
    let cfg = SoteriouConfig {
        p: 0.02,
        sigma: 0.4,
        max_injection_rate: 0.1,
        seed: 7,
    };
    for base in [
        LinkTechnology::Electronic,
        LinkTechnology::Photonic,
        LinkTechnology::Hyppi,
    ] {
        let model = NocModel::new(mesh(small_spec(base)));
        let traffic = cfg.matrix(&model.topo);
        let eval = model.evaluate(&traffic, cfg.max_injection_rate);
        assert!(eval.clear.is_finite() && eval.clear > 0.0, "{base}");
        assert!(eval.power_w > 0.0 && eval.area_mm2 > 0.0);
        assert!(eval.utilization > 0.0 && eval.utilization < 1.0);
    }
}

#[test]
fn energy_accounting_spans_crates() {
    // Full pipeline: NPB volume → routed counts → DSENT energies.
    let spec = NpbTraceSpec {
        kernel: NpbKernel::Cg,
        width: 8,
        height: 8,
    };
    let volume = spec.volume();
    let model = NocModel::new(mesh(small_spec(LinkTechnology::Electronic)));
    let counts = EnergyCounts::from_volume(&model.topo, &model.routes, &volume);
    let energy = dynamic_energy_joules(&model, &counts, volume.comm_wall_seconds);
    assert!(energy.total_j() > 0.0);
    assert_eq!(energy.optical_active_j, 0.0, "no optical links present");
    // Hybrid with photonic express picks up the active-laser charge.
    let hybrid = NocModel::new(express_mesh(
        small_spec(LinkTechnology::Electronic),
        ExpressSpec {
            span: 3,
            tech: LinkTechnology::Photonic,
        },
    ));
    let counts = EnergyCounts::from_volume(&hybrid.topo, &hybrid.routes, &volume);
    let e2 = dynamic_energy_joules(&hybrid, &counts, volume.comm_wall_seconds);
    assert!(e2.optical_active_j > 0.0);
    assert!(e2.total_j() > energy.total_j());
}

#[test]
fn synthetic_injection_latency_grows_with_load() {
    let topo = mesh(small_spec(LinkTechnology::Electronic));
    let routes = RoutingTable::compute_xy(&topo);
    let latency_at = |rate: f64| {
        let cfg = SoteriouConfig {
            p: 0.1,
            sigma: 0.4,
            max_injection_rate: rate,
            seed: 3,
        };
        let m = cfg.matrix(&topo);
        Simulator::new(&topo, &routes, SimConfig::paper())
            .run_synthetic(&m, 500, 2000, 99)
            .expect("completes")
            .mean_latency()
    };
    let low = latency_at(0.02);
    let high = latency_at(0.30);
    assert!(
        high > low,
        "latency should grow with injection: {low} vs {high}"
    );
}
