//! Property tests for the closed-loop injection subsystem.
//!
//! Three families of invariants, per the PR-4 issue:
//!
//! 1. **Packet conservation** — at every sampled cycle of a manually
//!    stepped run, flits injected = flits ejected + flits in the network
//!    (the in-network gauge is computed from buffer occupancy and the
//!    link calendar, independently of the injection counter).
//! 2. **Window discipline** — no source ever exceeds its
//!    `max_outstanding` window, live (sampled every cycle) and in the
//!    recorded `peak_outstanding` statistics.
//! 3. **Accepted ≤ offered** — closed-loop accepted throughput never
//!    exceeds the open-loop offered load at the same rate, across seeds ×
//!    patterns × windows.
//!
//! Plus the PR's acceptance pin: on the paper's 16×16 mesh the
//! closed-loop accepted-load curve flattens at ≈0.247 flits/node/cycle —
//! the open-loop saturation point found in PR 2 — while the open-loop
//! run keeps tracking its rising offered load.

use hyppi::prelude::*;
use proptest::prelude::*;

fn grid(w: u16, h: u16) -> Topology {
    mesh(MeshSpec {
        width: w,
        height: h,
        core_spacing_mm: 1.0,
        base_tech: LinkTechnology::Electronic,
        capacity: Gbps::new(50.0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conservation + window bound, sampled at every cycle of a manually
    /// stepped closed-loop run over an arbitrary packet mix.
    #[test]
    fn conservation_holds_at_every_cycle(
        (w, h) in (3u16..=6, 3u16..=6),
        window in 1usize..=6,
        packets in proptest::collection::vec(
            (0u64..300, 0u16..64, 0u16..64, prop_oneof![Just(1u32), Just(32u32)]),
            1..40,
        ),
    ) {
        let topo = grid(w, h);
        let n = w * h;
        let mut events: Vec<TraceEvent> = packets
            .into_iter()
            .map(|(cycle, s, d, flits)| TraceEvent {
                cycle,
                src: NodeId(s % n),
                dst: NodeId(d % n),
                flits,
            })
            .filter(|e| e.src != e.dst)
            .collect();
        prop_assume!(!events.is_empty());
        events.sort_by_key(|e| e.cycle);
        let total_flits: u64 = events.iter().map(|e| u64::from(e.flits)).sum();
        let total_packets = events.len() as u64;

        let routes = RoutingTable::compute_xy(&topo);
        let mut sim = Simulator::new(&topo, &routes, SimConfig::paper_closed_loop(window));
        let mut next = 0usize;
        let mut now = 0u64;
        loop {
            while next < events.len() && events[next].cycle <= now {
                let e = events[next];
                sim.admit(e.src, e.dst, e.flits, e.cycle);
                next += 1;
            }
            sim.step(now);
            // Conservation: the NIC emission counter equals ejections
            // plus what the buffers and the link calendar still hold.
            let s = sim.stats();
            prop_assert!(
                s.flits_injected == s.flits_delivered + sim.in_network_flits(),
                "conservation violated at cycle {}: injected {}, delivered {}, in-network {}",
                now, s.flits_injected, s.flits_delivered, sim.in_network_flits()
            );
            // Window: live occupancy never exceeds the configured cap.
            for (node, &o) in sim.outstanding_packets().iter().enumerate() {
                prop_assert!(
                    (o as usize) <= window,
                    "node {} at {} outstanding, window {}",
                    node, o, window
                );
            }
            now += 1;
            if next == events.len()
                && sim.pending_packets() == 0
                && sim.in_network_flits() == 0
            {
                break;
            }
            prop_assert!(now < 500_000, "run did not drain");
        }
        // Everything admitted was delivered exactly once.
        let s = sim.stats();
        prop_assert_eq!(s.flits_delivered, total_flits);
        prop_assert_eq!(s.flits_injected, total_flits);
        prop_assert_eq!(s.all.count, total_packets);
        // The recorded peaks respect the window too.
        prop_assert!(s.peak_outstanding.iter().all(|&o| (o as usize) <= window));
    }
}

proptest! {
    // Each case runs two full synthetic simulations; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Closed-loop accepted throughput never exceeds the open-loop
    /// offered load at the same rate (modulo Bernoulli sampling noise),
    /// across seeds × patterns × windows; and the window statistics stay
    /// disciplined in both modes.
    #[test]
    fn closed_loop_accepted_bounded_by_offered(
        seed in 0u64..1000,
        window_i in 0usize..3,
        pattern_i in 0usize..3,
    ) {
        let window = [1usize, 4, 16][window_i];
        let pattern = [
            SyntheticPattern::Uniform,
            SyntheticPattern::Transpose,
            SyntheticPattern::Hotspot,
        ][pattern_i];
        let topo = grid(6, 6);
        let routes = RoutingTable::compute_xy(&topo);
        let rate = 0.25;
        let m = pattern.matrix(&topo, rate);
        let (warmup, measure) = (100u64, 500u64);
        let closed = Simulator::new(&topo, &routes, SimConfig::paper_closed_loop(window))
            .run_synthetic(&m, warmup, measure, seed)
            .expect("closed-loop run completes");
        let open = Simulator::new(&topo, &routes, SimConfig::paper())
            .run_synthetic(&m, warmup, measure, seed)
            .expect("open-loop run completes");
        let nodes = topo.num_nodes();
        let acc_closed = closed.accepted_throughput(nodes, measure);
        let acc_open = open.accepted_throughput(nodes, measure);
        // Accepted load cannot beat the offered (arrival) rate…
        prop_assert!(
            acc_closed <= rate * 1.10 + 0.02,
            "accepted {} vs offered {}",
            acc_closed, rate
        );
        // …nor the open-loop network, which the window can only throttle.
        prop_assert!(
            acc_closed <= acc_open * 1.05 + 0.02,
            "closed {} vs open {}",
            acc_closed, acc_open
        );
        // Window bookkeeping: bounded closed-loop, untracked open-loop.
        prop_assert!(closed.peak_outstanding.iter().all(|&o| (o as usize) <= window));
        prop_assert!(open.peak_outstanding.iter().all(|&o| o == 0));
        // Identical seeds admit the identical Bernoulli stream, so every
        // admitted packet completes in both modes.
        prop_assert_eq!(closed.flits_injected, open.flits_injected);
    }
}

/// The PR's acceptance pin: a closed-loop uniform sweep on the paper's
/// 16×16 mesh flattens its accepted load at ≈0.247 flits/node/cycle (the
/// PR-2 open-loop saturation point) while the open-loop run keeps
/// tracking its rising offered load past the knee.
#[test]
fn accepted_load_flattens_at_the_open_loop_saturation_point() {
    let topo = mesh(MeshSpec::paper(LinkTechnology::Electronic));
    let routes = RoutingTable::compute_xy(&topo);
    let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
    let cfg = SweepConfig {
        warmup: 300,
        measure: 1200,
        seeds: vec![11],
        ..SweepConfig::paper()
    };
    let closed = SweepRunner::new(
        &topo,
        &routes,
        SimConfig::paper(),
        cfg.clone()
            .closed_loop(hyppi::experiments::CLOSED_LOOP_WINDOW),
    );
    let open = SweepRunner::new(&topo, &routes, SimConfig::paper(), cfg);

    const KNEE: f64 = 0.247; // PR-2: uniform 16×16 saturation load
    let offered = [0.32, 0.42];
    let points: Vec<_> = offered
        .iter()
        .map(|&r| {
            let p = closed.run_point(&gen(r));
            assert!(p.stable, "closed-loop run at {r} hit the cycle cap");
            p
        })
        .collect();
    let accepted: Vec<f64> = points.iter().map(|p| p.accepted).collect();
    // Flat: pushing offered load 31% higher moves accepted load by < 5%.
    assert!(
        (accepted[0] - accepted[1]).abs() < 0.05 * accepted[0],
        "accepted curve not flat past the knee: {accepted:?}"
    );
    // …and flat *at the open-loop saturation plateau*.
    for (r, a) in offered.iter().zip(&accepted) {
        assert!(
            (a - KNEE).abs() < 0.035,
            "accepted {a} at offered {r} is not the ≈{KNEE} plateau"
        );
    }
    // Open loop, the same offered points keep rising: every admitted
    // packet is eventually delivered, so measured throughput tracks the
    // offered load beyond the knee instead of flattening.
    let p = open.run_point(&gen(offered[1]));
    assert!(p.stable);
    assert!(
        p.throughput > KNEE + 0.1,
        "open-loop measured throughput {} should track offered {}",
        p.throughput,
        offered[1]
    );
    // The closed-loop latency stayed window-bounded (network latency),
    // nothing like the open-loop queueing blow-up at the same load.
    let lat_closed = points[1].mean_latency();
    let lat_open = p.mean_latency();
    assert!(
        lat_closed * 3.0 < lat_open,
        "closed {lat_closed} vs open {lat_open}"
    );
}
