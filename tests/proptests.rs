//! Property-based tests on the core invariants, across randomly drawn
//! topologies, traffic and traces.

use hyppi::prelude::*;
use proptest::prelude::*;

/// Strategy: a small mesh spec (3..=8 per side).
fn mesh_dims() -> impl Strategy<Value = (u16, u16)> {
    (3u16..=8, 3u16..=8)
}

fn spec(w: u16, h: u16) -> MeshSpec {
    MeshSpec {
        width: w,
        height: h,
        core_spacing_mm: 1.0,
        base_tech: LinkTechnology::Electronic,
        capacity: Gbps::new(50.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Routing always delivers: following next-hops from any source
    /// terminates at the destination within the node count, on plain and
    /// express meshes.
    #[test]
    fn routing_delivers((w, h) in mesh_dims(), span in 2u16..=6, seed in 0u64..1000) {
        prop_assume!(span < w);
        let topo = express_mesh(spec(w, h), ExpressSpec { span, tech: LinkTechnology::Hyppi });
        let routes = RoutingTable::compute_xy(&topo);
        let n = topo.num_nodes() as u16;
        let src = NodeId((seed % u64::from(n)) as u16);
        let dst = NodeId(((seed / 7) % u64::from(n)) as u16);
        let path = routes.path(&topo, src, dst);
        prop_assert!(path.len() <= topo.num_nodes());
        if src != dst {
            prop_assert_eq!(topo.link(path[0]).src, src);
            prop_assert_eq!(topo.link(*path.last().unwrap()).dst, dst);
        } else {
            prop_assert!(path.is_empty());
        }
    }

    /// Path cost equals the sum of per-hop costs along the path.
    #[test]
    fn route_cost_is_consistent((w, h) in mesh_dims(), span in 2u16..=6) {
        prop_assume!(span < w);
        let topo = express_mesh(spec(w, h), ExpressSpec { span, tech: LinkTechnology::Hyppi });
        let routes = RoutingTable::compute_xy(&topo);
        for (s, d) in [(0u16, (w * h - 1)), (1, w * h / 2), (w, w - 1)] {
            let (s, d) = (NodeId(s), NodeId(d));
            let path = routes.path(&topo, s, d);
            let cost: u32 = path
                .iter()
                .map(|&l| ROUTER_PIPELINE_CYCLES + topo.link(l).latency_cycles)
                .sum();
            prop_assert_eq!(cost, routes.cost(s, d));
        }
    }

    /// The simulator conserves flits: everything injected is delivered
    /// exactly once, for arbitrary packet mixes.
    #[test]
    fn simulator_conserves_flits(
        (w, h) in mesh_dims(),
        packets in proptest::collection::vec((0u64..500, 0u16..64, 0u16..64, prop_oneof![Just(1u32), Just(32u32)]), 1..40),
    ) {
        let topo = mesh(spec(w, h));
        let n = w * h;
        let events: Vec<TraceEvent> = packets
            .into_iter()
            .map(|(cycle, s, d, flits)| TraceEvent {
                cycle,
                src: NodeId(s % n),
                dst: NodeId(d % n),
                flits,
            })
            .filter(|e| e.src != e.dst)
            .collect();
        prop_assume!(!events.is_empty());
        let expected_flits: u64 = events.iter().map(|e| u64::from(e.flits)).sum();
        let expected_packets = events.len() as u64;
        let routes = RoutingTable::compute_xy(&topo);
        let trace = Trace::new("prop", n, 0.0, events);
        let stats = Simulator::new(&topo, &routes, SimConfig::paper())
            .run_trace(&trace)
            .expect("completes");
        prop_assert_eq!(stats.flits_delivered, expected_flits);
        prop_assert_eq!(stats.all.count, expected_packets);
    }

    /// Link loads scale linearly with traffic (oblivious routing).
    #[test]
    fn loads_are_linear_in_rate((w, h) in mesh_dims(), rate in 0.001f64..0.2) {
        let topo = mesh(spec(w, h));
        let routes = RoutingTable::compute_xy(&topo);
        let n = topo.num_nodes() as u16;
        let demands: Vec<_> = (0..n)
            .map(|s| (NodeId(s), NodeId((s + 1) % n), rate))
            .filter(|(s, d, _)| s != d)
            .collect();
        let one = LinkLoads::from_demands(&topo, &routes, demands.clone());
        let double = LinkLoads::from_demands(
            &topo,
            &routes,
            demands.iter().map(|&(s, d, r)| (s, d, 2.0 * r)),
        );
        prop_assert!((double.total() - 2.0 * one.total()).abs() < 1e-9);
    }

    /// CLEAR is monotone: making any cost factor worse lowers CLEAR.
    #[test]
    fn link_clear_monotone_in_length(tech_i in 0usize..4, a in 1f64..1e4, factor in 1.01f64..10.0) {
        let tech = LinkTechnology::ALL[tech_i];
        let near = hyppi::link_clear_point(tech, Micrometers::new(a));
        let far = hyppi::link_clear_point(tech, Micrometers::new(a * factor));
        prop_assert!(far.clear <= near.clear * (1.0 + 1e-9));
    }

    /// Traffic matrices from the Soteriou model never exceed the configured
    /// injection rate and contain no self-traffic.
    #[test]
    fn soteriou_respects_bounds((w, h) in mesh_dims(), rate in 0.01f64..0.5, seed in 0u64..500) {
        let topo = mesh(spec(w, h));
        let cfg = SoteriouConfig { p: 0.05, sigma: 0.4, max_injection_rate: rate, seed };
        let m = cfg.matrix(&topo);
        for node in topo.nodes() {
            prop_assert!(m.injection_rate(node) <= rate + 1e-9);
            prop_assert_eq!(m.rate(node, node), 0.0);
        }
    }

    /// Trace binary encoding round-trips for arbitrary traces.
    #[test]
    fn trace_roundtrip(
        events in proptest::collection::vec((0u64..1_000_000, 0u16..256, 0u16..256, 1u32..64), 0..100),
        wall in 0.0f64..10.0,
    ) {
        let events: Vec<TraceEvent> = events
            .into_iter()
            .map(|(cycle, s, d, flits)| TraceEvent { cycle, src: NodeId(s), dst: NodeId(d), flits })
            .collect();
        let t = Trace::new("prop", 256, wall, events);
        let d = Trace::from_bytes(t.to_bytes()).expect("roundtrip");
        prop_assert_eq!(t, d);
    }

    /// Loss budgets compose: transmission of a combined budget equals the
    /// product of the parts.
    #[test]
    fn loss_budgets_compose(a in 0.0f64..20.0, b in 0.0f64..20.0) {
        let mut whole = LossBudget::new();
        whole.add("a", Decibels::new(a)).add("b", Decibels::new(b));
        let mut pa = LossBudget::new();
        pa.add("a", Decibels::new(a));
        let mut pb = LossBudget::new();
        pb.add("b", Decibels::new(b));
        let combined = pa.transmission() * pb.transmission();
        prop_assert!((whole.transmission() - combined).abs() < 1e-12);
    }

    /// Latency percentiles are monotone in q, never exceed the maximum,
    /// and degenerate correctly on 0- and 1-sample histograms.
    #[test]
    fn percentiles_bound_samples(latencies in proptest::collection::vec(1u64..1_000_000, 0..120)) {
        let mut l = LatencyStats::default();
        for &v in &latencies {
            l.record(v);
        }
        if latencies.is_empty() {
            for q in [0.0, 0.5, 1.0] {
                prop_assert_eq!(l.percentile(q), 0);
            }
        } else {
            let max = *latencies.iter().max().unwrap();
            let mut prev = 0;
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let p = l.percentile(q);
                prop_assert!(p >= prev, "percentile({}) = {} < {}", q, p, prev);
                prop_assert!(p <= max);
                prev = p;
            }
            prop_assert_eq!(l.percentile(1.0), max);
            if latencies.len() == 1 {
                // A single sample is reported exactly at every quantile.
                prop_assert_eq!(l.p50(), latencies[0]);
                prop_assert_eq!(l.p99(), latencies[0]);
            }
        }
    }
}

proptest! {
    // Each case runs three full engines on a faulted mesh; keep the case
    // count moderate.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fault tolerance: on random fault sets that keep the mesh routable,
    /// every injected packet between live, connected routers still ejects
    /// (flit conservation), packets without a route are all accounted as
    /// admission drops, and the three engines agree bit-for-bit.
    #[test]
    fn faulted_engines_deliver_and_agree(
        (w, h) in (3u16..=6, 3u16..=6),
        count in 0usize..5,
        fault_seed in 0u64..1000,
        packets in proptest::collection::vec(
            (0u64..300, 0u16..64, 0u16..64, prop_oneof![Just(1u32), Just(32u32)]),
            1..30,
        ),
    ) {
        let healthy = mesh(spec(w, h));
        let fault = FaultSpec::sample(&healthy, count, fault_seed);
        let topo = fault.apply(&healthy);
        // Disconnecting draws are rejected by the router; skip them the
        // same way the sweep samplers do (draw again — here: next case).
        let Ok(routes) = RoutingTable::compute_xy_avoiding(&topo) else {
            return Ok(());
        };
        let healthy_routes = RoutingTable::compute_xy(&healthy);
        let n = w * h;
        let events: Vec<TraceEvent> = packets
            .into_iter()
            .map(|(cycle, s, d, flits)| TraceEvent {
                cycle,
                src: NodeId(s % n),
                dst: NodeId(d % n),
                flits,
            })
            .filter(|e| e.src != e.dst)
            .collect();
        prop_assume!(!events.is_empty());
        let deliverable_flits: u64 = events
            .iter()
            .filter(|e| routes.reachable(e.src, e.dst))
            .map(|e| u64::from(e.flits))
            .sum();
        let deliverable: u64 = events
            .iter()
            .filter(|e| routes.reachable(e.src, e.dst))
            .count() as u64;
        let dropped = events.len() as u64 - deliverable;
        let trace = Trace::new("prop-fault", n, 0.0, events);
        let stats = Simulator::new(&topo, &routes, SimConfig::paper())
            .with_baseline(&healthy, &healthy_routes)
            .run_trace(&trace)
            .expect("faulted run completes");
        prop_assert_eq!(stats.flits_delivered, deliverable_flits);
        prop_assert_eq!(stats.all.count, deliverable);
        prop_assert_eq!(stats.unreachable_pairs, dropped);
        let reference = ReferenceSimulator::new(&topo, &routes, SimConfig::paper())
            .with_baseline(&healthy, &healthy_routes)
            .run_trace(&trace)
            .expect("faulted reference run completes");
        prop_assert_eq!(&stats, &reference);
        let sharded = ShardedSimulator::new(
            &topo,
            &routes,
            SimConfig::paper(),
            ShardSpec::for_count(4),
        )
        .with_baseline(&healthy, &healthy_routes)
        .run_trace(&trace)
        .expect("faulted sharded run completes");
        prop_assert_eq!(&stats, &sharded);
    }

    /// Per-cycle flit conservation on a faulted mesh: at every step of a
    /// manually driven simulation, flits admitted == flits delivered +
    /// flits in flight.
    #[test]
    fn faulted_flit_conservation_per_cycle(
        (w, h) in (3u16..=5, 3u16..=5),
        count in 0usize..4,
        fault_seed in 0u64..1000,
        packets in proptest::collection::vec((0u64..60, 0u16..64, 0u16..64, 1u32..33), 1..20),
    ) {
        let healthy = mesh(spec(w, h));
        let fault = FaultSpec::sample(&healthy, count, fault_seed);
        let topo = fault.apply(&healthy);
        let Ok(routes) = RoutingTable::compute_xy_avoiding(&topo) else {
            return Ok(());
        };
        let n = w * h;
        let mut events: Vec<TraceEvent> = packets
            .into_iter()
            .map(|(cycle, s, d, flits)| TraceEvent {
                cycle,
                src: NodeId(s % n),
                dst: NodeId(d % n),
                flits,
            })
            .filter(|e| e.src != e.dst)
            .collect();
        prop_assume!(!events.is_empty());
        events.sort_by_key(|e| e.cycle);
        let mut sim = Simulator::new(&topo, &routes, SimConfig::paper());
        let mut admitted = 0u64;
        let mut next = 0usize;
        for now in 0..4000u64 {
            while next < events.len() && events[next].cycle == now {
                let e = &events[next];
                sim.admit(e.src, e.dst, e.flits, now);
                if routes.reachable(e.src, e.dst) {
                    admitted += u64::from(e.flits);
                }
                next += 1;
            }
            sim.step(now);
            // The engine's own ledger: flits emitted into the network are
            // either delivered or still in flight, at every cycle boundary.
            prop_assert_eq!(
                sim.stats().flits_injected,
                sim.stats().flits_delivered + sim.in_network_flits()
            );
            if next == events.len() && sim.pending_packets() == 0 && sim.in_network_flits() == 0 {
                break;
            }
        }
        // Network and NIC queues fully drained.
        prop_assert_eq!(sim.in_network_flits(), 0);
        prop_assert_eq!(sim.pending_packets(), 0);
        // End-to-end: every admitted (routable) flit was delivered exactly
        // once; unroutable packets were all dropped at admission.
        prop_assert_eq!(sim.stats().flits_delivered, admitted);
    }
}

proptest! {
    // Each case runs a full bisection search (a dozen short simulations),
    // so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The saturation finder is deterministic given its seed, brackets its
    /// answer within the configured tolerance, and never reports a
    /// saturation load at or below a rate it observed stable.
    #[test]
    fn saturation_finder_sound((w, h) in (3u16..=4, 3u16..=4), seed in 0u64..1000) {
        let topo = mesh(spec(w, h));
        let routes = RoutingTable::compute_xy(&topo);
        let cfg = SweepConfig {
            warmup: 100,
            measure: 400,
            seeds: vec![seed],
            tolerance: 0.05,
            ..SweepConfig::quick()
        };
        let runner = SweepRunner::new(&topo, &routes, SimConfig::paper(), cfg);
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let a = runner.find_saturation(&gen, 1.0);
        // Deterministic across repeated runs with the same seed.
        let b = runner.find_saturation(&gen, 1.0);
        prop_assert_eq!(&a, &b);
        // Bracketing: the reported load sits above the last stable probe,
        // within tolerance once the threshold was crossed in range.
        prop_assert!(a.saturation_load >= a.last_stable_load);
        prop_assert!(a.saturation_load >= runner.config().zero_load_rate);
        if a.saturated_in_range {
            prop_assert!(a.saturation_load - a.last_stable_load <= runner.config().tolerance + 1e-12);
            // Monotonicity floor: a load well below the reported
            // saturation point stays below the latency threshold.
            let low = runner.run_point(&gen(runner.config().zero_load_rate * 2.0));
            prop_assert!(low.stable);
            prop_assert!(low.mean_latency() <= a.threshold);
        }
    }
}
