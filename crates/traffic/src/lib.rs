//! Traffic generation for the HyPPI NoC reproduction.
//!
//! Two traffic sources drive the paper's evaluation:
//!
//! * the **Soteriou statistical model** (§III-B; \[15\] in the paper) with
//!   acceptance probability `p = 0.02`, injection spread `σ = 0.4` and a
//!   maximum injection rate of 0.1 flits/node/cycle — used for the
//!   design-space exploration and the all-optical projections
//!   ([`soteriou`]);
//! * **NAS Parallel Benchmark traces** (§IV) — FT, CG, MG and LU at 256
//!   ranks. The paper captured MPICL traces on a Cray XE6m; those are not
//!   publicly available, so [`npb`] synthesizes traces from each kernel's
//!   documented communication pattern (FT all-to-all transpose, CG
//!   short-range row exchanges, MG long-range hierarchical exchanges, LU
//!   1-hop wavefront). The paper itself reduces traces to flit counts per
//!   source-destination pair and discards timing, so the spatial pattern is
//!   the fidelity target. For meshes bigger than the paper's 16×16,
//!   [`npb::ScaledNpbSpec`] rescales the 256-rank specs by rank remap
//!   (interleaved stretched instances covering every node) plus a
//!   phase-preserving launch-window stretch, opening real NPB workloads
//!   on the 32×32 / 1024-node mesh.
//!
//! Supporting machinery: dense [`matrix::TrafficMatrix`] rate matrices,
//! [`packetize`] (the paper's 1-flit / 32-flit packet split), the
//! [`trace::Trace`] event container with a compact binary format,
//! [`volume::CommVolume`] flit-count aggregation for energy accounting,
//! rate-scaled [`patterns::SyntheticPattern`] generators (uniform,
//! transpose, complement, hotspot, Soteriou, NPB-shaped) that feed the
//! simulator's load sweeps, seeded temporal burstiness modulators
//! ([`burst::BurstSpec`] — ON/OFF and MMPP-style factor processes that
//! decide *when* the steady patterns' traffic fires), and multi-tenant
//! composition ([`tenant::TenantSpec`] — disjoint rectangular tiles
//! each running their own pattern, resolved to a node → tenant map the
//! simulator splits statistics by).

pub mod burst;
pub mod matrix;
pub mod npb;
pub mod packetize;
pub mod patterns;
pub mod soteriou;
pub mod tenant;
pub mod trace;
pub mod volume;

pub use burst::{BurstSpec, BurstState, BURST_REGEN_SLOTS, BURST_SLOT_CYCLES};
pub use matrix::TrafficMatrix;
pub use npb::{NpbKernel, NpbTraceSpec, ScaledNpbSpec};
pub use packetize::{packetize_message, Packet, DATA_PACKET_FLITS};
pub use patterns::SyntheticPattern;
pub use soteriou::SoteriouConfig;
pub use tenant::{TenantMap, TenantSpec, TenantWorkload};
pub use trace::{Trace, TraceEvent};
pub use volume::CommVolume;
