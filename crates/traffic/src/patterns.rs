//! Rate-scaled synthetic traffic patterns for load sweeps.
//!
//! A [`SyntheticPattern`] maps an offered load (flits per node per cycle)
//! to a [`TrafficMatrix`] with that **mean** per-node injection rate while
//! keeping the pattern's spatial shape fixed — exactly what a
//! latency-vs-load sweep needs: one generator closure per curve,
//! `|rate| pattern.matrix(&topo, rate)`.
//!
//! Patterns:
//!
//! * [`Uniform`](SyntheticPattern::Uniform) — every node to every other
//!   node equally (the classic uniform-random benchmark load);
//! * [`Transpose`](SyntheticPattern::Transpose) — `(x, y) → (y, x)`
//!   (adversarial for X-then-Y routing; square grids only);
//! * [`Complement`](SyntheticPattern::Complement) — node `i` to node
//!   `n-1-i` (bit-complement on power-of-two grids; every packet crosses
//!   the mesh center);
//! * [`Hotspot`](SyntheticPattern::Hotspot) — a uniform background with a
//!   fraction of all traffic redirected to the four mesh corners;
//! * [`Soteriou`](SyntheticPattern::Soteriou) — the paper's statistical
//!   model (§III-B) at the requested rate;
//! * [`Npb`](SyntheticPattern::Npb) — the spatial communication shape of
//!   an NPB kernel (from its full-run [`CommVolume`]),
//!   scaled to the requested rate, so trace-shaped loads can ride the
//!   same sweep grid as the synthetic ones.

use crate::matrix::TrafficMatrix;
use crate::npb::{NpbKernel, NpbTraceSpec, ScaledNpbSpec};
use crate::soteriou::SoteriouConfig;
use crate::volume::CommVolume;
use hyppi_topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Fraction of all traffic redirected to the corners in
/// [`SyntheticPattern::Hotspot`].
pub const HOTSPOT_FRACTION: f64 = 0.25;

/// A rate-scalable spatial traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SyntheticPattern {
    /// Uniform random: every destination equally likely.
    Uniform,
    /// Matrix transpose `(x, y) → (y, x)`; square grids only.
    Transpose,
    /// Index complement `i → n-1-i`.
    Complement,
    /// Uniform background with [`HOTSPOT_FRACTION`] of all traffic
    /// concentrated on the four grid corners.
    Hotspot,
    /// The Soteriou-Wang-Peh statistical model at the paper's p and σ.
    Soteriou,
    /// The spatial shape of an NPB kernel's communication volume.
    Npb(NpbKernel),
    /// The spatial shape of the *rescaled* 256-rank NPB program
    /// ([`ScaledNpbSpec`]): interleaved stretched instances of the paper's
    /// 16×16 spec covering the whole (multiple-of-16×16) mesh. This is
    /// what lets the 32×32 sweeps run real kernels rather than
    /// regenerated-at-size approximations.
    NpbScaled(NpbKernel),
}

impl SyntheticPattern {
    /// The patterns swept by default: the two the paper's methodology
    /// names (uniform for saturation analysis, Soteriou for design-space
    /// traffic) plus the transpose stress case.
    pub const DEFAULT_SWEEP: [SyntheticPattern; 3] = [
        SyntheticPattern::Uniform,
        SyntheticPattern::Soteriou,
        SyntheticPattern::Transpose,
    ];

    /// Stable label used in tables and JSON records.
    pub fn name(&self) -> String {
        match self {
            SyntheticPattern::Uniform => "uniform".into(),
            SyntheticPattern::Transpose => "transpose".into(),
            SyntheticPattern::Complement => "complement".into(),
            SyntheticPattern::Hotspot => "hotspot".into(),
            SyntheticPattern::Soteriou => "soteriou".into(),
            SyntheticPattern::Npb(k) => format!("npb-{}", k.name()),
            SyntheticPattern::NpbScaled(k) => format!("npb-scaled-{}", k.name()),
        }
    }

    /// Normalizes a communication volume's per-pair flit counts to rates
    /// with network-wide mean injection `rate`.
    fn volume_matrix(volume: &CommVolume, n: usize, rate: f64) -> TrafficMatrix {
        let total = volume.total_flits();
        let mut m = TrafficMatrix::zero(n);
        if total == 0 {
            return m;
        }
        let scale = rate * n as f64 / total as f64;
        for (s, d, flits) in volume.pairs() {
            m.set(s, d, flits as f64 * scale);
        }
        m
    }

    /// The traffic matrix of this pattern at mean injection `rate`
    /// (flits per node per cycle). Rates must be finite and non-negative;
    /// the spatial shape is independent of the rate.
    pub fn matrix(&self, topo: &Topology, rate: f64) -> TrafficMatrix {
        assert!(rate >= 0.0 && rate.is_finite(), "bad injection rate {rate}");
        let n = topo.num_nodes();
        match self {
            SyntheticPattern::Uniform => {
                let mut m = TrafficMatrix::zero(n);
                let per_pair = rate / (n - 1) as f64;
                for s in topo.nodes() {
                    for d in topo.nodes() {
                        if s != d {
                            m.set(s, d, per_pair);
                        }
                    }
                }
                m
            }
            SyntheticPattern::Transpose => {
                assert_eq!(
                    topo.width, topo.height,
                    "transpose needs a square grid ({}×{})",
                    topo.width, topo.height
                );
                let mut m = TrafficMatrix::zero(n);
                // Diagonal nodes are their own transpose and stay silent;
                // scale the others up so the mean rate is preserved.
                let senders = topo
                    .nodes()
                    .filter(|&s| {
                        let c = topo.coord(s);
                        c.x != c.y
                    })
                    .count();
                if senders == 0 {
                    return m;
                }
                let per_sender = rate * n as f64 / senders as f64;
                for s in topo.nodes() {
                    let c = topo.coord(s);
                    if c.x != c.y {
                        let d = NodeId(c.x * topo.width + c.y);
                        m.set(s, d, per_sender);
                    }
                }
                m
            }
            SyntheticPattern::Complement => {
                let mut m = TrafficMatrix::zero(n);
                let senders = (0..n).filter(|&i| n - 1 - i != i).count();
                if senders == 0 {
                    return m;
                }
                let per_sender = rate * n as f64 / senders as f64;
                for s in topo.nodes() {
                    let d = NodeId((n - 1 - s.index()) as u16);
                    if d != s {
                        m.set(s, d, per_sender);
                    }
                }
                m
            }
            SyntheticPattern::Hotspot => {
                let corners = [
                    NodeId(0),
                    NodeId(topo.width - 1),
                    NodeId((topo.height - 1) * topo.width),
                    NodeId(topo.num_nodes() as u16 - 1),
                ];
                let mut m = TrafficMatrix::zero(n);
                let background = rate * (1.0 - HOTSPOT_FRACTION) / (n - 1) as f64;
                for s in topo.nodes() {
                    for d in topo.nodes() {
                        if s != d {
                            m.set(s, d, background);
                        }
                    }
                    // A corner spreads its own hotspot share over the
                    // other corners, so every node offers exactly `rate`.
                    let targets = corners.iter().filter(|&&c| c != s).count() as f64;
                    for &c in &corners {
                        if c != s {
                            m.add(s, c, rate * HOTSPOT_FRACTION / targets);
                        }
                    }
                }
                m
            }
            SyntheticPattern::Soteriou => {
                // Soteriou scales to a *maximum* per-node rate; rescale to
                // the requested mean so all patterns sweep the same axis.
                let raw = SoteriouConfig::paper().with_rate(1.0).matrix(topo);
                let mean = raw.mean_injection();
                if mean == 0.0 {
                    raw
                } else {
                    raw.scaled(rate / mean)
                }
            }
            SyntheticPattern::Npb(kernel) => {
                let spec = NpbTraceSpec {
                    kernel: *kernel,
                    width: topo.width,
                    height: topo.height,
                };
                Self::volume_matrix(&spec.volume(), n, rate)
            }
            SyntheticPattern::NpbScaled(kernel) => {
                let spec = ScaledNpbSpec::new(*kernel, topo.width, topo.height);
                Self::volume_matrix(&spec.volume(), n, rate)
            }
        }
    }
}

impl std::fmt::Display for SyntheticPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::{Gbps, LinkTechnology};
    use hyppi_topology::{mesh, MeshSpec};

    fn grid(w: u16, h: u16) -> Topology {
        mesh(MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        })
    }

    fn all_patterns() -> Vec<SyntheticPattern> {
        let mut v = vec![
            SyntheticPattern::Uniform,
            SyntheticPattern::Transpose,
            SyntheticPattern::Complement,
            SyntheticPattern::Hotspot,
            SyntheticPattern::Soteriou,
        ];
        v.extend(NpbKernel::ALL.map(SyntheticPattern::Npb));
        v
    }

    #[test]
    fn mean_injection_matches_requested_rate() {
        let t = grid(8, 8);
        for p in all_patterns() {
            let m = p.matrix(&t, 0.1);
            let mean = m.mean_injection();
            assert!(
                (mean - 0.1).abs() < 1e-9,
                "{p}: mean injection {mean} != 0.1"
            );
        }
    }

    #[test]
    fn rate_scales_linearly() {
        let t = grid(8, 8);
        for p in all_patterns() {
            let lo = p.matrix(&t, 0.05).total_injection();
            let hi = p.matrix(&t, 0.10).total_injection();
            assert!((hi - 2.0 * lo).abs() < 1e-9, "{p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn no_self_traffic() {
        let t = grid(8, 8);
        for p in all_patterns() {
            let m = p.matrix(&t, 0.1);
            for node in t.nodes() {
                assert_eq!(m.rate(node, node), 0.0, "{p}: self-traffic at {node}");
            }
        }
    }

    #[test]
    fn transpose_sends_to_mirrored_coordinate() {
        let t = grid(4, 4);
        let m = SyntheticPattern::Transpose.matrix(&t, 0.1);
        // (1, 0) → node 1 sends to (0, 1) → node 4.
        assert!(m.rate(NodeId(1), NodeId(4)) > 0.0);
        // Diagonal nodes are silent.
        assert_eq!(m.injection_rate(NodeId(0)), 0.0);
        assert_eq!(m.injection_rate(NodeId(5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "square grid")]
    fn transpose_rejects_non_square() {
        let t = grid(4, 2);
        let _ = SyntheticPattern::Transpose.matrix(&t, 0.1);
    }

    #[test]
    fn complement_pairs_opposite_indices() {
        let t = grid(4, 4);
        let m = SyntheticPattern::Complement.matrix(&t, 0.1);
        assert!(m.rate(NodeId(0), NodeId(15)) > 0.0);
        assert!(m.rate(NodeId(3), NodeId(12)) > 0.0);
        assert_eq!(m.rate(NodeId(0), NodeId(14)), 0.0);
    }

    #[test]
    fn hotspot_corners_receive_more() {
        let t = grid(8, 8);
        let m = SyntheticPattern::Hotspot.matrix(&t, 0.1);
        let received = |d: NodeId| -> f64 { t.nodes().map(|s| m.rate(s, d)).sum() };
        // A corner receives several times the traffic of an interior node.
        assert!(received(NodeId(0)) > 3.0 * received(NodeId(27)));
    }

    #[test]
    fn npb_shape_follows_kernel_volume() {
        let t = grid(16, 16);
        let m = SyntheticPattern::Npb(NpbKernel::Lu).matrix(&t, 0.1);
        // LU is 1-hop wavefront traffic: east/south (+ reverse) neighbours
        // only; no long-range pairs.
        assert!(m.rate(NodeId(0), NodeId(1)) > 0.0);
        assert_eq!(m.rate(NodeId(0), NodeId(255)), 0.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SyntheticPattern::Uniform.name(), "uniform");
        assert_eq!(SyntheticPattern::Npb(NpbKernel::Ft).name(), "npb-FT");
        assert_eq!(
            SyntheticPattern::NpbScaled(NpbKernel::Cg).name(),
            "npb-scaled-CG"
        );
    }

    #[test]
    fn scaled_npb_pattern_hits_requested_rate() {
        // On the base 16×16 the rescale is the identity, so the scaled
        // shape equals the native one; either way the mean injection must
        // land on the requested rate.
        let t = grid(16, 16);
        for k in NpbKernel::ALL {
            let scaled = SyntheticPattern::NpbScaled(k).matrix(&t, 0.1);
            assert!((scaled.mean_injection() - 0.1).abs() < 1e-9, "{k}");
            let native = SyntheticPattern::Npb(k).matrix(&t, 0.1);
            for s in t.nodes() {
                for d in t.nodes() {
                    assert!(
                        (scaled.rate(s, d) - native.rate(s, d)).abs() < 1e-12,
                        "{k}: {s}->{d}"
                    );
                }
            }
        }
    }
}
