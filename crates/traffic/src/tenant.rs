//! Multi-tenant workload composition on disjoint mesh partitions.
//!
//! A [`TenantSpec`] co-schedules several synthetic workloads — any
//! [`SyntheticPattern`], including the rescaled NPB programs — on
//! disjoint rectangular tiles of one mesh, reusing the balanced
//! rectangle geometry of [`hyppi_topology::Partition`] (a tenant layout
//! *is* a shard grid, just resolved against workloads instead of
//! engine shards; tenant rectangles and engine shard rectangles are
//! independent of each other). Each tenant's pattern is generated on a
//! sub-mesh of its tile's dimensions and remapped into parent
//! coordinates, so all traffic stays inside the tenant's rectangle:
//! tenants never exchange packets, and any latency a tenant's packets
//! pick up from a neighbour is pure *interference* — contention on
//! routers and links the rectangles share no traffic across but whose
//! traffic crosses tile-internal resources near the seam. The resolved
//! [`TenantMap`] (node → tenant) is what the simulator consumes to
//! split per-tenant statistics.

use crate::matrix::TrafficMatrix;
use crate::patterns::SyntheticPattern;
use hyppi_phys::{Gbps, LinkTechnology};
use hyppi_topology::{mesh, MeshSpec, NodeId, Partition, ShardSpec, Topology};
use serde::{Deserialize, Serialize};

/// One tenant's workload: a spatial pattern at an offered load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantWorkload {
    /// Spatial pattern, generated on the tenant's tile sub-mesh.
    pub pattern: SyntheticPattern,
    /// Mean per-node injection rate inside the tile (flits/node/cycle).
    pub rate: f64,
}

/// A multi-tenant workload layout: a rectangular tile grid plus one
/// workload per tile, in tile order (row-major, like shard ids).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    grid: ShardSpec,
    tenants: Vec<TenantWorkload>,
}

/// The resolved node-ownership table of a [`TenantSpec`] on a concrete
/// topology — what the simulation engines consume.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMap {
    /// Owning tenant of every node, node-id indexed.
    pub tenant_of_node: Vec<u16>,
    /// Tenant count.
    pub tenants: usize,
}

impl TenantMap {
    /// The owning tenant of `node`.
    #[inline]
    pub fn tenant_of(&self, node: NodeId) -> usize {
        usize::from(self.tenant_of_node[node.index()])
    }
}

impl TenantSpec {
    /// A layout placing `tenants[k]` on tile `k` of `grid` (row-major).
    /// One workload per tile is required — every node has an owner, so
    /// per-tenant statistics partition the aggregate exactly.
    pub fn new(grid: ShardSpec, tenants: Vec<TenantWorkload>) -> Self {
        assert_eq!(
            tenants.len(),
            grid.count(),
            "need one workload per tile ({} tiles, {} workloads)",
            grid.count(),
            tenants.len()
        );
        TenantSpec { grid, tenants }
    }

    /// Two tenants side by side (a 2×1 vertical split).
    pub fn pair(left: TenantWorkload, right: TenantWorkload) -> Self {
        Self::new(ShardSpec { sx: 2, sy: 1 }, vec![left, right])
    }

    /// Number of tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The tile grid.
    pub fn grid(&self) -> ShardSpec {
        self.grid
    }

    /// The per-tile workloads, tile order.
    pub fn workloads(&self) -> &[TenantWorkload] {
        &self.tenants
    }

    /// This layout with tenant `k`'s rate replaced — the sweep axis of
    /// interference curves (vary one tenant's load, hold the others).
    pub fn with_rate(&self, tenant: usize, rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "bad injection rate {rate}");
        let mut s = self.clone();
        s.tenants[tenant].rate = rate;
        s
    }

    /// Stable label, e.g. `"2x1[uniform@0.080|npb-scaled-CG@0.120]"`.
    pub fn name(&self) -> String {
        let parts: Vec<String> = self
            .tenants
            .iter()
            .map(|t| format!("{}@{:.3}", t.pattern.name(), t.rate))
            .collect();
        format!("{}x{}[{}]", self.grid.sx, self.grid.sy, parts.join("|"))
    }

    /// Resolves node ownership against a topology (balanced rectangle
    /// tiles — the same geometry as an `sx × sy` shard grid).
    pub fn map(&self, topo: &Topology) -> TenantMap {
        let part = Partition::new(topo, self.grid);
        TenantMap {
            tenant_of_node: part.shard_of_node,
            tenants: self.tenants.len(),
        }
    }

    /// The x/y spans of tile `k`: `(x0, x1, y0, y1)`, end-exclusive —
    /// the balanced block boundaries `Partition` uses.
    fn tile_bounds(&self, topo: &Topology, k: usize) -> (u16, u16, u16, u16) {
        let (sx, sy) = (u32::from(self.grid.sx), u32::from(self.grid.sy));
        let (tx, ty) = ((k % sx as usize) as u32, (k / sx as usize) as u32);
        let (w, h) = (u32::from(topo.width), u32::from(topo.height));
        (
            (tx * w / sx) as u16,
            ((tx + 1) * w / sx) as u16,
            (ty * h / sy) as u16,
            ((ty + 1) * h / sy) as u16,
        )
    }

    /// The combined traffic matrix: each tenant's pattern generated on
    /// a sub-mesh of its tile's dimensions at its own rate, remapped
    /// into parent coordinates. All traffic is tile-internal.
    pub fn matrix(&self, topo: &Topology) -> TrafficMatrix {
        let mut m = TrafficMatrix::zero(topo.num_nodes());
        for (k, t) in self.tenants.iter().enumerate() {
            let (x0, x1, y0, y1) = self.tile_bounds(topo, k);
            let (tw, th) = (x1 - x0, y1 - y0);
            // The pattern only reads grid dimensions and coordinates,
            // so the sub-mesh link technology is irrelevant.
            let sub = mesh(MeshSpec {
                width: tw,
                height: th,
                core_spacing_mm: 1.0,
                base_tech: LinkTechnology::Electronic,
                capacity: Gbps::new(50.0),
            });
            let tile = t.pattern.matrix(&sub, t.rate);
            let up = |l: NodeId| -> NodeId {
                let (lx, ly) = (l.0 % tw, l.0 / tw);
                NodeId((y0 + ly) * topo.width + (x0 + lx))
            };
            for (s, d, r) in tile.demands() {
                m.add(up(s), up(d), r);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npb::NpbKernel;

    fn grid_topo(w: u16, h: u16) -> Topology {
        mesh(MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        })
    }

    fn two_tenants(a_rate: f64, b_rate: f64) -> TenantSpec {
        TenantSpec::pair(
            TenantWorkload {
                pattern: SyntheticPattern::Uniform,
                rate: a_rate,
            },
            TenantWorkload {
                pattern: SyntheticPattern::Hotspot,
                rate: b_rate,
            },
        )
    }

    #[test]
    fn map_partitions_every_node() {
        let t = grid_topo(8, 4);
        let spec = two_tenants(0.1, 0.2);
        let map = spec.map(&t);
        assert_eq!(map.tenants, 2);
        assert_eq!(map.tenant_of_node.len(), 32);
        // Left half tenant 0, right half tenant 1 (2×1 vertical split).
        for node in t.nodes() {
            let expect = u16::from(t.coord(node).x >= 4);
            assert_eq!(map.tenant_of_node[node.index()], expect, "{node}");
        }
    }

    #[test]
    fn traffic_stays_inside_tiles() {
        let t = grid_topo(8, 8);
        let spec = TenantSpec::new(
            ShardSpec { sx: 2, sy: 2 },
            vec![
                TenantWorkload {
                    pattern: SyntheticPattern::Uniform,
                    rate: 0.1,
                },
                TenantWorkload {
                    pattern: SyntheticPattern::Complement,
                    rate: 0.2,
                },
                TenantWorkload {
                    pattern: SyntheticPattern::Hotspot,
                    rate: 0.05,
                },
                TenantWorkload {
                    pattern: SyntheticPattern::Transpose,
                    rate: 0.15,
                },
            ],
        );
        let map = spec.map(&t);
        let m = spec.matrix(&t);
        for (s, d, r) in m.demands() {
            assert!(r > 0.0);
            assert_eq!(
                map.tenant_of(s),
                map.tenant_of(d),
                "cross-tenant demand {s}->{d}"
            );
        }
    }

    #[test]
    fn per_tile_rates_are_preserved() {
        let t = grid_topo(8, 4);
        let spec = two_tenants(0.1, 0.3);
        let map = spec.map(&t);
        let m = spec.matrix(&t);
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for node in t.nodes() {
            let k = map.tenant_of(node);
            sums[k] += m.injection_rate(node);
            counts[k] += 1;
        }
        assert!((sums[0] / counts[0] as f64 - 0.1).abs() < 1e-9);
        assert!((sums[1] / counts[1] as f64 - 0.3).abs() < 1e-9);
    }

    #[test]
    fn with_rate_changes_one_tenant_only() {
        let spec = two_tenants(0.1, 0.2);
        let swept = spec.with_rate(1, 0.4);
        assert_eq!(swept.workloads()[0].rate, 0.1);
        assert_eq!(swept.workloads()[1].rate, 0.4);
        assert_eq!(spec.workloads()[1].rate, 0.2, "original untouched");
    }

    #[test]
    fn scaled_npb_tenant_on_multiple_of_16_tile() {
        // The repro tenant sweeps co-schedule a rescaled NPB program
        // with a synthetic neighbour; a 32×32 mesh split 2×1 gives each
        // tenant a 16×32 tile, a legal ScaledNpbSpec target.
        let t = grid_topo(32, 32);
        let spec = TenantSpec::pair(
            TenantWorkload {
                pattern: SyntheticPattern::NpbScaled(NpbKernel::Cg),
                rate: 0.08,
            },
            TenantWorkload {
                pattern: SyntheticPattern::Uniform,
                rate: 0.1,
            },
        );
        let map = spec.map(&t);
        let m = spec.matrix(&t);
        let mut demands = 0;
        for (s, d, _) in m.demands() {
            assert_eq!(map.tenant_of(s), map.tenant_of(d));
            demands += 1;
        }
        assert!(demands > 0, "CG tenant generated traffic");
        // Tenant 0's mean rate lands on the requested one.
        let a_nodes: Vec<NodeId> = t.nodes().filter(|&n| map.tenant_of(n) == 0).collect();
        let mean: f64 =
            a_nodes.iter().map(|&n| m.injection_rate(n)).sum::<f64>() / a_nodes.len() as f64;
        assert!((mean - 0.08).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn name_is_stable() {
        let spec = two_tenants(0.08, 0.25);
        assert_eq!(spec.name(), "2x1[uniform@0.080|hotspot@0.250]");
    }

    #[test]
    #[should_panic(expected = "one workload per tile")]
    fn rejects_wrong_workload_count() {
        let _ = TenantSpec::new(
            ShardSpec { sx: 2, sy: 2 },
            vec![TenantWorkload {
                pattern: SyntheticPattern::Uniform,
                rate: 0.1,
            }],
        );
    }
}
