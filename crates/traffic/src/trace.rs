//! Trace containers and a compact binary format.
//!
//! A [`Trace`] is a time-ordered list of packet injection events, ready to
//! drive the cycle-accurate simulator. Traces also carry the wall-clock
//! duration of the application's communication phases, which the energy
//! accounting needs to charge continuously-powered photonic infrastructure
//! (see `hyppi-dsent::olink`).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hyppi_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Magic bytes of the binary trace format.
const MAGIC: &[u8; 4] = b"HYT1";

/// One packet injection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Injection cycle.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Packet size in flits (1 or 32 at the paper's settings).
    pub flits: u32,
}

/// A complete trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Descriptive name (e.g. "NPB FT class A, 256 ranks").
    pub name: String,
    /// Number of nodes the trace addresses.
    pub num_nodes: u16,
    /// Cycle span of the simulated event window.
    pub duration_cycles: u64,
    /// Wall-clock seconds of communication-active application time that the
    /// full (unscaled) workload represents; used for time-based energy
    /// charges.
    pub comm_wall_seconds: f64,
    /// Injection events, sorted by cycle.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a trace, sorting events by cycle and computing the duration.
    pub fn new(
        name: impl Into<String>,
        num_nodes: u16,
        comm_wall_seconds: f64,
        mut events: Vec<TraceEvent>,
    ) -> Self {
        events.sort_by_key(|e| e.cycle);
        let duration_cycles = events.last().map_or(0, |e| e.cycle + 1);
        Trace {
            name: name.into(),
            num_nodes,
            duration_cycles,
            comm_wall_seconds,
            events,
        }
    }

    /// Total flits across all events.
    pub fn total_flits(&self) -> u64 {
        self.events.iter().map(|e| u64::from(e.flits)).sum()
    }

    /// Total packets.
    pub fn total_packets(&self) -> usize {
        self.events.len()
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.name.len() + self.events.len() * 16);
        buf.put_slice(MAGIC);
        buf.put_u16(self.num_nodes);
        buf.put_u64(self.duration_cycles);
        buf.put_f64(self.comm_wall_seconds);
        buf.put_u32(self.name.len() as u32);
        buf.put_slice(self.name.as_bytes());
        buf.put_u64(self.events.len() as u64);
        for e in &self.events {
            buf.put_u64(e.cycle);
            buf.put_u16(e.src.0);
            buf.put_u16(e.dst.0);
            buf.put_u32(e.flits);
        }
        buf.freeze()
    }

    /// Deserializes from the binary format.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, TraceDecodeError> {
        use TraceDecodeError::*;
        if data.remaining() < 4 || &data.copy_to_bytes(4)[..] != MAGIC {
            return Err(BadMagic);
        }
        if data.remaining() < 2 + 8 + 8 + 4 {
            return Err(Truncated);
        }
        let num_nodes = data.get_u16();
        let duration_cycles = data.get_u64();
        let comm_wall_seconds = data.get_f64();
        let name_len = data.get_u32() as usize;
        if data.remaining() < name_len {
            return Err(Truncated);
        }
        let name = String::from_utf8(data.copy_to_bytes(name_len).to_vec()).map_err(|_| BadName)?;
        if data.remaining() < 8 {
            return Err(Truncated);
        }
        let count = data.get_u64() as usize;
        if data.remaining() < count * 16 {
            return Err(Truncated);
        }
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let cycle = data.get_u64();
            let src = NodeId(data.get_u16());
            let dst = NodeId(data.get_u16());
            let flits = data.get_u32();
            if src.0 >= num_nodes || dst.0 >= num_nodes {
                return Err(NodeOutOfRange);
            }
            events.push(TraceEvent {
                cycle,
                src,
                dst,
                flits,
            });
        }
        Ok(Trace {
            name,
            num_nodes,
            duration_cycles,
            comm_wall_seconds,
            events,
        })
    }
}

/// Errors from [`Trace::from_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Buffer ended early.
    Truncated,
    /// Name was not valid UTF-8.
    BadName,
    /// An event referenced a node outside `num_nodes`.
    NodeOutOfRange,
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TraceDecodeError::BadMagic => "bad magic bytes",
            TraceDecodeError::Truncated => "truncated trace",
            TraceDecodeError::BadName => "trace name is not UTF-8",
            TraceDecodeError::NodeOutOfRange => "event node out of range",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TraceDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "sample",
            4,
            0.25,
            vec![
                TraceEvent {
                    cycle: 10,
                    src: NodeId(0),
                    dst: NodeId(3),
                    flits: 32,
                },
                TraceEvent {
                    cycle: 2,
                    src: NodeId(1),
                    dst: NodeId(2),
                    flits: 1,
                },
            ],
        )
    }

    #[test]
    fn constructor_sorts_and_measures() {
        let t = sample();
        assert_eq!(t.events[0].cycle, 2);
        assert_eq!(t.duration_cycles, 11);
        assert_eq!(t.total_flits(), 33);
        assert_eq!(t.total_packets(), 2);
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let decoded = Trace::from_bytes(t.to_bytes()).expect("roundtrip");
        assert_eq!(t, decoded);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = sample().to_bytes().to_vec();
        raw[0] = b'X';
        assert_eq!(
            Trace::from_bytes(Bytes::from(raw)),
            Err(TraceDecodeError::BadMagic)
        );
    }

    #[test]
    fn rejects_truncated() {
        let raw = sample().to_bytes();
        let cut = raw.slice(0..raw.len() - 5);
        assert_eq!(Trace::from_bytes(cut), Err(TraceDecodeError::Truncated));
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let t = Trace::new(
            "bad",
            2,
            0.0,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(7),
                flits: 1,
            }],
        );
        assert_eq!(
            Trace::from_bytes(t.to_bytes()),
            Err(TraceDecodeError::NodeOutOfRange)
        );
    }

    #[test]
    fn empty_trace_roundtrip() {
        let t = Trace::new("empty", 16, 0.0, vec![]);
        assert_eq!(t.duration_cycles, 0);
        let d = Trace::from_bytes(t.to_bytes()).unwrap();
        assert_eq!(t, d);
    }
}
