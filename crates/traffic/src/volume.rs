//! Communication-volume aggregation.
//!
//! The paper's energy methodology (§IV): "we obtain the dynamic energy
//! consumption per flit from our modified DSENT, and use it to compute the
//! total dynamic energy based on the communication volume and the network
//! paths taken by the flits." [`CommVolume`] is that communication volume —
//! total flits per source-destination pair for a full benchmark run, plus
//! the communication-active wall time for time-based charges.

use hyppi_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Flit counts per source-destination pair for a full application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommVolume {
    n: usize,
    flits: Vec<u64>,
    /// Communication-active wall time of the run, seconds.
    pub comm_wall_seconds: f64,
}

impl CommVolume {
    /// Creates an empty volume for `n` nodes.
    pub fn zero(n: usize, comm_wall_seconds: f64) -> Self {
        CommVolume {
            n,
            flits: vec![0; n * n],
            comm_wall_seconds,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds flits for a pair. Self-traffic is dropped.
    pub fn add(&mut self, src: NodeId, dst: NodeId, flits: u64) {
        if src != dst {
            self.flits[src.index() * self.n + dst.index()] += flits;
        }
    }

    /// Flits sent from `src` to `dst` over the whole run.
    #[inline]
    pub fn get(&self, src: NodeId, dst: NodeId) -> u64 {
        self.flits[src.index() * self.n + dst.index()]
    }

    /// Total flits across all pairs.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Iterates nonzero `(src, dst, flits)` entries.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.flits
            .iter()
            .enumerate()
            .filter(|&(_i, &f)| f > 0)
            .map(|(i, &f)| (NodeId((i / self.n) as u16), NodeId((i % self.n) as u16), f))
    }

    /// Mean hop-weighted quantity: `Σ flits(s,d)·w(s,d) / Σ flits`, for an
    /// arbitrary per-pair weight (hops, latency, …).
    pub fn weighted_mean(&self, mut weight: impl FnMut(NodeId, NodeId) -> f64) -> f64 {
        let mut wsum = 0.0;
        let mut fsum = 0.0;
        for (s, d, f) in self.pairs() {
            wsum += f as f64 * weight(s, d);
            fsum += f as f64;
        }
        if fsum == 0.0 {
            0.0
        } else {
            wsum / fsum
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_totals() {
        let mut v = CommVolume::zero(4, 0.5);
        v.add(NodeId(0), NodeId(1), 100);
        v.add(NodeId(0), NodeId(1), 50);
        v.add(NodeId(2), NodeId(3), 8);
        assert_eq!(v.get(NodeId(0), NodeId(1)), 150);
        assert_eq!(v.total_flits(), 158);
        assert_eq!(v.pairs().count(), 2);
    }

    #[test]
    fn drops_self_traffic() {
        let mut v = CommVolume::zero(4, 0.0);
        v.add(NodeId(1), NodeId(1), 99);
        assert_eq!(v.total_flits(), 0);
    }

    #[test]
    fn weighted_mean_weights_by_flits() {
        let mut v = CommVolume::zero(3, 0.0);
        v.add(NodeId(0), NodeId(1), 10); // weight 1
        v.add(NodeId(0), NodeId(2), 30); // weight 2
        let mean = v.weighted_mean(|_, d| f64::from(d.0));
        assert!((mean - (10.0 + 60.0) / 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_weighted_mean_is_zero() {
        let v = CommVolume::zero(3, 0.0);
        assert_eq!(v.weighted_mean(|_, _| 100.0), 0.0);
    }
}
