//! Seeded temporal burstiness for synthetic injection.
//!
//! The steady synthetics in [`crate::patterns`] decide *where* traffic
//! goes; a [`BurstSpec`] decides *when*, by modulating every source's
//! Bernoulli injection probability with a per-(seed, node, cycle) rate
//! factor. The factor process is mean-one, so a bursty sweep offers the
//! same long-run load as the steady one — only the short-run clustering
//! (and therefore the latency tail) changes.
//!
//! Two modulators ride on one common construction:
//!
//! * [`BurstSpec::OnOff`] — the classic two-state ON/OFF source: a node
//!   is ON for a `duty` fraction of time at factor `1/duty`, and OFF
//!   (factor 0) otherwise.
//! * [`BurstSpec::Mmpp`] — a three-state Markov-modulated process in
//!   the MMPP spirit: an idle state (factor 0), a nominal state, and a
//!   burst state at `burstiness ×` the mean, with stationary weights
//!   chosen so the mean factor is exactly 1.
//!
//! **Determinism.** The factor is a *pure function* of
//! `(spec, seed, node, cycle)` — no RNG stream is consumed, so the
//! engine's Bernoulli draw sequence is identical for every spec, every
//! shard count, and every snapshot splice point. The state process is
//! slot-quantized ([`BURST_SLOT_CYCLES`]) and regenerates from the
//! stationary distribution every [`BURST_REGEN_SLOTS`] slots; within a
//! superslot each slot either holds the previous state or jumps to a
//! fresh stationary draw (a jump chain whose invariant distribution is
//! the stationary one by construction, with geometric sojourns of
//! nominal mean [`BurstSpec::sojourn_slots`]). Evaluating the state at
//! an arbitrary cycle therefore replays at most one superslot of
//! per-slot hashes — cheap enough for warm-start resumes and idle
//! fast-forward jumps, and [`BurstState`] caches the per-node factors
//! of the current slot for the engine hot path.
//!
//! **Clamping.** The engine gates injection on
//! `uniform() < rate × factor`; a product above 1 simply fires every
//! cycle, so extreme `rate × burstiness` combinations saturate the ON
//! slots rather than overflowing. This slightly under-delivers the mean
//! at very high offered loads — identically in every engine.

use serde::{Deserialize, Serialize};

/// Cycles per burst slot: the modulation factor is constant within a
/// slot, so burst dwell times are multiples of this quantum.
pub const BURST_SLOT_CYCLES: u64 = 16;

/// Slots per superslot: the state regenerates from the stationary
/// distribution at every superslot boundary, bounding the replay cost
/// of evaluating the state at an arbitrary cycle.
pub const BURST_REGEN_SLOTS: u64 = 32;

/// Default nominal mean sojourn, in slots, of the built-in constructors.
pub const DEFAULT_SOJOURN_SLOTS: f64 = 4.0;

/// A seeded temporal modulation of synthetic injection rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum BurstSpec {
    /// Steady Bernoulli injection: factor 1 everywhere (the default).
    #[default]
    Steady,
    /// Two-state ON/OFF source: ON a `duty ∈ (0, 1]` fraction of slots
    /// at factor `1/duty`, OFF at factor 0; `sojourn` is the nominal
    /// mean state dwell in slots (≥ 1).
    OnOff { duty: f64, sojourn: f64 },
    /// Three-state MMPP-style source: idle (factor 0), nominal, and a
    /// burst state at `peak > 1` times the mean; stationary weights put
    /// `1/(2·peak)` of slots in each of idle and burst, and the nominal
    /// factor is solved so the stationary mean is exactly 1.
    Mmpp { peak: f64, sojourn: f64 },
}

impl BurstSpec {
    /// ON/OFF spec with peak-to-mean ratio `burstiness ≥ 1` (duty
    /// `1/burstiness`) and the default sojourn. `1.0` is steady.
    pub fn onoff(burstiness: f64) -> Self {
        assert!(
            burstiness >= 1.0 && burstiness.is_finite(),
            "burstiness must be ≥ 1, got {burstiness}"
        );
        if burstiness == 1.0 {
            return BurstSpec::Steady;
        }
        BurstSpec::OnOff {
            duty: 1.0 / burstiness,
            sojourn: DEFAULT_SOJOURN_SLOTS,
        }
    }

    /// MMPP spec with peak-to-mean ratio `burstiness > 1` and the
    /// default sojourn. `1.0` is steady.
    pub fn mmpp(burstiness: f64) -> Self {
        assert!(
            burstiness >= 1.0 && burstiness.is_finite(),
            "burstiness must be ≥ 1, got {burstiness}"
        );
        if burstiness == 1.0 {
            return BurstSpec::Steady;
        }
        BurstSpec::Mmpp {
            peak: burstiness,
            sojourn: DEFAULT_SOJOURN_SLOTS,
        }
    }

    /// Peak-to-mean ratio of the factor process (1 for steady).
    pub fn burstiness(&self) -> f64 {
        match *self {
            BurstSpec::Steady => 1.0,
            BurstSpec::OnOff { duty, .. } => 1.0 / duty,
            BurstSpec::Mmpp { peak, .. } => peak,
        }
    }

    /// Nominal mean state sojourn in slots.
    pub fn sojourn_slots(&self) -> f64 {
        match *self {
            BurstSpec::Steady => f64::INFINITY,
            BurstSpec::OnOff { sojourn, .. } | BurstSpec::Mmpp { sojourn, .. } => sojourn,
        }
    }

    /// Stable label for tables, JSON records and curve names.
    pub fn name(&self) -> String {
        match *self {
            BurstSpec::Steady => "steady".into(),
            BurstSpec::OnOff { duty, .. } => format!("onoff-b{:.1}", 1.0 / duty),
            BurstSpec::Mmpp { peak, .. } => format!("mmpp-b{peak:.1}"),
        }
    }

    /// Panics on parameters the factor construction cannot represent.
    pub fn validate(&self) {
        match *self {
            BurstSpec::Steady => {}
            BurstSpec::OnOff { duty, sojourn } => {
                assert!(
                    duty > 0.0 && duty <= 1.0 && duty.is_finite(),
                    "ON/OFF duty must be in (0, 1], got {duty}"
                );
                assert!(
                    sojourn >= 1.0 && sojourn.is_finite(),
                    "sojourn must be ≥ 1 slot, got {sojourn}"
                );
            }
            BurstSpec::Mmpp { peak, sojourn } => {
                assert!(
                    peak > 1.0 && peak.is_finite(),
                    "MMPP peak must be > 1, got {peak}"
                );
                assert!(
                    sojourn >= 1.0 && sojourn.is_finite(),
                    "sojourn must be ≥ 1 slot, got {sojourn}"
                );
            }
        }
    }

    /// Words folded into plan fingerprints: the discriminant plus the
    /// raw parameter bits, so two runs share a snapshot only when their
    /// burst processes are bit-identical.
    pub fn fingerprint_words(&self) -> [u64; 3] {
        match *self {
            BurstSpec::Steady => [0, 0, 0],
            BurstSpec::OnOff { duty, sojourn } => [1, duty.to_bits(), sojourn.to_bits()],
            BurstSpec::Mmpp { peak, sojourn } => [2, peak.to_bits(), sojourn.to_bits()],
        }
    }

    /// Stationary draw: maps a uniform `u ∈ [0, 1)` to this spec's rate
    /// factor. The stationary mean is exactly 1 for every spec.
    fn stationary_factor(&self, u: f64) -> f64 {
        match *self {
            BurstSpec::Steady => 1.0,
            BurstSpec::OnOff { duty, .. } => {
                if u < duty {
                    1.0 / duty
                } else {
                    0.0
                }
            }
            BurstSpec::Mmpp { peak, .. } => {
                // π(idle) = π(burst) = 1/(2·peak); the nominal factor m
                // solves π(nominal)·m + π(burst)·peak = 1.
                let tail = 1.0 / (2.0 * peak);
                if u < tail {
                    0.0
                } else if u < 2.0 * tail {
                    peak
                } else {
                    // (1 − peak·tail) / (1 − 2·tail) = 0.5 / (1 − 1/peak)
                    0.5 / (1.0 - 1.0 / peak)
                }
            }
        }
    }

    /// The rate factor of `node` at `cycle` under `seed` — the pure
    /// function both engines and the parity oracle share. Replays at
    /// most one superslot of per-slot jump decisions.
    pub fn factor_at(&self, seed: u64, node: usize, cycle: u64) -> f64 {
        if matches!(self, BurstSpec::Steady) {
            return 1.0;
        }
        let slot = cycle / BURST_SLOT_CYCLES;
        let base = slot - slot % BURST_REGEN_SLOTS;
        let jump_p = 1.0 / self.sojourn_slots();
        let h = slot_hash(seed, node, base);
        let mut factor = self.stationary_factor(unit(h as u32));
        for s in base + 1..=slot {
            let h = slot_hash(seed, node, s);
            // Low half decides whether this slot jumps; high half is the
            // fresh stationary draw when it does.
            if unit(h as u32) < jump_p {
                factor = self.stationary_factor(unit((h >> 32) as u32));
            }
        }
        factor
    }
}

impl std::fmt::Display for BurstSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// SplitMix64 over (seed, node, slot) — the per-slot entropy source.
#[inline]
fn slot_hash(seed: u64, node: usize, slot: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(slot.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 32 hash bits to a uniform in [0, 1).
#[inline]
fn unit(bits: u32) -> f64 {
    f64::from(bits) / (u32::MAX as f64 + 1.0)
}

/// Per-node factor cache for the engine injection loop: factors are
/// constant within a slot, so the cache recomputes only at slot
/// boundaries (and from scratch after an arbitrary jump — a resume or
/// an idle fast-forward — by replaying within the superslot). Pure
/// bookkeeping over [`BurstSpec::factor_at`]; never snapshotted.
#[derive(Debug, Clone)]
pub struct BurstState {
    spec: BurstSpec,
    seed: u64,
    /// Slot the cached factors belong to (`u64::MAX` = not yet filled).
    slot: u64,
    factors: Vec<f64>,
}

impl BurstState {
    /// A cache for `nodes` sources under `spec` and the workload `seed`.
    pub fn new(spec: BurstSpec, seed: u64, nodes: usize) -> Self {
        spec.validate();
        BurstState {
            spec,
            seed,
            slot: u64::MAX,
            factors: vec![1.0; nodes],
        }
    }

    /// A zero-node steady cache — the placeholder for workloads that
    /// never consult burst factors (trace-driven runs).
    pub fn steady() -> Self {
        Self::new(BurstSpec::Steady, 0, 0)
    }

    /// Whether the spec is steady (factors are all 1 forever).
    pub fn is_steady(&self) -> bool {
        matches!(self.spec, BurstSpec::Steady)
    }

    /// Per-node rate factors at `cycle` (refreshed on slot change).
    pub fn factors_at(&mut self, cycle: u64) -> &[f64] {
        if !self.is_steady() {
            let slot = cycle / BURST_SLOT_CYCLES;
            if slot != self.slot {
                for (node, f) in self.factors.iter_mut().enumerate() {
                    *f = self.spec.factor_at(self.seed, node, cycle);
                }
                self.slot = slot;
            }
        }
        &self.factors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_identity() {
        let spec = BurstSpec::Steady;
        for c in [0, 7, 1000, u64::MAX / 2] {
            assert_eq!(spec.factor_at(42, 3, c), 1.0);
        }
        assert_eq!(BurstSpec::onoff(1.0), BurstSpec::Steady);
        assert_eq!(BurstSpec::mmpp(1.0), BurstSpec::Steady);
    }

    #[test]
    fn factor_is_pure_and_slot_constant() {
        for spec in [BurstSpec::onoff(4.0), BurstSpec::mmpp(3.0)] {
            for node in [0usize, 17] {
                for slot in [0u64, 5, 31, 32, 100] {
                    let base = slot * BURST_SLOT_CYCLES;
                    let f = spec.factor_at(9, node, base);
                    // Same value at every cycle of the slot, every call.
                    for off in [0, 1, BURST_SLOT_CYCLES - 1] {
                        assert_eq!(spec.factor_at(9, node, base + off), f);
                    }
                }
            }
        }
    }

    #[test]
    fn cache_matches_pure_function_across_jumps() {
        let spec = BurstSpec::mmpp(4.0);
        let mut st = BurstState::new(spec, 77, 5);
        // Forward scan, then an arbitrary jump (resume / fast-forward).
        for cycle in [0u64, 3, 16, 17, 160, 4096, 50, 1_000_000] {
            let cached = st.factors_at(cycle).to_vec();
            for (node, &f) in cached.iter().enumerate() {
                assert_eq!(f, spec.factor_at(77, node, cycle), "node {node} @ {cycle}");
            }
        }
    }

    #[test]
    fn factors_differ_across_nodes_and_seeds() {
        let spec = BurstSpec::onoff(4.0);
        let series = |seed: u64, node: usize| -> Vec<u64> {
            (0..64)
                .map(|s| spec.factor_at(seed, node, s * BURST_SLOT_CYCLES).to_bits())
                .collect()
        };
        assert_ne!(series(1, 0), series(1, 1), "nodes share a phase");
        assert_ne!(series(1, 0), series(2, 0), "seeds share a phase");
    }

    #[test]
    fn long_run_mean_is_one() {
        // The stationary mean is exactly 1; the slot average over many
        // superslots must converge near it for both modulators.
        for spec in [
            BurstSpec::onoff(2.0),
            BurstSpec::onoff(6.0),
            BurstSpec::mmpp(2.0),
            BurstSpec::mmpp(8.0),
        ] {
            let slots = 40_000u64;
            let mean: f64 = (0..slots)
                .map(|s| spec.factor_at(1234, 7, s * BURST_SLOT_CYCLES))
                .sum::<f64>()
                / slots as f64;
            assert!(
                (mean - 1.0).abs() < 0.05,
                "{spec}: long-run mean {mean} drifted from 1"
            );
        }
    }

    #[test]
    fn onoff_takes_exactly_two_levels() {
        let spec = BurstSpec::onoff(4.0);
        for s in 0..200u64 {
            let f = spec.factor_at(5, 0, s * BURST_SLOT_CYCLES);
            assert!(f == 0.0 || (f - 4.0).abs() < 1e-12, "unexpected level {f}");
        }
    }

    #[test]
    fn mmpp_takes_three_levels_with_mean_one() {
        let BurstSpec::Mmpp { peak, .. } = BurstSpec::mmpp(4.0) else {
            panic!("mmpp constructor");
        };
        let spec = BurstSpec::mmpp(4.0);
        let nominal = 0.5 / (1.0 - 1.0 / peak);
        let mut seen = [false; 3];
        for s in 0..400u64 {
            let f = spec.factor_at(5, 0, s * BURST_SLOT_CYCLES);
            if f == 0.0 {
                seen[0] = true;
            } else if (f - nominal).abs() < 1e-12 {
                seen[1] = true;
            } else if (f - peak).abs() < 1e-12 {
                seen[2] = true;
            } else {
                panic!("unexpected level {f}");
            }
        }
        assert_eq!(seen, [true; 3], "all three MMPP states visited");
        // Stationary mean identity: 2·(1/(2p))·p-weighted terms sum to 1.
        let tail = 1.0 / (2.0 * peak);
        assert!((tail * peak + (1.0 - 2.0 * tail) * nominal - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_words_separate_specs() {
        let words: Vec<[u64; 3]> = [
            BurstSpec::Steady,
            BurstSpec::onoff(2.0),
            BurstSpec::onoff(4.0),
            BurstSpec::mmpp(4.0),
        ]
        .iter()
        .map(|s| s.fingerprint_words())
        .collect();
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                assert_ne!(words[i], words[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn rejects_sub_one_burstiness() {
        let _ = BurstSpec::onoff(0.5);
    }
}
