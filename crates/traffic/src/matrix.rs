//! Dense source-destination traffic rate matrices.

use hyppi_topology::NodeId;
use serde::{Deserialize, Serialize};

/// An N×N matrix of flit rates (flits per cycle) between node pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    rates: Vec<f64>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix for `n` nodes.
    pub fn zero(n: usize) -> Self {
        TrafficMatrix {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, src: NodeId, dst: NodeId) -> usize {
        src.index() * self.n + dst.index()
    }

    /// Rate from `src` to `dst`, flits per cycle.
    #[inline]
    pub fn rate(&self, src: NodeId, dst: NodeId) -> f64 {
        self.rates[self.idx(src, dst)]
    }

    /// Sets the rate for a pair. Self-traffic is silently dropped.
    pub fn set(&mut self, src: NodeId, dst: NodeId, rate: f64) {
        debug_assert!(rate >= 0.0 && rate.is_finite());
        if src != dst {
            let i = self.idx(src, dst);
            self.rates[i] = rate;
        }
    }

    /// Adds to the rate for a pair. Self-traffic is silently dropped.
    pub fn add(&mut self, src: NodeId, dst: NodeId, rate: f64) {
        debug_assert!(rate >= 0.0 && rate.is_finite());
        if src != dst {
            let i = self.idx(src, dst);
            self.rates[i] += rate;
        }
    }

    /// Scales every rate by a factor (e.g. sweeping the injection rate).
    pub fn scaled(&self, factor: f64) -> Self {
        TrafficMatrix {
            n: self.n,
            rates: self.rates.iter().map(|r| r * factor).collect(),
        }
    }

    /// Iterates over all nonzero `(src, dst, rate)` demands.
    pub fn demands(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.rates
            .iter()
            .enumerate()
            .filter(|&(_i, &r)| r > 0.0)
            .map(|(i, &r)| (NodeId((i / self.n) as u16), NodeId((i % self.n) as u16), r))
    }

    /// Total injection rate of a node, flits per cycle.
    pub fn injection_rate(&self, src: NodeId) -> f64 {
        let base = src.index() * self.n;
        self.rates[base..base + self.n].iter().sum()
    }

    /// Total flits injected per cycle across the network.
    pub fn total_injection(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Mean per-node injection rate.
    pub fn mean_injection(&self) -> f64 {
        self.total_injection() / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = TrafficMatrix::zero(4);
        m.set(NodeId(0), NodeId(3), 0.25);
        assert_eq!(m.rate(NodeId(0), NodeId(3)), 0.25);
        assert_eq!(m.rate(NodeId(3), NodeId(0)), 0.0);
    }

    #[test]
    fn self_traffic_dropped() {
        let mut m = TrafficMatrix::zero(4);
        m.set(NodeId(1), NodeId(1), 0.9);
        m.add(NodeId(2), NodeId(2), 0.9);
        assert_eq!(m.total_injection(), 0.0);
    }

    #[test]
    fn injection_sums_per_row() {
        let mut m = TrafficMatrix::zero(3);
        m.set(NodeId(0), NodeId(1), 0.1);
        m.set(NodeId(0), NodeId(2), 0.2);
        m.set(NodeId(1), NodeId(0), 0.4);
        assert!((m.injection_rate(NodeId(0)) - 0.3).abs() < 1e-12);
        assert!((m.total_injection() - 0.7).abs() < 1e-12);
        assert!((m.mean_injection() - 0.7 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_is_linear() {
        let mut m = TrafficMatrix::zero(3);
        m.set(NodeId(0), NodeId(1), 0.1);
        let s = m.scaled(3.0);
        assert!((s.rate(NodeId(0), NodeId(1)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn demands_iterates_nonzero() {
        let mut m = TrafficMatrix::zero(3);
        m.set(NodeId(2), NodeId(0), 0.5);
        let d: Vec<_> = m.demands().collect();
        assert_eq!(d, vec![(NodeId(2), NodeId(0), 0.5)]);
    }
}
