//! Synthetic NAS Parallel Benchmark traffic (FT, CG, MG, LU; 256 ranks).
//!
//! The paper drove its trace simulations (§IV) with MPICL traces of NPB
//! Class A captured on a Cray XE6m. Those traces are not publicly
//! available; per the substitution policy in `DESIGN.md`, this module
//! synthesizes traces from each kernel's documented communication pattern.
//! The paper itself keeps only "flit counts between source-destination
//! pairs" and discards temporal structure, so the spatial hop distribution
//! is the fidelity target. The paper characterizes them as:
//!
//! * **FT** — "all-to-all traffic": phased transpose exchanges between all
//!   rank pairs (MPI_Alltoall of the 3-D FFT).
//! * **CG** — "short range traffic": power-of-two stride exchanges within a
//!   processor row (row-partitioned sparse mat-vec reductions), with volume
//!   decreasing with distance.
//! * **MG** — "long range traffic": V-cycle hierarchy; on coarse levels the
//!   surviving ranks are physically far apart, producing heavy
//!   near-full-row exchanges alongside the fine-level nearest-neighbour
//!   halos.
//! * **LU** — "almost completely … 1-hop traffic": wavefront pipeline
//!   exchanging small messages with east/south (and reverse-sweep
//!   west/north) neighbours.
//!
//! Ranks map to nodes row-major (rank `r` → node `r`), the natural
//! placement for a 256-rank job on a 16×16 NoC.

use crate::packetize::packetize_flits;
use crate::trace::{Trace, TraceEvent};
use crate::volume::CommVolume;
use hyppi_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Which NPB kernel to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NpbKernel {
    /// 3-D FFT: phased all-to-all transposes.
    Ft,
    /// Conjugate gradient: short-range row exchanges.
    Cg,
    /// Multigrid: hierarchical, long-range dominated.
    Mg,
    /// LU factorization: 1-hop wavefront.
    Lu,
}

impl NpbKernel {
    /// All four kernels, in the paper's order.
    pub const ALL: [NpbKernel; 4] = [NpbKernel::Ft, NpbKernel::Cg, NpbKernel::Mg, NpbKernel::Lu];

    /// Kernel name as printed in reproduced tables.
    pub fn name(self) -> &'static str {
        match self {
            NpbKernel::Ft => "FT",
            NpbKernel::Cg => "CG",
            NpbKernel::Mg => "MG",
            NpbKernel::Lu => "LU",
        }
    }
}

impl std::fmt::Display for NpbKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One communication phase: a list of `(src, dst, flits)` exchanges that
/// happen concurrently.
type Phase = Vec<(NodeId, NodeId, u64)>;

/// Generator specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpbTraceSpec {
    /// Kernel to synthesize.
    pub kernel: NpbKernel,
    /// Grid width (ranks per row).
    pub width: u16,
    /// Grid height.
    pub height: u16,
}

/// FT: data flits exchanged per pair per transpose phase (Class A at 256
/// ranks moves ≈0.5 MB per rank per all-to-all; with the paper's 64-bit
/// flits that is ≈96 flits per partner after trace-splitting).
const FT_FLITS_PER_PAIR: u64 = 96;
/// FT: number of transpose phases (forward + inverse FFT iterations).
const FT_PHASES: u32 = 7;

/// CG: reduction phases.
const CG_PHASES: u32 = 60;
/// CG: flits to the stride-1 partner; halves per distance doubling.
const CG_BASE_FLITS: u64 = 960;

/// MG: V-cycles.
const MG_CYCLES: u32 = 40;
/// MG: fine-level halo flits per neighbour.
const MG_NEAR_FLITS: u64 = 320;
/// MG: coarse-level long-range flits per partner (the coarse V-cycle
/// levels dominate MG's traffic volume; the paper characterizes MG as
/// "long range traffic").
const MG_FAR_FLITS: u64 = 7200;

/// LU: wavefront sweeps (SSOR iterations × 2 directions).
const LU_SWEEPS: u32 = 250;
/// LU: flits per neighbour exchange (small pencil messages).
const LU_FLITS: u64 = 33;

impl NpbTraceSpec {
    /// The paper's configuration: 256 ranks on 16×16.
    pub fn paper(kernel: NpbKernel) -> Self {
        NpbTraceSpec {
            kernel,
            width: 16,
            height: 16,
        }
    }

    fn num_nodes(&self) -> u16 {
        self.width * self.height
    }

    fn node(&self, x: u16, y: u16) -> NodeId {
        NodeId(y * self.width + x)
    }

    /// Communication-active wall seconds represented by the full run
    /// (drives the time-based photonic laser-energy charge; the FT value is
    /// calibrated in `DESIGN.md` §5).
    pub fn comm_wall_seconds(&self) -> f64 {
        match self.kernel {
            NpbKernel::Ft => 0.60,
            NpbKernel::Cg => 0.40,
            NpbKernel::Mg => 0.50,
            NpbKernel::Lu => 0.30,
        }
    }

    /// Number of communication phases in the full run.
    pub fn total_phases(&self) -> u32 {
        match self.kernel {
            NpbKernel::Ft => FT_PHASES,
            NpbKernel::Cg => CG_PHASES,
            NpbKernel::Mg => MG_CYCLES,
            NpbKernel::Lu => LU_SWEEPS,
        }
    }

    /// The exchanges of phase `phase` (phases may repeat the same pattern).
    fn phase(&self, phase: u32) -> Phase {
        match self.kernel {
            NpbKernel::Ft => self.ft_phase(),
            NpbKernel::Cg => self.cg_phase(),
            NpbKernel::Mg => self.mg_phase(phase),
            NpbKernel::Lu => self.lu_phase(phase),
        }
    }

    /// FT: every pair exchanges `FT_FLITS_PER_PAIR` data flits plus a
    /// separate one-flit control packet.
    fn ft_phase(&self) -> Phase {
        let n = self.num_nodes();
        let mut out = Vec::with_capacity(2 * usize::from(n) * usize::from(n - 1));
        for s in 0..n {
            for k in 1..n {
                // Rotated all-to-all schedule: balanced, no hot spot.
                let d = (s + k) % n;
                out.push((NodeId(s), NodeId(d), FT_FLITS_PER_PAIR));
                out.push((NodeId(s), NodeId(d), 1));
            }
        }
        out
    }

    /// CG: strides 1, 2, 4, 8 within the row, volume halving with stride.
    fn cg_phase(&self) -> Phase {
        let mut out = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let mut flits = CG_BASE_FLITS;
                for stride in [1u16, 2, 4, 8] {
                    if x + stride < self.width {
                        out.push((self.node(x, y), self.node(x + stride, y), flits));
                        out.push((self.node(x + stride, y), self.node(x, y), flits));
                    }
                    flits /= 2;
                }
            }
        }
        out
    }

    /// MG: alternating fine-level halos (nearest neighbour, both dims) and
    /// coarse-level long-range exchanges (row extremes and ±8 rows).
    fn mg_phase(&self, phase: u32) -> Phase {
        let mut out = Vec::new();
        if phase.is_multiple_of(2) {
            // Fine levels: nearest-neighbour halo exchange.
            for y in 0..self.height {
                for x in 0..self.width {
                    if x + 1 < self.width {
                        out.push((self.node(x, y), self.node(x + 1, y), MG_NEAR_FLITS));
                        out.push((self.node(x + 1, y), self.node(x, y), MG_NEAR_FLITS));
                    }
                    if y + 1 < self.height {
                        out.push((self.node(x, y), self.node(x, y + 1), MG_NEAR_FLITS));
                        out.push((self.node(x, y + 1), self.node(x, y), MG_NEAR_FLITS));
                    }
                }
            }
        } else {
            // Coarse levels: the surviving ranks sit near opposite row ends;
            // pairwise exchanges (no gather hotspot) spanning most of a row.
            let w = self.width;
            if w >= 4 {
                for y in 0..self.height {
                    // Distance w-2 and w-3 pairs with disjoint endpoints.
                    let pairs = [(1, w - 1), (0, w - 3)];
                    for (a, b) in pairs {
                        out.push((self.node(a, y), self.node(b, y), MG_FAR_FLITS));
                        out.push((self.node(b, y), self.node(a, y), MG_FAR_FLITS));
                    }
                }
            }
            // Cross-row aggregation at stride height/2.
            let stride = self.height / 2;
            if stride >= 1 {
                for y in 0..self.height - stride {
                    for x in [0u16, self.width / 2] {
                        let x = x.min(self.width - 1);
                        out.push((self.node(x, y), self.node(x, y + stride), MG_FAR_FLITS / 4));
                        out.push((self.node(x, y + stride), self.node(x, y), MG_FAR_FLITS / 4));
                    }
                }
            }
        }
        out
    }

    /// LU: forward sweeps send east/south, backward sweeps west/north.
    fn lu_phase(&self, phase: u32) -> Phase {
        let mut out = Vec::new();
        let forward = phase.is_multiple_of(2);
        for y in 0..self.height {
            for x in 0..self.width {
                if forward {
                    if x + 1 < self.width {
                        out.push((self.node(x, y), self.node(x + 1, y), LU_FLITS));
                    }
                    if y + 1 < self.height {
                        out.push((self.node(x, y), self.node(x, y + 1), LU_FLITS));
                    }
                } else {
                    if x > 0 {
                        out.push((self.node(x, y), self.node(x - 1, y), LU_FLITS));
                    }
                    if y > 0 {
                        out.push((self.node(x, y), self.node(x, y - 1), LU_FLITS));
                    }
                }
            }
        }
        out
    }

    /// Full-run communication volume (packetized flit counts), for energy
    /// accounting.
    pub fn volume(&self) -> CommVolume {
        let mut v = CommVolume::zero(usize::from(self.num_nodes()), self.comm_wall_seconds());
        for phase in 0..self.total_phases() {
            for (s, d, flits) in self.phase(phase) {
                let padded: u64 = packetize_flits(flits)
                    .iter()
                    .map(|p| u64::from(p.flits))
                    .sum();
                v.add(s, d, padded);
            }
        }
        v
    }

    /// A packetized simulation window: `phases` phases at `volume_scale` of
    /// the per-exchange volume, paced so each node injects at most
    /// [`pace`](Self) packets per cycle window.
    ///
    /// The full run is far too long to simulate cycle-accurately (hundreds
    /// of millions of cycles, mostly computation gaps); latency only needs
    /// a representative window, exactly as the paper reduces traces to
    /// per-pair flit counts.
    pub fn trace_window(&self, phases: u32, volume_scale: f64) -> Trace {
        self.trace_window_paced(phases, volume_scale, self.default_pace())
    }

    /// Per-kernel packet launch pacing (cycles between launch slots per
    /// node). FT's all-to-all is paced at 32/320 = 0.1 flits/node/cycle —
    /// the paper's maximum injection rate and safely below the ≈0.25
    /// uniform-traffic saturation point of the 16×16 mesh; the sparser
    /// kernels burst faster, as a NIC faster than the NoC links would.
    pub fn default_pace(&self) -> u64 {
        match self.kernel {
            NpbKernel::Ft => 640,
            NpbKernel::Mg => 320,
            NpbKernel::Cg => 160,
            NpbKernel::Lu => 80,
        }
    }

    /// [`trace_window`](Self::trace_window) with an explicit pace.
    pub fn trace_window_paced(&self, phases: u32, volume_scale: f64, pace: u64) -> Trace {
        assert!(phases >= 1 && volume_scale > 0.0 && pace >= 1);
        let n = self.num_nodes();
        let drain_gap: u64 = 4000;
        let mut events = Vec::new();
        let mut phase_start = 0u64;
        for phase in 0..phases {
            let pattern = self.phase(phase % self.total_phases());
            // Per-node launch slot counters.
            let mut slot = vec![0u64; usize::from(n)];
            for (s, d, flits) in pattern {
                let scaled = ((flits as f64 * volume_scale).round() as u64).max(1);
                // Per-node stagger de-synchronizes launch slots across
                // nodes (real MPI ranks are not cycle-aligned).
                let stagger = (u64::from(s.0) * 37) % pace;
                for p in packetize_flits(scaled) {
                    let k = slot[s.index()];
                    slot[s.index()] += 1;
                    events.push(TraceEvent {
                        cycle: phase_start + k * pace + stagger,
                        src: s,
                        dst: d,
                        flits: p.flits,
                    });
                }
            }
            let longest = slot.iter().max().copied().unwrap_or(0);
            phase_start += longest * pace + drain_gap;
        }
        Trace::new(
            format!("NPB {} class A, {} ranks", self.kernel, n),
            n,
            self.comm_wall_seconds(),
            events,
        )
    }

    /// The default simulation window used for the Fig. 6 reproduction:
    /// one representative slice per kernel, ≈1–2 M flits.
    pub fn default_window(&self) -> Trace {
        match self.kernel {
            NpbKernel::Ft => self.trace_window(1, 1.0 / 3.0),
            NpbKernel::Cg => self.trace_window(4, 0.25),
            NpbKernel::Mg => self.trace_window(2, 0.25),
            NpbKernel::Lu => self.trace_window(20, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packetize::DATA_PACKET_FLITS;

    #[test]
    fn ft_volume_matches_calibration() {
        // 7 phases × 255 partners × ceil(97/32)·32 flits ≈ 4.6e7 total
        // (the paper's 0.0042 J electronic-mesh anchor, DESIGN.md §5).
        let v = NpbTraceSpec::paper(NpbKernel::Ft).volume();
        let total = v.total_flits();
        assert!(
            (4.0e7..5.5e7).contains(&(total as f64)),
            "FT volume {total}"
        );
        // All-to-all: every pair communicates.
        assert_eq!(v.pairs().count(), 256 * 255);
    }

    #[test]
    fn kernel_hop_distributions_match_the_paper() {
        use hyppi_phys::LinkTechnology;
        use hyppi_topology::{mesh, MeshSpec};
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let avg_hops = |k: NpbKernel| {
            NpbTraceSpec::paper(k)
                .volume()
                .weighted_mean(|s, d| f64::from(t.coord(s).manhattan(t.coord(d))))
        };
        let ft = avg_hops(NpbKernel::Ft);
        let cg = avg_hops(NpbKernel::Cg);
        let mg = avg_hops(NpbKernel::Mg);
        let lu = avg_hops(NpbKernel::Lu);
        // LU is 1-hop; CG short-range; MG long-range; FT all-to-all mean
        // (≈10.67 for uniform on 16×16).
        assert!((lu - 1.0).abs() < 1e-9, "LU {lu}");
        assert!(cg > 1.0 && cg < 4.0, "CG {cg}");
        assert!(mg > 2.5, "MG {mg}");
        assert!(ft > 9.0 && ft < 12.0, "FT {ft}");
        assert!(lu < cg && cg < mg, "LU {lu} < CG {cg} < MG {mg}");
    }

    #[test]
    fn windows_are_simulable() {
        for k in NpbKernel::ALL {
            let w = NpbTraceSpec::paper(k).default_window();
            let flits = w.total_flits();
            assert!(
                (1e5..6e6).contains(&(flits as f64)),
                "{k}: {flits} flits in window"
            );
            assert!(w.duration_cycles < 3_000_000, "{k}: {}", w.duration_cycles);
        }
    }

    #[test]
    fn windows_only_use_paper_packet_sizes() {
        let w = NpbTraceSpec::paper(NpbKernel::Lu).default_window();
        assert!(w
            .events
            .iter()
            .all(|e| e.flits == 1 || e.flits == DATA_PACKET_FLITS));
    }

    #[test]
    fn pacing_respects_link_bandwidth() {
        // No node may inject more than 1 flit/cycle on average during a
        // burst: with 32-flit packets every 80 cycles the rate is 0.4.
        let w = NpbTraceSpec::paper(NpbKernel::Ft).trace_window(1, 1.0 / 3.0);
        let mut per_node: std::collections::HashMap<(u16, u64), u64> =
            std::collections::HashMap::new();
        for e in &w.events {
            *per_node.entry((e.src.0, e.cycle)).or_default() += 1;
        }
        // One launch per slot per node.
        assert!(per_node.values().all(|&c| c <= 1));
    }

    #[test]
    fn phases_advance_monotonically() {
        let w = NpbTraceSpec::paper(NpbKernel::Cg).trace_window(3, 0.25);
        let mut prev = 0;
        for e in &w.events {
            assert!(e.cycle >= prev);
            prev = e.cycle;
        }
    }
}
