//! Synthetic NAS Parallel Benchmark traffic (FT, CG, MG, LU; 256 ranks).
//!
//! The paper drove its trace simulations (§IV) with MPICL traces of NPB
//! Class A captured on a Cray XE6m. Those traces are not publicly
//! available; per the substitution policy in `DESIGN.md`, this module
//! synthesizes traces from each kernel's documented communication pattern.
//! The paper itself keeps only "flit counts between source-destination
//! pairs" and discards temporal structure, so the spatial hop distribution
//! is the fidelity target. The paper characterizes them as:
//!
//! * **FT** — "all-to-all traffic": phased transpose exchanges between all
//!   rank pairs (MPI_Alltoall of the 3-D FFT).
//! * **CG** — "short range traffic": power-of-two stride exchanges within a
//!   processor row (row-partitioned sparse mat-vec reductions), with volume
//!   decreasing with distance.
//! * **MG** — "long range traffic": V-cycle hierarchy; on coarse levels the
//!   surviving ranks are physically far apart, producing heavy
//!   near-full-row exchanges alongside the fine-level nearest-neighbour
//!   halos.
//! * **LU** — "almost completely … 1-hop traffic": wavefront pipeline
//!   exchanging small messages with east/south (and reverse-sweep
//!   west/north) neighbours.
//!
//! Ranks map to nodes row-major (rank `r` → node `r`), the natural
//! placement for a 256-rank job on a 16×16 NoC.

use crate::packetize::packetize_flits;
use crate::trace::{Trace, TraceEvent};
use crate::volume::CommVolume;
use hyppi_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Which NPB kernel to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NpbKernel {
    /// 3-D FFT: phased all-to-all transposes.
    Ft,
    /// Conjugate gradient: short-range row exchanges.
    Cg,
    /// Multigrid: hierarchical, long-range dominated.
    Mg,
    /// LU factorization: 1-hop wavefront.
    Lu,
}

impl NpbKernel {
    /// All four kernels, in the paper's order.
    pub const ALL: [NpbKernel; 4] = [NpbKernel::Ft, NpbKernel::Cg, NpbKernel::Mg, NpbKernel::Lu];

    /// Kernel name as printed in reproduced tables.
    pub fn name(self) -> &'static str {
        match self {
            NpbKernel::Ft => "FT",
            NpbKernel::Cg => "CG",
            NpbKernel::Mg => "MG",
            NpbKernel::Lu => "LU",
        }
    }
}

impl std::fmt::Display for NpbKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One communication phase: a list of `(src, dst, flits)` exchanges that
/// happen concurrently.
type Phase = Vec<(NodeId, NodeId, u64)>;

/// Generator specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpbTraceSpec {
    /// Kernel to synthesize.
    pub kernel: NpbKernel,
    /// Grid width (ranks per row).
    pub width: u16,
    /// Grid height.
    pub height: u16,
}

/// FT: data flits exchanged per pair per transpose phase (Class A at 256
/// ranks moves ≈0.5 MB per rank per all-to-all; with the paper's 64-bit
/// flits that is ≈96 flits per partner after trace-splitting).
const FT_FLITS_PER_PAIR: u64 = 96;
/// FT: number of transpose phases (forward + inverse FFT iterations).
const FT_PHASES: u32 = 7;

/// CG: reduction phases.
const CG_PHASES: u32 = 60;
/// CG: flits to the stride-1 partner; halves per distance doubling.
const CG_BASE_FLITS: u64 = 960;

/// MG: V-cycles.
const MG_CYCLES: u32 = 40;
/// MG: fine-level halo flits per neighbour.
const MG_NEAR_FLITS: u64 = 320;
/// MG: coarse-level long-range flits per partner (the coarse V-cycle
/// levels dominate MG's traffic volume; the paper characterizes MG as
/// "long range traffic").
const MG_FAR_FLITS: u64 = 7200;

/// LU: wavefront sweeps (SSOR iterations × 2 directions).
const LU_SWEEPS: u32 = 250;
/// LU: flits per neighbour exchange (small pencil messages).
const LU_FLITS: u64 = 33;

impl NpbTraceSpec {
    /// The paper's configuration: 256 ranks on 16×16.
    pub fn paper(kernel: NpbKernel) -> Self {
        NpbTraceSpec {
            kernel,
            width: 16,
            height: 16,
        }
    }

    fn num_nodes(&self) -> u16 {
        self.width * self.height
    }

    fn node(&self, x: u16, y: u16) -> NodeId {
        NodeId(y * self.width + x)
    }

    /// Communication-active wall seconds represented by the full run
    /// (drives the time-based photonic laser-energy charge; the FT value is
    /// calibrated in `DESIGN.md` §5).
    pub fn comm_wall_seconds(&self) -> f64 {
        match self.kernel {
            NpbKernel::Ft => 0.60,
            NpbKernel::Cg => 0.40,
            NpbKernel::Mg => 0.50,
            NpbKernel::Lu => 0.30,
        }
    }

    /// Number of communication phases in the full run.
    pub fn total_phases(&self) -> u32 {
        match self.kernel {
            NpbKernel::Ft => FT_PHASES,
            NpbKernel::Cg => CG_PHASES,
            NpbKernel::Mg => MG_CYCLES,
            NpbKernel::Lu => LU_SWEEPS,
        }
    }

    /// The exchanges of phase `phase` (phases may repeat the same pattern).
    fn phase(&self, phase: u32) -> Phase {
        match self.kernel {
            NpbKernel::Ft => self.ft_phase(),
            NpbKernel::Cg => self.cg_phase(),
            NpbKernel::Mg => self.mg_phase(phase),
            NpbKernel::Lu => self.lu_phase(phase),
        }
    }

    /// FT: every pair exchanges `FT_FLITS_PER_PAIR` data flits plus a
    /// separate one-flit control packet.
    fn ft_phase(&self) -> Phase {
        let n = self.num_nodes();
        let mut out = Vec::with_capacity(2 * usize::from(n) * usize::from(n - 1));
        for s in 0..n {
            for k in 1..n {
                // Rotated all-to-all schedule: balanced, no hot spot.
                let d = (s + k) % n;
                out.push((NodeId(s), NodeId(d), FT_FLITS_PER_PAIR));
                out.push((NodeId(s), NodeId(d), 1));
            }
        }
        out
    }

    /// CG: strides 1, 2, 4, 8 within the row, volume halving with stride.
    fn cg_phase(&self) -> Phase {
        let mut out = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let mut flits = CG_BASE_FLITS;
                for stride in [1u16, 2, 4, 8] {
                    if x + stride < self.width {
                        out.push((self.node(x, y), self.node(x + stride, y), flits));
                        out.push((self.node(x + stride, y), self.node(x, y), flits));
                    }
                    flits /= 2;
                }
            }
        }
        out
    }

    /// MG: alternating fine-level halos (nearest neighbour, both dims) and
    /// coarse-level long-range exchanges (row extremes and ±8 rows).
    fn mg_phase(&self, phase: u32) -> Phase {
        let mut out = Vec::new();
        if phase.is_multiple_of(2) {
            // Fine levels: nearest-neighbour halo exchange.
            for y in 0..self.height {
                for x in 0..self.width {
                    if x + 1 < self.width {
                        out.push((self.node(x, y), self.node(x + 1, y), MG_NEAR_FLITS));
                        out.push((self.node(x + 1, y), self.node(x, y), MG_NEAR_FLITS));
                    }
                    if y + 1 < self.height {
                        out.push((self.node(x, y), self.node(x, y + 1), MG_NEAR_FLITS));
                        out.push((self.node(x, y + 1), self.node(x, y), MG_NEAR_FLITS));
                    }
                }
            }
        } else {
            // Coarse levels: the surviving ranks sit near opposite row ends;
            // pairwise exchanges (no gather hotspot) spanning most of a row.
            let w = self.width;
            if w >= 4 {
                for y in 0..self.height {
                    // Distance w-2 and w-3 pairs with disjoint endpoints.
                    let pairs = [(1, w - 1), (0, w - 3)];
                    for (a, b) in pairs {
                        out.push((self.node(a, y), self.node(b, y), MG_FAR_FLITS));
                        out.push((self.node(b, y), self.node(a, y), MG_FAR_FLITS));
                    }
                }
            }
            // Cross-row aggregation at stride height/2.
            let stride = self.height / 2;
            if stride >= 1 {
                for y in 0..self.height - stride {
                    for x in [0u16, self.width / 2] {
                        let x = x.min(self.width - 1);
                        out.push((self.node(x, y), self.node(x, y + stride), MG_FAR_FLITS / 4));
                        out.push((self.node(x, y + stride), self.node(x, y), MG_FAR_FLITS / 4));
                    }
                }
            }
        }
        out
    }

    /// LU: forward sweeps send east/south, backward sweeps west/north.
    fn lu_phase(&self, phase: u32) -> Phase {
        let mut out = Vec::new();
        let forward = phase.is_multiple_of(2);
        for y in 0..self.height {
            for x in 0..self.width {
                if forward {
                    if x + 1 < self.width {
                        out.push((self.node(x, y), self.node(x + 1, y), LU_FLITS));
                    }
                    if y + 1 < self.height {
                        out.push((self.node(x, y), self.node(x, y + 1), LU_FLITS));
                    }
                } else {
                    if x > 0 {
                        out.push((self.node(x, y), self.node(x - 1, y), LU_FLITS));
                    }
                    if y > 0 {
                        out.push((self.node(x, y), self.node(x, y - 1), LU_FLITS));
                    }
                }
            }
        }
        out
    }

    /// Full-run communication volume (packetized flit counts), for energy
    /// accounting.
    pub fn volume(&self) -> CommVolume {
        let mut v = CommVolume::zero(usize::from(self.num_nodes()), self.comm_wall_seconds());
        for phase in 0..self.total_phases() {
            for (s, d, flits) in self.phase(phase) {
                let padded: u64 = packetize_flits(flits)
                    .iter()
                    .map(|p| u64::from(p.flits))
                    .sum();
                v.add(s, d, padded);
            }
        }
        v
    }

    /// A packetized simulation window: `phases` phases at `volume_scale` of
    /// the per-exchange volume, paced so each node injects at most
    /// [`pace`](Self) packets per cycle window.
    ///
    /// The full run is far too long to simulate cycle-accurately (hundreds
    /// of millions of cycles, mostly computation gaps); latency only needs
    /// a representative window, exactly as the paper reduces traces to
    /// per-pair flit counts.
    pub fn trace_window(&self, phases: u32, volume_scale: f64) -> Trace {
        self.trace_window_paced(phases, volume_scale, self.default_pace())
    }

    /// Per-kernel packet launch pacing (cycles between launch slots per
    /// node). FT's all-to-all is paced at 32/320 = 0.1 flits/node/cycle —
    /// the paper's maximum injection rate and safely below the ≈0.25
    /// uniform-traffic saturation point of the 16×16 mesh; the sparser
    /// kernels burst faster, as a NIC faster than the NoC links would.
    pub fn default_pace(&self) -> u64 {
        match self.kernel {
            NpbKernel::Ft => 640,
            NpbKernel::Mg => 320,
            NpbKernel::Cg => 160,
            NpbKernel::Lu => 80,
        }
    }

    /// [`trace_window`](Self::trace_window) with an explicit pace.
    pub fn trace_window_paced(&self, phases: u32, volume_scale: f64, pace: u64) -> Trace {
        assert!(phases >= 1 && volume_scale > 0.0 && pace >= 1);
        let n = self.num_nodes();
        let drain_gap: u64 = 4000;
        let mut events = Vec::new();
        let mut phase_start = 0u64;
        for phase in 0..phases {
            let pattern = self.phase(phase % self.total_phases());
            // Per-node launch slot counters.
            let mut slot = vec![0u64; usize::from(n)];
            for (s, d, flits) in pattern {
                let scaled = ((flits as f64 * volume_scale).round() as u64).max(1);
                // Per-node stagger de-synchronizes launch slots across
                // nodes (real MPI ranks are not cycle-aligned).
                let stagger = (u64::from(s.0) * 37) % pace;
                for p in packetize_flits(scaled) {
                    let k = slot[s.index()];
                    slot[s.index()] += 1;
                    events.push(TraceEvent {
                        cycle: phase_start + k * pace + stagger,
                        src: s,
                        dst: d,
                        flits: p.flits,
                    });
                }
            }
            let longest = slot.iter().max().copied().unwrap_or(0);
            phase_start += longest * pace + drain_gap;
        }
        Trace::new(
            format!("NPB {} class A, {} ranks", self.kernel, n),
            n,
            self.comm_wall_seconds(),
            events,
        )
    }

    /// The default simulation window used for the Fig. 6 reproduction:
    /// one representative slice per kernel, ≈1–2 M flits.
    pub fn default_window(&self) -> Trace {
        match self.kernel {
            NpbKernel::Ft => self.trace_window(1, 1.0 / 3.0),
            NpbKernel::Cg => self.trace_window(4, 0.25),
            NpbKernel::Mg => self.trace_window(2, 0.25),
            NpbKernel::Lu => self.trace_window(20, 1.0),
        }
    }
}

/// The canonical 16×16 NPB spec rescaled onto a larger mesh.
///
/// The paper's trace specs are 256-rank (16×16) shaped; bigger meshes
/// need a workload that keeps each kernel's *communication structure*
/// while covering every node. The rescale is a **rank remap plus a
/// phase-preserving window stretch**:
///
/// * **Rank remap.** With scale factors `fx = width/16`, `fy =
///   height/16`, the generator runs `fx·fy` interleaved instances of the
///   base 256-rank phase program — one per coset offset `(ox, oy)` —
///   mapping base rank `(bx, by)` of instance `(ox, oy)` to node
///   `(bx·fx + ox, by·fy + oy)`. Every node hosts exactly one rank of
///   exactly one instance, each instance's rank grid is stretched across
///   the whole mesh (so hop distances scale with the mesh side and shard
///   cuts see real boundary traffic), and the per-phase exchange graph of
///   each instance is exactly the base kernel's.
/// * **Window stretch.** Phase structure (count, alternation, per-phase
///   volumes) is preserved; only the launch pacing is stretched by the
///   linear scale factor `(fx + fy) / 2`, because routes are that much
///   longer — per-node offered load drops by the same factor that
///   per-packet link work grows, keeping injection safely below the
///   bigger mesh's (lower) uniform saturation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledNpbSpec {
    /// The canonical paper spec (16×16 ranks) being rescaled.
    pub base: NpbTraceSpec,
    /// Target mesh width (a multiple of the base width).
    pub width: u16,
    /// Target mesh height (a multiple of the base height).
    pub height: u16,
}

impl ScaledNpbSpec {
    /// Rescales `kernel`'s paper spec onto a `width × height` mesh.
    /// Both sides must be non-zero multiples of the base 16.
    pub fn new(kernel: NpbKernel, width: u16, height: u16) -> Self {
        let base = NpbTraceSpec::paper(kernel);
        assert!(
            width >= base.width
                && height >= base.height
                && width.is_multiple_of(base.width)
                && height.is_multiple_of(base.height),
            "target mesh {width}x{height} must be a multiple of the base {}x{}",
            base.width,
            base.height
        );
        assert!(
            u32::from(width) * u32::from(height) <= u32::from(u16::MAX),
            "target mesh {width}x{height} exceeds the u16 node-id space"
        );
        ScaledNpbSpec {
            base,
            width,
            height,
        }
    }

    /// The paper target: 1024 ranks on the 32×32 mesh.
    pub fn mesh32(kernel: NpbKernel) -> Self {
        Self::new(kernel, 32, 32)
    }

    fn fx(&self) -> u16 {
        self.width / self.base.width
    }

    fn fy(&self) -> u16 {
        self.height / self.base.height
    }

    /// Linear pacing stretch: routes grow with the mesh side, so launch
    /// slots widen by the mean of the two axis factors (≥ 1).
    pub fn stretch(&self) -> u64 {
        (u64::from(self.fx()) + u64::from(self.fy()))
            .div_ceil(2)
            .max(1)
    }

    /// Node hosting base rank `(bx, by)` of instance `(ox, oy)`.
    fn remap(&self, b: NodeId, ox: u16, oy: u16) -> NodeId {
        let bx = b.0 % self.base.width;
        let by = b.0 / self.base.width;
        NodeId((by * self.fy() + oy) * self.width + bx * self.fx() + ox)
    }

    /// Full-run communication volume of the rescaled workload (all
    /// instances), for energy accounting and rate-scaled sweep shapes.
    pub fn volume(&self) -> CommVolume {
        let n = usize::from(self.width) * usize::from(self.height);
        let mut v = CommVolume::zero(n, self.base.comm_wall_seconds());
        for phase in 0..self.base.total_phases() {
            for (s, d, flits) in self.base.phase(phase) {
                let padded: u64 = packetize_flits(flits)
                    .iter()
                    .map(|p| u64::from(p.flits))
                    .sum();
                for oy in 0..self.fy() {
                    for ox in 0..self.fx() {
                        v.add(self.remap(s, ox, oy), self.remap(d, ox, oy), padded);
                    }
                }
            }
        }
        v
    }

    /// A packetized simulation window of the rescaled workload: `phases`
    /// base phases at `volume_scale` of the per-exchange volume, paced at
    /// the base kernel's pace × [`stretch`](Self::stretch). Same
    /// phase-sequential layout (longest source sets the phase span, then
    /// a drain gap) as [`NpbTraceSpec::trace_window`].
    pub fn trace_window(&self, phases: u32, volume_scale: f64) -> Trace {
        self.trace_window_decimated(phases, volume_scale, 1)
    }

    /// [`trace_window`](Self::trace_window) keeping only the exchanges
    /// with `(src + dst) % stride == 0` in base-rank ids — a balanced
    /// 1-in-`stride` partner decimation. Volume scaling alone cannot trim
    /// a dense all-to-all below one minimum-size data packet per pair
    /// (`packetize_flits` pads every data message to the 32-flit packet
    /// quantum), so decimation is the lever for shrinking those windows:
    /// every source keeps the same number of partners, all hop distances
    /// stay represented, and the schedule stays hot-spot free.
    pub fn trace_window_decimated(&self, phases: u32, volume_scale: f64, stride: u16) -> Trace {
        assert!(phases >= 1 && volume_scale > 0.0 && stride >= 1);
        let n = self.width * self.height;
        let pace = self.base.default_pace() * self.stretch();
        let drain_gap: u64 = 4000 * self.stretch();
        let mut events = Vec::new();
        let mut phase_start = 0u64;
        for phase in 0..phases {
            let pattern = self.base.phase(phase % self.base.total_phases());
            let mut slot = vec![0u64; usize::from(n)];
            for (s, d, flits) in pattern {
                if stride > 1 && (s.0 + d.0) % stride != 0 {
                    continue;
                }
                let scaled = ((flits as f64 * volume_scale).round() as u64).max(1);
                for oy in 0..self.fy() {
                    for ox in 0..self.fx() {
                        let src = self.remap(s, ox, oy);
                        let dst = self.remap(d, ox, oy);
                        let stagger = (u64::from(src.0) * 37) % pace;
                        for p in packetize_flits(scaled) {
                            let k = slot[src.index()];
                            slot[src.index()] += 1;
                            events.push(TraceEvent {
                                cycle: phase_start + k * pace + stagger,
                                src,
                                dst,
                                flits: p.flits,
                            });
                        }
                    }
                }
            }
            let longest = slot.iter().max().copied().unwrap_or(0);
            phase_start += longest * pace + drain_gap;
        }
        Trace::new(
            format!(
                "NPB {} class A, {} ranks (rescaled from {})",
                self.base.kernel,
                n,
                self.base.num_nodes()
            ),
            n,
            self.base.comm_wall_seconds(),
            events,
        )
    }

    /// The default simulation window for the 32×32 reproduction: a
    /// representative slice per kernel, sized so the 1024-node runs stay
    /// in sharded-engine territory without being unaffordable. FT's
    /// all-to-all transpose is by far the heaviest cell — at the
    /// per-pair packet-quantum floor a full phase is still ~8.6 M flits
    /// (volume scaling cannot shrink it further, see
    /// [`Self::trace_window_decimated`]) — so its default slice keeps a
    /// balanced 1-in-4 partner subset (~2.2 M flits, every hop distance
    /// still exercised, ~500 packets per node through every shard cut);
    /// call `trace_window(1, 1.0 / 3.0)` for the full-phase run.
    pub fn default_window(&self) -> Trace {
        match self.base.kernel {
            NpbKernel::Ft => self.trace_window_decimated(1, 1.0 / 3.0, 4),
            NpbKernel::Cg => self.trace_window(2, 0.25),
            NpbKernel::Mg => self.trace_window(2, 0.125),
            NpbKernel::Lu => self.trace_window(8, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packetize::DATA_PACKET_FLITS;

    #[test]
    fn ft_volume_matches_calibration() {
        // 7 phases × 255 partners × ceil(97/32)·32 flits ≈ 4.6e7 total
        // (the paper's 0.0042 J electronic-mesh anchor, DESIGN.md §5).
        let v = NpbTraceSpec::paper(NpbKernel::Ft).volume();
        let total = v.total_flits();
        assert!(
            (4.0e7..5.5e7).contains(&(total as f64)),
            "FT volume {total}"
        );
        // All-to-all: every pair communicates.
        assert_eq!(v.pairs().count(), 256 * 255);
    }

    #[test]
    fn kernel_hop_distributions_match_the_paper() {
        use hyppi_phys::LinkTechnology;
        use hyppi_topology::{mesh, MeshSpec};
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let avg_hops = |k: NpbKernel| {
            NpbTraceSpec::paper(k)
                .volume()
                .weighted_mean(|s, d| f64::from(t.coord(s).manhattan(t.coord(d))))
        };
        let ft = avg_hops(NpbKernel::Ft);
        let cg = avg_hops(NpbKernel::Cg);
        let mg = avg_hops(NpbKernel::Mg);
        let lu = avg_hops(NpbKernel::Lu);
        // LU is 1-hop; CG short-range; MG long-range; FT all-to-all mean
        // (≈10.67 for uniform on 16×16).
        assert!((lu - 1.0).abs() < 1e-9, "LU {lu}");
        assert!(cg > 1.0 && cg < 4.0, "CG {cg}");
        assert!(mg > 2.5, "MG {mg}");
        assert!(ft > 9.0 && ft < 12.0, "FT {ft}");
        assert!(lu < cg && cg < mg, "LU {lu} < CG {cg} < MG {mg}");
    }

    #[test]
    fn windows_are_simulable() {
        for k in NpbKernel::ALL {
            let w = NpbTraceSpec::paper(k).default_window();
            let flits = w.total_flits();
            assert!(
                (1e5..6e6).contains(&(flits as f64)),
                "{k}: {flits} flits in window"
            );
            assert!(w.duration_cycles < 3_000_000, "{k}: {}", w.duration_cycles);
        }
    }

    #[test]
    fn windows_only_use_paper_packet_sizes() {
        let w = NpbTraceSpec::paper(NpbKernel::Lu).default_window();
        assert!(w
            .events
            .iter()
            .all(|e| e.flits == 1 || e.flits == DATA_PACKET_FLITS));
    }

    #[test]
    fn pacing_respects_link_bandwidth() {
        // No node may inject more than 1 flit/cycle on average during a
        // burst: with 32-flit packets every 80 cycles the rate is 0.4.
        let w = NpbTraceSpec::paper(NpbKernel::Ft).trace_window(1, 1.0 / 3.0);
        let mut per_node: std::collections::HashMap<(u16, u64), u64> =
            std::collections::HashMap::new();
        for e in &w.events {
            *per_node.entry((e.src.0, e.cycle)).or_default() += 1;
        }
        // One launch per slot per node.
        assert!(per_node.values().all(|&c| c <= 1));
    }

    #[test]
    fn phases_advance_monotonically() {
        let w = NpbTraceSpec::paper(NpbKernel::Cg).trace_window(3, 0.25);
        let mut prev = 0;
        for e in &w.events {
            assert!(e.cycle >= prev);
            prev = e.cycle;
        }
    }

    // -- the scaled generator --------------------------------------------

    #[test]
    fn scaled_remap_is_a_bijection_onto_the_target_mesh() {
        // Every (base rank, instance offset) pair lands on a distinct
        // node and all 1024 nodes are covered.
        let s = ScaledNpbSpec::mesh32(NpbKernel::Lu);
        let mut seen = vec![false; 1024];
        for b in 0..256u16 {
            for oy in 0..2u16 {
                for ox in 0..2u16 {
                    let n = s.remap(NodeId(b), ox, oy);
                    assert!(!seen[n.index()], "node {n} hit twice");
                    seen[n.index()] = true;
                }
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn scaled_identity_factors_reproduce_the_base_window() {
        // 16×16 → 16×16 is the identity rescale: same events, same
        // pacing, bit-for-bit.
        for k in [NpbKernel::Cg, NpbKernel::Lu] {
            let base = NpbTraceSpec::paper(k).trace_window(2, 0.25);
            let scaled = ScaledNpbSpec::new(k, 16, 16).trace_window(2, 0.25);
            assert_eq!(base.events, scaled.events, "{k}");
            assert_eq!(base.duration_cycles, scaled.duration_cycles, "{k}");
        }
    }

    #[test]
    fn scaled_kernels_preserve_the_hop_ordering() {
        use hyppi_phys::{Gbps, LinkTechnology};
        use hyppi_topology::{mesh, MeshSpec};
        let t = mesh(MeshSpec {
            width: 32,
            height: 32,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        });
        let avg_hops = |k: NpbKernel| {
            ScaledNpbSpec::mesh32(k)
                .volume()
                .weighted_mean(|s, d| f64::from(t.coord(s).manhattan(t.coord(d))))
        };
        let (ft, cg, mg, lu) = (
            avg_hops(NpbKernel::Ft),
            avg_hops(NpbKernel::Cg),
            avg_hops(NpbKernel::Mg),
            avg_hops(NpbKernel::Lu),
        );
        // The stretch doubles every base distance: LU's 1-hop wavefront
        // becomes exactly 2 hops; the paper's short/long-range ordering
        // survives the rescale; FT approaches the 32×32 uniform mean
        // (≈21.3).
        assert!((lu - 2.0).abs() < 1e-9, "LU {lu}");
        assert!(cg > 2.0 && cg < 8.0, "CG {cg}");
        assert!(mg > 5.0, "MG {mg}");
        assert!(ft > 18.0 && ft < 24.0, "FT {ft}");
        assert!(lu < cg && cg < mg, "LU {lu} < CG {cg} < MG {mg}");
    }

    #[test]
    fn scaled_windows_are_simulable_and_paced() {
        for k in [NpbKernel::Cg, NpbKernel::Lu, NpbKernel::Mg] {
            let s = ScaledNpbSpec::mesh32(k);
            let w = s.default_window();
            assert_eq!(w.num_nodes, 1024);
            let flits = w.total_flits();
            assert!(
                (1e5..2e7).contains(&(flits as f64)),
                "{k}: {flits} flits in window"
            );
            assert!(w.duration_cycles < 3_000_000, "{k}: {}", w.duration_cycles);
            // One launch per (node, slot): the stretched pace still never
            // double-books a source's injection slot.
            let mut per_slot: std::collections::HashMap<(u16, u64), u64> =
                std::collections::HashMap::new();
            for e in &w.events {
                *per_slot.entry((e.src.0, e.cycle)).or_default() += 1;
            }
            assert!(per_slot.values().all(|&c| c <= 1), "{k}: slot collision");
            assert!(w
                .events
                .iter()
                .all(|e| e.flits == 1 || e.flits == DATA_PACKET_FLITS));
        }
    }

    #[test]
    fn scaled_volume_is_instance_replicated_base_volume() {
        // fx·fy instances of the base program: total flits scale by
        // exactly that factor.
        let base = NpbTraceSpec::paper(NpbKernel::Cg).volume().total_flits();
        let scaled = ScaledNpbSpec::mesh32(NpbKernel::Cg).volume().total_flits();
        assert_eq!(scaled, 4 * base);
    }

    #[test]
    #[should_panic(expected = "multiple of the base")]
    fn scaled_rejects_non_multiple_dims() {
        let _ = ScaledNpbSpec::new(NpbKernel::Ft, 24, 32);
    }

    #[test]
    fn ft_default_window_is_trimmed_and_balanced() {
        // The FT all-to-all sits at the packet-quantum volume floor, so
        // the trimmed default decimates partners instead: ~1/4 of the
        // full-phase flits, every source keeping the same partner count.
        let s = ScaledNpbSpec::mesh32(NpbKernel::Ft);
        let full = s.trace_window(1, 1.0 / 3.0);
        let trimmed = s.default_window();
        assert_eq!(trimmed.num_nodes, 1024);
        let (ff, tf) = (full.total_flits() as f64, trimmed.total_flits() as f64);
        assert!(
            (0.2..0.3).contains(&(tf / ff)),
            "trimmed {tf} vs full {ff} flits"
        );
        assert!(trimmed.duration_cycles < full.duration_cycles);
        // Balance: sources keep 63 or 64 of their 255 partners (the
        // residue classes of 1..=255 differ by one), never more skew.
        let mut per_src = vec![0u64; 1024];
        for e in &trimmed.events {
            per_src[e.src.index()] += 1;
        }
        let (min, max) = (per_src.iter().min().unwrap(), per_src.iter().max().unwrap());
        assert!(
            *min > 0 && max - min <= 2,
            "decimation skew: {min}..{max} packets/source"
        );
        // Stride 1 round-trips through the plain window.
        let explicit = s.trace_window_decimated(1, 1.0 / 3.0, 1);
        assert_eq!(explicit.total_flits(), full.total_flits());
    }

    #[test]
    #[should_panic(expected = "u16 node-id space")]
    fn scaled_rejects_meshes_beyond_node_id_space() {
        // 272 = 17·16 passes the multiple check but 272² > u16::MAX.
        let _ = ScaledNpbSpec::new(NpbKernel::Ft, 272, 272);
    }
}
