//! Message packetization.
//!
//! The paper: "all simulations used two types of packets — 1 flit per packet
//! and 32 flits per packet. All large packets from the original network
//! trace were split up into smaller packets." We reproduce that policy:
//! control-sized messages (≤ one flit of payload) become a single 1-flit
//! packet; everything else is carved into 32-flit data packets, rounding
//! the tail up to a full data packet.

use serde::{Deserialize, Serialize};

/// Flits per data packet.
pub const DATA_PACKET_FLITS: u32 = 32;

/// Payload bits carried per 64-bit flit.
pub const FLIT_BITS: u32 = 64;

/// A packetized unit ready for injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Size in flits: 1 (control) or [`DATA_PACKET_FLITS`] (data).
    pub flits: u32,
}

/// Splits a message of `message_bytes` into the paper's two packet types.
pub fn packetize_message(message_bytes: u64) -> Vec<Packet> {
    let flit_bytes = u64::from(FLIT_BITS / 8);
    if message_bytes == 0 {
        return Vec::new();
    }
    if message_bytes <= flit_bytes {
        return vec![Packet { flits: 1 }];
    }
    let total_flits = message_bytes.div_ceil(flit_bytes);
    let packets = total_flits.div_ceil(u64::from(DATA_PACKET_FLITS));
    (0..packets)
        .map(|_| Packet {
            flits: DATA_PACKET_FLITS,
        })
        .collect()
}

/// Splits a flit count directly (used by the synthetic NPB generators,
/// which think in flits).
pub fn packetize_flits(flits: u64) -> Vec<Packet> {
    if flits == 0 {
        return Vec::new();
    }
    if flits == 1 {
        return vec![Packet { flits: 1 }];
    }
    let packets = flits.div_ceil(u64::from(DATA_PACKET_FLITS));
    (0..packets)
        .map(|_| Packet {
            flits: DATA_PACKET_FLITS,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_message_is_empty() {
        assert!(packetize_message(0).is_empty());
        assert!(packetize_flits(0).is_empty());
    }

    #[test]
    fn control_messages_are_one_flit() {
        for bytes in [1, 4, 8] {
            let p = packetize_message(bytes);
            assert_eq!(p, vec![Packet { flits: 1 }]);
        }
        assert_eq!(packetize_flits(1), vec![Packet { flits: 1 }]);
    }

    #[test]
    fn large_messages_split_into_32_flit_packets() {
        // 1 KiB = 128 flits = exactly 4 data packets.
        let p = packetize_message(1024);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|p| p.flits == 32));
    }

    #[test]
    fn tails_round_up() {
        // 260 bytes = 33 flits → 2 data packets.
        assert_eq!(packetize_message(260).len(), 2);
        // 33 flits → 2 packets.
        assert_eq!(packetize_flits(33).len(), 2);
        // 32 flits → exactly 1.
        assert_eq!(packetize_flits(32).len(), 1);
    }

    #[test]
    fn only_two_packet_sizes_exist() {
        for bytes in [1u64, 9, 255, 256, 1000, 123_456] {
            for p in packetize_message(bytes) {
                assert!(p.flits == 1 || p.flits == DATA_PACKET_FLITS);
            }
        }
    }
}
