//! The Soteriou-Wang-Peh statistical traffic model.
//!
//! The paper configures it with `p = 0.02` and `σ = 0.4` and a maximum
//! injection rate of 0.1 flits/node/cycle (§III-B):
//!
//! * **σ (spatial injection spread)** — per-node injection rates follow a
//!   Gaussian distribution; a larger σ means more nodes inject
//!   significantly. We draw each node's relative injection weight from
//!   `N(0.5, σ)` clamped to `[0, 1]`, then scale so the most active node
//!   injects at the configured maximum rate.
//! * **p (acceptance probability)** — controls the spatial hop
//!   distribution: a flit is accepted at each visited node with
//!   probability `p`, so it reaches Manhattan distance `d` with
//!   probability `p·(1-p)^(d-1)`; a *lower* p flattens the distribution
//!   toward far destinations ("Low p implies longer hops"). Destination
//!   weights follow that geometric law in distance.

use crate::matrix::TrafficMatrix;
use hyppi_topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the statistical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoteriouConfig {
    /// Flit acceptance probability controlling hop distribution.
    pub p: f64,
    /// Standard deviation of the Gaussian injection spread.
    pub sigma: f64,
    /// Maximum per-node injection rate, flits per cycle.
    pub max_injection_rate: f64,
    /// RNG seed (the model is fully deterministic given the seed).
    pub seed: u64,
}

impl SoteriouConfig {
    /// The paper's configuration: p = 0.02, σ = 0.4, max rate 0.1.
    pub fn paper() -> Self {
        SoteriouConfig {
            p: 0.02,
            sigma: 0.4,
            max_injection_rate: 0.1,
            seed: 0x5072_EA11,
        }
    }

    /// Same distribution shape at a different maximum injection rate
    /// (the paper sweeps 0.01–0.1).
    pub fn with_rate(self, rate: f64) -> Self {
        SoteriouConfig {
            max_injection_rate: rate,
            ..self
        }
    }

    /// Generates the traffic matrix for a topology.
    pub fn matrix(&self, topo: &Topology) -> TrafficMatrix {
        assert!(self.p > 0.0 && self.p <= 1.0, "p must be in (0, 1]");
        assert!(self.sigma >= 0.0 && self.max_injection_rate >= 0.0);
        let n = topo.num_nodes();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Per-node injection weights: N(0.5, σ) clamped to [0, 1].
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                let g: f64 = sample_standard_normal(&mut rng);
                (0.5 + self.sigma * g).clamp(0.0, 1.0)
            })
            .collect();
        let max_w = weights.iter().cloned().fold(0.0f64, f64::max).max(1e-12);

        let mut m = TrafficMatrix::zero(n);
        for src in topo.nodes() {
            let injection = self.max_injection_rate * weights[src.index()] / max_w;
            if injection == 0.0 {
                continue;
            }
            // Geometric acceptance in Manhattan distance: a destination at
            // distance d is reached with probability ∝ (1-p)^(d-1).
            let sc = topo.coord(src);
            let q = 1.0 - self.p;
            let mut weight_sum = 0.0;
            let mut pair_weights = Vec::with_capacity(topo.num_nodes() - 1);
            for d in topo.nodes() {
                if d == src {
                    continue;
                }
                let dist = sc.manhattan(topo.coord(d));
                let w = self.p * q.powi(dist as i32 - 1);
                pair_weights.push((d, w));
                weight_sum += w;
            }
            for (d, w) in pair_weights {
                m.set(src, d, injection * w / weight_sum);
            }
        }
        m
    }
}

/// Box-Muller standard normal sample.
fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::LinkTechnology;
    use hyppi_topology::{mesh, MeshSpec, NodeId};

    fn paper_matrix() -> (Topology, TrafficMatrix) {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let m = SoteriouConfig::paper().matrix(&t);
        (t, m)
    }

    #[test]
    fn deterministic_given_seed() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let a = SoteriouConfig::paper().matrix(&t);
        let b = SoteriouConfig::paper().matrix(&t);
        assert_eq!(a, b);
    }

    #[test]
    fn injection_respects_maximum() {
        let (t, m) = paper_matrix();
        let mut max_rate = 0.0f64;
        for n in t.nodes() {
            max_rate = max_rate.max(m.injection_rate(n));
        }
        assert!(max_rate <= 0.1 + 1e-9, "max {max_rate}");
        // The hottest node should sit exactly at the maximum.
        assert!((max_rate - 0.1).abs() < 1e-9, "max {max_rate}");
    }

    #[test]
    fn sigma_spreads_injection() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let narrow = SoteriouConfig {
            sigma: 0.05,
            ..SoteriouConfig::paper()
        }
        .matrix(&t);
        let wide = SoteriouConfig::paper().matrix(&t);
        // With σ = 0.05 nearly every node injects ≈ the same rate; with
        // σ = 0.4 the spread is much wider.
        let spread = |m: &TrafficMatrix| {
            let rates: Vec<f64> = t.nodes().map(|n| m.injection_rate(n)).collect();
            let max = rates.iter().cloned().fold(0.0f64, f64::max);
            let min = rates.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(spread(&wide) > 2.0 * spread(&narrow));
    }

    #[test]
    fn low_p_means_longer_hops() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let avg_hops = |p: f64| {
            let m = SoteriouConfig {
                p,
                ..SoteriouConfig::paper()
            }
            .matrix(&t);
            let mut wsum = 0.0;
            let mut hsum = 0.0;
            for (s, d, r) in m.demands() {
                hsum += r * f64::from(t.coord(s).manhattan(t.coord(d)));
                wsum += r;
            }
            hsum / wsum
        };
        let long = avg_hops(0.02);
        let short = avg_hops(0.5);
        assert!(
            long > short + 2.0,
            "p=0.02 gives {long} hops, p=0.5 gives {short}"
        );
    }

    #[test]
    fn no_self_traffic() {
        let (t, m) = paper_matrix();
        for n in t.nodes() {
            assert_eq!(m.rate(n, n), 0.0);
        }
        let _ = NodeId(0);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_bad_p() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let _ = SoteriouConfig {
            p: 0.0,
            ..SoteriouConfig::paper()
        }
        .matrix(&t);
    }
}
