//! Repeated electrical wire links.
//!
//! A NoC link is a parallel bus of `flit_bits` optimally repeated wires.
//! Area is pitch × length × wires; dynamic energy and repeater leakage
//! scale with length; delay is the repeated-wire figure per mm.

use crate::tech::TechNode;
use hyppi_phys::{Femtojoules, Micrometers, Milliwatts, Picoseconds, SquareMicrometers};

/// A parallel electrical bus link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectricalLinkModel {
    /// Number of parallel wires (one flit wide).
    pub wires: u32,
    /// Physical length of the link.
    pub length: Micrometers,
    /// Technology node.
    pub node: TechNode,
}

/// Evaluated electrical link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectricalLinkEstimate {
    /// Wiring footprint (pitch × length × wires).
    pub area: SquareMicrometers,
    /// Repeater leakage.
    pub static_power: Milliwatts,
    /// Dynamic energy per flit (all wires toggle once).
    pub energy_per_flit: Femtojoules,
    /// Wire propagation delay end to end.
    pub delay: Picoseconds,
}

impl ElectricalLinkModel {
    /// A 64-wire link at the paper's 11 nm NoC node.
    pub fn paper_link(length: Micrometers) -> Self {
        Self {
            wires: 64,
            length,
            node: TechNode::n11(),
        }
    }

    /// Evaluates the link.
    pub fn estimate(&self) -> ElectricalLinkEstimate {
        let mm = self.length.as_mm();
        let wires = f64::from(self.wires);
        ElectricalLinkEstimate {
            area: SquareMicrometers::new(wires * self.node.wire_pitch_um * self.length.value()),
            static_power: Milliwatts::new(wires * self.node.wire_leak_uw_per_mm * mm * 1e-3),
            energy_per_flit: Femtojoules::new(wires * self.node.wire_dyn_fj_per_bit_mm * mm),
            delay: Picoseconds::new(self.node.wire_delay_ps_per_mm * mm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mm_paper_link() {
        let e = ElectricalLinkModel::paper_link(Micrometers::from_mm(1.0)).estimate();
        // 64 wires × 0.32 µm pitch × 1000 µm = 20480 µm².
        assert!((e.area.value() - 20_480.0).abs() < 1e-6);
        // 64 wires × 0.6 µW/mm = 38.4 µW.
        assert!((e.static_power.value() - 0.0384).abs() < 1e-9);
        // 64 bits × 100 fJ/bit/mm = 6.4 pJ per flit.
        assert!((e.energy_per_flit.as_pj() - 6.4).abs() < 1e-9);
        assert!((e.delay.value() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn everything_scales_linearly_with_length() {
        let e1 = ElectricalLinkModel::paper_link(Micrometers::from_mm(1.0)).estimate();
        let e3 = ElectricalLinkModel::paper_link(Micrometers::from_mm(3.0)).estimate();
        assert!((e3.area / e1.area - 3.0).abs() < 1e-12);
        assert!((e3.static_power / e1.static_power - 3.0).abs() < 1e-12);
        assert!((e3.energy_per_flit / e1.energy_per_flit - 3.0).abs() < 1e-12);
        assert!((e3.delay / e1.delay - 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_mm_fits_in_a_cycle_at_core_clock() {
        // Paper: electronic link latency is 1 clock at 0.78125 GHz (1280 ps).
        let e = ElectricalLinkModel::paper_link(Micrometers::from_mm(1.0)).estimate();
        assert!(e.delay.value() < 1280.0);
        // Even the longest express link (15 mm) fits: 15 × 70 = 1050 ps.
        let e15 = ElectricalLinkModel::paper_link(Micrometers::from_mm(15.0)).estimate();
        assert!(e15.delay.value() < 1280.0);
    }
}
