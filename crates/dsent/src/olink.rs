//! Optical link system model (photonic, plasmonic, HyPPI).
//!
//! Composes the Table I device parameters with the SERDES/driver
//! electronics into the three quantities the NoC-level evaluation needs:
//! static power, dynamic energy per bit, and area — plus, for photonic
//! links, a *length-proportional active power* term.
//!
//! ## Accounting model (matches the paper's Tables IV and V)
//!
//! * **HyPPI / plasmonic**: the plasmonic MOS modulator directly gates the
//!   laser drive per bit, so laser energy is charged *dynamically* per
//!   transmitted bit via the loss-budget laser equation. Static power is
//!   only the laser bias plus SERDES idle power — ≈94 µW per link, which
//!   reproduces the paper's Table IV (HyPPI express links add only
//!   3–15 mW of static power to the whole NoC).
//! * **Photonic (MRR-based)**: microring modulators need continuously
//!   powered thermal trimming, and the CW laser cannot be gated per flit.
//!   Ring-heater bias + receiver/SERDES idle gives ≈9.7 mW static per link
//!   (Table IV: photonic express links add 0.31–1.55 W). On top of that,
//!   while the application actively communicates, laser + thermal dither
//!   power proportional to the waveguide length is burned regardless of
//!   per-flit activity; the paper folds this into "dynamic energy" (its
//!   Table V photonic row is ≈200× the electronic one and nearly constant
//!   across express spans — exactly the behaviour of a cost proportional
//!   to total waveguide length × communication time). We expose it as
//!   [`OpticalLinkEstimate::active_power`] and the system-level evaluation
//!   charges it per unit communication time.

use crate::tech::TechNode;
use hyppi_phys::{
    laser_power_mw, Femtojoules, Gbps, LinkTechnology, LossBudget, Micrometers, Milliwatts,
    Picoseconds, SquareMicrometers, TechnologyParams,
};

/// Thermal trimming bias per microring, mW (photonic links only).
pub const HEATER_BIAS_MW_PER_RING: f64 = 2.39;

/// Rings per wavelength lane: one modulator ring + one drop-filter ring.
pub const RINGS_PER_LANE: u32 = 2;

/// Laser bias current draw when idle, mW (all optical links).
pub const LASER_BIAS_MW: f64 = 0.054;

/// Photonic active laser + dither power per mm of waveguide, mW/mm,
/// charged while the application communicates (see module docs).
pub const PHOTONIC_ACTIVE_MW_PER_MM: f64 = 3.25;

/// E-O plus O-E conversion latency (driver, modulator, TIA), ps.
pub const CONVERSION_DELAY_PS: f64 = 100.0;

/// An optical point-to-point NoC link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalLinkModel {
    /// Device parameter set (photonic / plasmonic / HyPPI).
    pub params: TechnologyParams,
    /// Physical length.
    pub length: Micrometers,
    /// Wavelength lanes multiplexed on the waveguide.
    pub lanes: u32,
    /// Aggregate line rate across all lanes.
    pub line_rate: Gbps,
    /// Electronics node for SERDES/driver.
    pub node: TechNode,
}

/// Evaluated optical link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalLinkEstimate {
    /// Devices + SERDES + waveguide footprint.
    pub area: SquareMicrometers,
    /// Idle power: laser bias, ring heaters, SERDES idle.
    pub static_power: Milliwatts,
    /// Additional power burned per unit *communication-active* time
    /// (photonic CW laser + thermal dither; zero for HyPPI/plasmonic).
    pub active_power: Milliwatts,
    /// Dynamic energy per transmitted bit (modulator + detector + SERDES +
    /// gated laser).
    pub energy_per_bit: Femtojoules,
    /// Dynamic energy per 64-bit flit; convenience product.
    pub energy_per_flit: Femtojoules,
    /// Total optical loss along one lane.
    pub lane_loss_db: f64,
    /// End-to-end delay: conversion + time of flight.
    pub delay: Picoseconds,
}

impl OpticalLinkModel {
    /// A NoC link at the paper's operating point: 50 Gb/s aggregate,
    /// 11 nm SERDES, lane count chosen per technology (photonic needs two
    /// 25 Gb/s wavelengths; plasmonic/HyPPI run one 50 Gb/s lane).
    pub fn paper_link(tech: LinkTechnology, length: Micrometers) -> Self {
        assert!(tech.is_optical(), "use ElectricalLinkModel for electronics");
        let params = TechnologyParams::for_technology(tech);
        let lanes = if tech == LinkTechnology::Photonic {
            2
        } else {
            1
        };
        Self {
            params,
            length,
            lanes,
            line_rate: Gbps::new(50.0),
            node: TechNode::n11(),
        }
    }

    /// Per-lane data rate.
    #[inline]
    pub fn lane_rate(&self) -> Gbps {
        Gbps::new(self.line_rate.value() / f64::from(self.lanes))
    }

    /// Loss budget of one wavelength lane over this link.
    pub fn lane_loss(&self) -> LossBudget {
        let mut budget = LossBudget::new();
        budget
            .add("modulator insertion", self.params.modulator.insertion_loss)
            .add("coupling", self.params.waveguide.coupling_loss)
            .add_propagation(
                "waveguide propagation",
                self.params.waveguide.propagation_loss_db_per_cm,
                self.length,
            );
        budget
    }

    /// Evaluates the link.
    pub fn estimate(&self) -> OpticalLinkEstimate {
        let loss = self.lane_loss();
        let lane_rate = self.lane_rate();
        let laser = laser_power_mw(
            lane_rate,
            self.params.detector.responsivity_a_per_w,
            &loss,
            self.params.laser.efficiency,
        );
        let laser_per_bit = laser.energy_per_bit(lane_rate);
        let energy_per_bit = self.params.modulator.energy_per_bit
            + self.params.detector.energy_per_bit
            + Femtojoules::new(self.node.serdes_fj_per_bit)
            + laser_per_bit;

        let photonic = self.params.technology == LinkTechnology::Photonic;
        let rings = f64::from(RINGS_PER_LANE * self.lanes);
        let static_power = Milliwatts::new(
            LASER_BIAS_MW
                + self.node.serdes_static_uw * 1e-3
                + if photonic {
                    HEATER_BIAS_MW_PER_RING * rings
                } else {
                    0.0
                },
        );
        let active_power = Milliwatts::new(if photonic {
            PHOTONIC_ACTIVE_MW_PER_MM * self.length.as_mm()
        } else {
            0.0
        });

        let lanes = f64::from(self.lanes);
        // WDM lanes share one waveguide; device footprints replicate per lane.
        let area = SquareMicrometers::new(
            lanes * (self.params.modulator.area.value() + self.params.detector.area.value())
                + self.params.laser.area.value()
                + self.node.serdes_area_um2
                + self.params.waveguide.pitch.value() * self.length.value(),
        );

        let tof_ps = self.length.value() * hyppi_phys::constants::soi_delay_ps_per_um();
        OpticalLinkEstimate {
            area,
            static_power,
            active_power,
            energy_per_bit,
            energy_per_flit: energy_per_bit * 64.0,
            lane_loss_db: loss.total().value(),
            delay: Picoseconds::new(CONVERSION_DELAY_PS + tof_ps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(l: f64) -> Micrometers {
        Micrometers::from_mm(l)
    }

    #[test]
    fn anchor_photonic_express_static_power() {
        // Table IV: photonic express links add ≈1.546 W (span 3, 160 links),
        // ≈0.928 W (span 5, 96 links), ≈0.309 W (span 15, 32 links): the
        // per-link static power is ≈9.66 mW, independent of length.
        for span in [3.0, 5.0, 15.0] {
            let e = OpticalLinkModel::paper_link(LinkTechnology::Photonic, mm(span)).estimate();
            assert!(
                (e.static_power.value() - 9.66).abs() < 0.05,
                "span {span}: {}",
                e.static_power
            );
        }
        let total_span3 = 160.0
            * OpticalLinkModel::paper_link(LinkTechnology::Photonic, mm(3.0))
                .estimate()
                .static_power
                .as_watts();
        assert!(
            (total_span3 - 1.546).abs() / 1.546 < 0.01,
            "{total_span3} W"
        );
    }

    #[test]
    fn anchor_hyppi_express_static_power() {
        // Table IV: HyPPI express links add only ≈15 mW at span 3
        // (160 links → ≈94 µW/link).
        let e = OpticalLinkModel::paper_link(LinkTechnology::Hyppi, mm(3.0)).estimate();
        assert!(
            (e.static_power.value() - 0.094).abs() < 0.002,
            "{}",
            e.static_power
        );
        assert_eq!(e.active_power.value(), 0.0);
    }

    #[test]
    fn hyppi_flit_energy_is_a_few_pj() {
        // Loss at 3 mm: 0.6 (mod) + 1.0 (coupling) + 0.3 (prop) = 1.9 dB;
        // laser 50 fJ/bit × 1.55 ≈ 77 fJ/bit; + 4.25 + 0.14 + 2.0 ≈ 84.
        let e = OpticalLinkModel::paper_link(LinkTechnology::Hyppi, mm(3.0)).estimate();
        assert!((e.lane_loss_db - 1.9).abs() < 1e-9, "{}", e.lane_loss_db);
        assert!(
            (e.energy_per_bit.value() - 83.9).abs() < 1.0,
            "{}",
            e.energy_per_bit
        );
        assert!(e.energy_per_flit.as_pj() > 5.0 && e.energy_per_flit.as_pj() < 6.0);
    }

    #[test]
    fn photonic_per_bit_dynamic_is_small_but_active_power_dominates() {
        let e = OpticalLinkModel::paper_link(LinkTechnology::Photonic, mm(3.0)).estimate();
        // Gated per-bit energy is modest…
        assert!(e.energy_per_bit.value() < 15.0, "{}", e.energy_per_bit);
        // …but the CW laser + dither burn ≈9.75 mW while communicating.
        assert!((e.active_power.value() - 9.75).abs() < 1e-9);
    }

    #[test]
    fn plasmonic_loss_explodes_with_length() {
        let short = OpticalLinkModel::paper_link(LinkTechnology::Plasmonic, Micrometers::new(10.0))
            .estimate();
        let long = OpticalLinkModel::paper_link(LinkTechnology::Plasmonic, mm(1.0)).estimate();
        assert!(short.lane_loss_db < 3.0);
        assert!(long.lane_loss_db > 40.0);
        assert!(long.energy_per_bit.value() > 1e4 * short.energy_per_bit.value());
    }

    #[test]
    fn photonic_uses_two_lanes_on_one_waveguide() {
        let m = OpticalLinkModel::paper_link(LinkTechnology::Photonic, mm(1.0));
        assert_eq!(m.lanes, 2);
        assert!((m.lane_rate().value() - 25.0).abs() < 1e-12);
        let hy = OpticalLinkModel::paper_link(LinkTechnology::Hyppi, mm(1.0));
        assert_eq!(hy.lanes, 1);
        assert!((hy.lane_rate().value() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn hyppi_waveguide_dominates_area_and_beats_electronics() {
        let hy = OpticalLinkModel::paper_link(LinkTechnology::Hyppi, mm(3.0)).estimate();
        // 1 µm pitch × 3 mm ≈ 3000 µm² + devices; far below the 61k µm² of
        // a 64-wire electrical bus at the same length.
        assert!(hy.area.value() < 4000.0, "{}", hy.area);
        let el = crate::elink::ElectricalLinkModel::paper_link(mm(3.0)).estimate();
        assert!(el.area.value() / hy.area.value() > 15.0);
    }

    #[test]
    fn delay_fits_the_two_cycle_budget() {
        // Paper: optical link latency is 2 clocks (1 propagation + 1 O-E).
        // Even the 15 mm express link's flight time fits within a cycle.
        let e = OpticalLinkModel::paper_link(LinkTechnology::Hyppi, mm(15.0)).estimate();
        assert!(e.delay.value() < 1280.0, "{}", e.delay);
    }

    #[test]
    #[should_panic(expected = "ElectricalLinkModel")]
    fn rejects_electronic_technology() {
        let _ = OpticalLinkModel::paper_link(LinkTechnology::Electronic, mm(1.0));
    }
}
