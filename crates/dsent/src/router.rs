//! Composed electronic router model.
//!
//! Composes the component models ([`crate::components`]) into the router
//! estimate DSENT reports: area, static power, dynamic energy per flit.
//! The paper's two configurations are the 5-port base mesh router and the
//! 7-port hybrid router with two extra express-link ports (its Fig. 4);
//! routers at express-line endpoints have 6 ports.

use crate::components::{
    AllocatorModel, BufferModel, ClockModel, ComponentEstimate, CrossbarModel,
};
use crate::tech::TechNode;
use hyppi_phys::{Femtojoules, Milliwatts, SquareMicrometers};
use serde::{Deserialize, Serialize};

/// Router microarchitecture parameters (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Number of ports (5 base, 6/7 hybrid).
    pub ports: u32,
    /// Virtual channels per port.
    pub vcs: u32,
    /// Buffer depth per VC, flits.
    pub buffer_depth: u32,
    /// Flit width, bits.
    pub flit_bits: u32,
    /// Router pipeline depth, cycles.
    pub pipeline_stages: u32,
}

impl RouterConfig {
    /// The paper's base 5-port mesh router (Table II).
    pub fn base_mesh() -> Self {
        RouterConfig {
            ports: 5,
            vcs: 4,
            buffer_depth: 8,
            flit_bits: 64,
            pipeline_stages: 3,
        }
    }

    /// The hybrid router with `extra_ports` express ports (0, 1 or 2).
    pub fn hybrid(extra_ports: u32) -> Self {
        RouterConfig {
            ports: 5 + extra_ports,
            ..Self::base_mesh()
        }
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::base_mesh()
    }
}

/// Area / static power / per-flit energy estimate for one router.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RouterEstimate {
    /// Total router footprint.
    pub area: SquareMicrometers,
    /// Total leakage power.
    pub static_power: Milliwatts,
    /// Dynamic energy per flit traversing the router.
    pub energy_per_flit: Femtojoules,
    /// Per-component breakdown in fixed order:
    /// buffers, crossbar, allocators, clock.
    pub breakdown: [ComponentEstimate; 4],
}

/// The composed router model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterModel {
    /// Microarchitecture being modeled.
    pub config: RouterConfig,
    /// Technology node.
    pub node: TechNode,
}

impl RouterModel {
    /// Creates a model for a configuration at a node.
    pub fn new(config: RouterConfig, node: TechNode) -> Self {
        assert!(config.ports >= 2, "a router needs at least two ports");
        assert!(config.vcs >= 1 && config.buffer_depth >= 1 && config.flit_bits >= 1);
        Self { config, node }
    }

    /// The paper's configuration: base mesh router at 11 nm.
    pub fn paper_base() -> Self {
        Self::new(RouterConfig::base_mesh(), TechNode::n11())
    }

    /// Evaluates area, static power and per-flit dynamic energy.
    pub fn estimate(&self) -> RouterEstimate {
        let c = &self.config;
        let buffers = BufferModel {
            ports: c.ports,
            vcs: c.vcs,
            depth: c.buffer_depth,
            flit_bits: c.flit_bits,
        }
        .estimate(&self.node);
        let xbar = CrossbarModel {
            ports: c.ports,
            flit_bits: c.flit_bits,
        }
        .estimate(&self.node);
        let alloc = AllocatorModel {
            ports: c.ports,
            vcs: c.vcs,
        }
        .estimate(&self.node);
        let clock = ClockModel { ports: c.ports }.estimate(&self.node);

        let mut total = buffers.combine(xbar).combine(alloc).combine(clock);
        // Control, pipeline registers and intra-router wiring overhead,
        // proportional to radix.
        total.area +=
            SquareMicrometers::new(self.node.router_overhead_area_um2 * f64::from(c.ports) / 5.0);
        RouterEstimate {
            area: total.area,
            static_power: total.static_power,
            energy_per_flit: total.energy_per_flit,
            breakdown: [buffers, xbar, alloc, clock],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Number of links in a W×H bidirectional mesh (unidirectional count).
    fn mesh_links(w: u64, h: u64) -> u64 {
        2 * (h * (w - 1) + w * (h - 1))
    }

    #[test]
    fn base_router_estimate_is_stable() {
        let e = RouterModel::paper_base().estimate();
        // Calibrated values; see crate docs. Guard with 1% tolerance.
        assert!(
            (e.area.value() - 9531.0).abs() / 9531.0 < 0.01,
            "{}",
            e.area
        );
        assert!(
            (e.static_power.value() - 5.832).abs() / 5.832 < 0.01,
            "{}",
            e.static_power
        );
        assert!(
            (e.energy_per_flit.as_pj() - 1.926).abs() / 1.926 < 0.01,
            "{}",
            e.energy_per_flit
        );
    }

    #[test]
    fn anchor_electronic_mesh_static_power() {
        // Paper: the 16×16 electronic mesh dissipates 1.53 W static
        // (Table IV footnote). Routers + repeated-wire link leakage.
        let node = TechNode::n11();
        let router = RouterModel::paper_base().estimate();
        let links = mesh_links(16, 16) as f64;
        let link_leak_mw = 64.0 * node.wire_leak_uw_per_mm * 1.0 * 1e-3; // 64 wires × 1 mm
        let total_w = (256.0 * router.static_power.value() + links * link_leak_mw) / 1e3;
        assert!(
            (total_w - 1.53).abs() / 1.53 < 0.01,
            "mesh static power {total_w} W"
        );
    }

    #[test]
    fn anchor_electronic_mesh_area() {
        // Paper §V: the electronic mesh needs 22.1 mm².
        let node = TechNode::n11();
        let router = RouterModel::paper_base().estimate();
        let links = mesh_links(16, 16) as f64;
        let link_area_mm2 = 64.0 * node.wire_pitch_um * 1000.0 / 1e6; // 64 wires × 1 mm
        let total = 256.0 * router.area.as_mm2() + links * link_area_mm2;
        assert!((total - 22.1).abs() / 22.1 < 0.01, "mesh area {total} mm²");
    }

    #[test]
    fn hybrid_router_costs_more() {
        let node = TechNode::n11();
        let base = RouterModel::new(RouterConfig::base_mesh(), node).estimate();
        let hybrid = RouterModel::new(RouterConfig::hybrid(2), node).estimate();
        assert!(hybrid.area > base.area);
        assert!(hybrid.static_power > base.static_power);
        assert!(hybrid.energy_per_flit > base.energy_per_flit);
        // Buffer leakage should scale exactly with port count.
        let ratio = hybrid.breakdown[0].static_power / base.breakdown[0].static_power;
        assert!((ratio - 1.4).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_totals() {
        let e = RouterModel::paper_base().estimate();
        let sum_static: f64 = e.breakdown.iter().map(|c| c.static_power.value()).sum();
        assert!((sum_static - e.static_power.value()).abs() < 1e-9);
        let sum_energy: f64 = e.breakdown.iter().map(|c| c.energy_per_flit.value()).sum();
        assert!((sum_energy - e.energy_per_flit.value()).abs() < 1e-9);
    }

    #[test]
    fn larger_nodes_cost_more() {
        let cfg = RouterConfig::base_mesh();
        let e11 = RouterModel::new(cfg, TechNode::n11()).estimate();
        let e45 = RouterModel::new(cfg, TechNode::n45()).estimate();
        assert!(e45.area > e11.area);
        assert!(e45.static_power > e11.static_power);
        assert!(e45.energy_per_flit > e11.energy_per_flit);
    }

    #[test]
    #[should_panic(expected = "at least two ports")]
    fn rejects_degenerate_router() {
        let _ = RouterModel::new(
            RouterConfig {
                ports: 1,
                ..RouterConfig::base_mesh()
            },
            TechNode::n11(),
        );
    }
}
