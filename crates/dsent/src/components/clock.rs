//! Clock distribution model.
//!
//! DSENT charges the router's share of the clock tree as a fixed static
//! term plus a per-flit dynamic term (pipeline registers clocking flits
//! through the three router stages). Wider routers clock proportionally
//! more pipeline state.

use super::ComponentEstimate;
use crate::tech::TechNode;
use hyppi_phys::{Femtojoules, Milliwatts, SquareMicrometers};

/// Clock tree share of one router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Router radix; scales the clocked pipeline state.
    pub ports: u32,
}

impl ClockModel {
    /// Evaluates the model against a technology node.
    pub fn estimate(&self, node: &TechNode) -> ComponentEstimate {
        let port_factor = f64::from(self.ports) / 5.0;
        ComponentEstimate {
            // Clock wiring is counted inside the router overhead area.
            area: SquareMicrometers::ZERO,
            static_power: Milliwatts::new(node.clock_static_mw),
            energy_per_flit: Femtojoules::new(node.clock_fj_per_flit * port_factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_is_node_constant() {
        let node = TechNode::n11();
        let c = ClockModel { ports: 5 }.estimate(&node);
        assert_eq!(c.static_power.value(), node.clock_static_mw);
    }

    #[test]
    fn flit_energy_scales_with_ports() {
        let node = TechNode::n11();
        let c5 = ClockModel { ports: 5 }.estimate(&node);
        let c7 = ClockModel { ports: 7 }.estimate(&node);
        assert!((c7.energy_per_flit / c5.energy_per_flit - 1.4).abs() < 1e-12);
    }
}
