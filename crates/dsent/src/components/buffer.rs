//! Input buffer model.
//!
//! Each router input port holds `vcs × depth` flit slots of `flit_bits`
//! bits, implemented as register-file cells. A flit that traverses the
//! router is written once on arrival and read once on switch traversal.

use super::ComponentEstimate;
use crate::tech::TechNode;
use hyppi_phys::{Femtojoules, Milliwatts, SquareMicrometers};

/// Input buffering for one whole router (all ports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferModel {
    /// Number of router ports holding input buffers.
    pub ports: u32,
    /// Virtual channels per port.
    pub vcs: u32,
    /// Buffer depth per VC, in flits.
    pub depth: u32,
    /// Flit width in bits.
    pub flit_bits: u32,
}

impl BufferModel {
    /// Total storage bits across the router.
    #[inline]
    pub fn total_bits(&self) -> u64 {
        u64::from(self.ports)
            * u64::from(self.vcs)
            * u64::from(self.depth)
            * u64::from(self.flit_bits)
    }

    /// Evaluates the model against a technology node.
    pub fn estimate(&self, node: &TechNode) -> ComponentEstimate {
        let bits = self.total_bits() as f64;
        let per_flit_bits = f64::from(self.flit_bits);
        ComponentEstimate {
            area: SquareMicrometers::new(bits * node.buffer_area_um2_per_bit),
            static_power: Milliwatts::new(bits * node.buffer_leak_uw_per_bit * 1e-3),
            // One write on arrival + one read on departure.
            energy_per_flit: Femtojoules::new(
                per_flit_bits * (node.buffer_write_fj_per_bit + node.buffer_read_fj_per_bit),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_buffer(ports: u32) -> BufferModel {
        BufferModel {
            ports,
            vcs: 4,
            depth: 8,
            flit_bits: 64,
        }
    }

    #[test]
    fn bit_count_matches_table_ii() {
        // 5 ports × 4 VCs × 8 flits × 64 bits.
        assert_eq!(paper_buffer(5).total_bits(), 10_240);
        assert_eq!(paper_buffer(7).total_bits(), 14_336);
    }

    #[test]
    fn estimate_scales_linearly_with_ports() {
        let node = TechNode::n11();
        let e5 = paper_buffer(5).estimate(&node);
        let e7 = paper_buffer(7).estimate(&node);
        let ratio = 7.0 / 5.0;
        assert!((e7.area / e5.area - ratio).abs() < 1e-12);
        assert!((e7.static_power / e5.static_power - ratio).abs() < 1e-12);
        // Per-flit energy is independent of port count.
        assert_eq!(e5.energy_per_flit, e7.energy_per_flit);
    }

    #[test]
    fn per_flit_energy_is_write_plus_read() {
        let node = TechNode::n11();
        let e = paper_buffer(5).estimate(&node);
        let expected = 64.0 * (node.buffer_write_fj_per_bit + node.buffer_read_fj_per_bit);
        assert!((e.energy_per_flit.value() - expected).abs() < 1e-9);
    }
}
