//! Router building-block models.
//!
//! Each component exposes the same three quantities DSENT reports — area,
//! static (leakage) power and dynamic energy per operation — derived from
//! the [`TechNode`](crate::tech::TechNode) constants. The composed router
//! lives in [`crate::router`].

pub mod allocator;
pub mod buffer;
pub mod clock;
pub mod crossbar;

pub use allocator::AllocatorModel;
pub use buffer::BufferModel;
pub use clock::ClockModel;
pub use crossbar::CrossbarModel;

use hyppi_phys::{Femtojoules, Milliwatts, SquareMicrometers};

/// Common estimate triple every component produces.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComponentEstimate {
    /// Component footprint.
    pub area: SquareMicrometers,
    /// Leakage power.
    pub static_power: Milliwatts,
    /// Dynamic energy charged per flit that exercises the component.
    pub energy_per_flit: Femtojoules,
}

impl ComponentEstimate {
    /// Sums two estimates component-wise.
    pub fn combine(self, other: Self) -> Self {
        ComponentEstimate {
            area: self.area + other.area,
            static_power: self.static_power + other.static_power,
            energy_per_flit: self.energy_per_flit + other.energy_per_flit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_adds_fields() {
        let a = ComponentEstimate {
            area: SquareMicrometers::new(1.0),
            static_power: Milliwatts::new(2.0),
            energy_per_flit: Femtojoules::new(3.0),
        };
        let b = ComponentEstimate {
            area: SquareMicrometers::new(10.0),
            static_power: Milliwatts::new(20.0),
            energy_per_flit: Femtojoules::new(30.0),
        };
        let c = a.combine(b);
        assert_eq!(c.area.value(), 11.0);
        assert_eq!(c.static_power.value(), 22.0);
        assert_eq!(c.energy_per_flit.value(), 33.0);
    }
}
