//! VC and switch allocator model.
//!
//! Both allocators are matrices of round-robin arbiters. The model counts
//! requestors: the VC allocator arbitrates `ports × vcs` input VCs over
//! output VCs, the switch allocator arbitrates the same input VCs over
//! output ports. A flit pays for one switch-allocation grant; a packet head
//! additionally pays for one VC-allocation grant, which we fold into the
//! per-flit figure at the paper's packet sizes.

use super::ComponentEstimate;
use crate::tech::TechNode;
use hyppi_phys::{Femtojoules, Milliwatts, SquareMicrometers};

/// Combined VC + switch allocator for one router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocatorModel {
    /// Router radix.
    pub ports: u32,
    /// Virtual channels per port.
    pub vcs: u32,
}

impl AllocatorModel {
    /// Total arbiter requestors across both allocators.
    #[inline]
    pub fn requestors(&self) -> u32 {
        2 * self.ports * self.vcs
    }

    /// Evaluates the model against a technology node.
    pub fn estimate(&self, node: &TechNode) -> ComponentEstimate {
        let reqs = f64::from(self.requestors());
        // A grant considers on the order of `ports` competing requests;
        // two grants (VA + SA) are charged per flit.
        let grant_energy = node.arbiter_fj_per_grant * f64::from(self.ports);
        ComponentEstimate {
            area: SquareMicrometers::new(reqs * node.arbiter_area_um2_per_req),
            static_power: Milliwatts::new(reqs * node.arbiter_leak_nw_per_req * 1e-6),
            energy_per_flit: Femtojoules::new(2.0 * grant_energy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requestor_count() {
        let a = AllocatorModel { ports: 5, vcs: 4 };
        assert_eq!(a.requestors(), 40);
        let a7 = AllocatorModel { ports: 7, vcs: 4 };
        assert_eq!(a7.requestors(), 56);
    }

    #[test]
    fn leakage_scales_with_requestors() {
        let node = TechNode::n11();
        let a5 = AllocatorModel { ports: 5, vcs: 4 }.estimate(&node);
        let a7 = AllocatorModel { ports: 7, vcs: 4 }.estimate(&node);
        assert!((a7.static_power / a5.static_power - 1.4).abs() < 1e-12);
        assert!((a7.area / a5.area - 1.4).abs() < 1e-12);
    }

    #[test]
    fn energy_charges_two_grants() {
        let node = TechNode::n11();
        let a = AllocatorModel { ports: 5, vcs: 4 }.estimate(&node);
        let expected = 2.0 * node.arbiter_fj_per_grant * 5.0;
        assert!((a.energy_per_flit.value() - expected).abs() < 1e-9);
    }
}
