//! Matrix crossbar model.
//!
//! A `ports × ports` matrix crossbar of `flit_bits` bit lanes. Area and
//! leakage scale with the number of crosspoint bits (`ports² × flit_bits`);
//! the energy of moving one flit through the crossbar grows with port count
//! because the traversal wires lengthen with the matrix dimension.

use super::ComponentEstimate;
use crate::tech::TechNode;
use hyppi_phys::{Femtojoules, Milliwatts, SquareMicrometers};

/// Crossbar switch for one router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarModel {
    /// Router radix (input = output port count).
    pub ports: u32,
    /// Flit width in bits.
    pub flit_bits: u32,
}

impl CrossbarModel {
    /// Number of crosspoint bits in the matrix.
    #[inline]
    pub fn crosspoint_bits(&self) -> u64 {
        u64::from(self.ports) * u64::from(self.ports) * u64::from(self.flit_bits)
    }

    /// Evaluates the model against a technology node.
    ///
    /// The per-flit traversal energy is normalized so that the
    /// `xbar_fj_per_bit` constant applies to the paper's 5-port base router;
    /// wider routers pay proportionally longer traversal wires.
    pub fn estimate(&self, node: &TechNode) -> ComponentEstimate {
        let xbits = self.crosspoint_bits() as f64;
        let span_factor = f64::from(self.ports) / 5.0;
        ComponentEstimate {
            area: SquareMicrometers::new(xbits * node.xbar_area_um2_per_bit),
            static_power: Milliwatts::new(xbits * node.xbar_leak_nw_per_bit * 1e-6),
            energy_per_flit: Femtojoules::new(
                f64::from(self.flit_bits) * node.xbar_fj_per_bit * span_factor,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosspoint_count() {
        let x = CrossbarModel {
            ports: 5,
            flit_bits: 64,
        };
        assert_eq!(x.crosspoint_bits(), 1600);
    }

    #[test]
    fn area_scales_quadratically_with_ports() {
        let node = TechNode::n11();
        let x5 = CrossbarModel {
            ports: 5,
            flit_bits: 64,
        }
        .estimate(&node);
        let x10 = CrossbarModel {
            ports: 10,
            flit_bits: 64,
        }
        .estimate(&node);
        assert!((x10.area / x5.area - 4.0).abs() < 1e-12);
    }

    #[test]
    fn traversal_energy_scales_linearly_with_ports() {
        let node = TechNode::n11();
        let x5 = CrossbarModel {
            ports: 5,
            flit_bits: 64,
        }
        .estimate(&node);
        let x7 = CrossbarModel {
            ports: 7,
            flit_bits: 64,
        }
        .estimate(&node);
        assert!((x7.energy_per_flit / x5.energy_per_flit - 1.4).abs() < 1e-12);
    }
}
