//! DSENT-style opto-electronic technology modeling.
//!
//! The paper uses a modified version of the MIT **DSENT** tool to obtain
//! router and link area, static power and dynamic energy per flit at the
//! 11 nm technology node (its Table II points every such entry at
//! "Modified-DSENT"). DSENT itself is an analytical estimator: it composes
//! standard-cell and wire energy models into router components (input
//! buffers, crossbar, allocators, clock) and photonic link models (laser,
//! modulator, detector, tuning, SERDES).
//!
//! This crate rebuilds that estimator from scratch:
//!
//! * [`tech`] — technology-node parameter sets (45 → 11 nm) with
//!   constant-field-style scaling;
//! * [`components`] — router building blocks: input buffers, matrix
//!   crossbar, VC/switch allocators, clock tree;
//! * [`router`] — the composed electronic router model (5-port base mesh
//!   router, 7-port hybrid router with express ports);
//! * [`elink`] — repeated electrical wire links;
//! * [`olink`] — optical link system model (laser, modulator, detector,
//!   SERDES, thermal tuning) for photonic, plasmonic and HyPPI links.
//!
//! ## Calibration
//!
//! The free constants are pinned so that the paper's published absolute
//! anchors come out of the composed models (see `DESIGN.md` §5): 1.53 W
//! static power and 22.1 mm² area for the 256-node electronic mesh,
//! ≈9.7 mW static per photonic express link (Table IV), ≈94 µW static per
//! HyPPI express link (Table IV). The calibration tests in [`router`] and
//! [`olink`] enforce these anchors so a drive-by change to a device constant
//! cannot silently invalidate every downstream experiment.

pub mod components;
pub mod elink;
pub mod olink;
pub mod router;
pub mod tech;

pub use elink::{ElectricalLinkEstimate, ElectricalLinkModel};
pub use olink::{OpticalLinkEstimate, OpticalLinkModel};
pub use router::{RouterConfig, RouterEstimate, RouterModel};
pub use tech::TechNode;
