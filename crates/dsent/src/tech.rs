//! Technology-node parameter sets.
//!
//! DSENT ships per-node electrical models; we reproduce the subset the
//! paper's evaluation needs. The 11 nm node is the one every NoC-level
//! number in the paper uses ("we used the DSENT tool for an accurate
//! analysis, using 11 nm technology node"); the larger nodes exist for
//! scaling studies and tests of the scaling behaviour itself.

use serde::{Deserialize, Serialize};

/// Electrical technology-node parameters used by all component models.
///
/// Values are in the units stated per field. They follow generalized
/// constant-field scaling from published 45 nm numbers, with the 11 nm
/// column calibrated against the paper's anchors (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechNode {
    /// Feature size in nanometers (45, 32, 22, 14, 11).
    pub feature_nm: u32,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Energy to write + hold one bit-cell cycle in a register-file style
    /// buffer cell, fJ per bit access (write).
    pub buffer_write_fj_per_bit: f64,
    /// Energy to read one bit from a buffer cell, fJ per bit.
    pub buffer_read_fj_per_bit: f64,
    /// Leakage of one buffer bit cell, µW.
    pub buffer_leak_uw_per_bit: f64,
    /// Area of one buffer bit cell, µm².
    pub buffer_area_um2_per_bit: f64,
    /// Energy to move one bit through a matrix crossbar, fJ per bit per
    /// port-pair span (scaled internally by port count).
    pub xbar_fj_per_bit: f64,
    /// Crossbar area per crosspoint-bit, µm².
    pub xbar_area_um2_per_bit: f64,
    /// Crossbar leakage per crosspoint-bit, nW.
    pub xbar_leak_nw_per_bit: f64,
    /// Energy per arbiter grant (one requestor), fJ.
    pub arbiter_fj_per_grant: f64,
    /// Arbiter area per requestor, µm².
    pub arbiter_area_um2_per_req: f64,
    /// Arbiter leakage per requestor, nW.
    pub arbiter_leak_nw_per_req: f64,
    /// Clock-tree energy charged per flit traversal, fJ.
    pub clock_fj_per_flit: f64,
    /// Clock-tree + control static power per router, mW.
    pub clock_static_mw: f64,
    /// Fixed router overhead area (control, wiring, pipeline registers), µm².
    pub router_overhead_area_um2: f64,
    /// Dynamic energy of a repeated on-chip wire, fJ per bit per mm.
    pub wire_dyn_fj_per_bit_mm: f64,
    /// Repeater leakage, µW per wire per mm.
    pub wire_leak_uw_per_mm: f64,
    /// Delay of an optimally repeated wire, ps per mm.
    pub wire_delay_ps_per_mm: f64,
    /// Wire pitch (width + spacing), µm.
    pub wire_pitch_um: f64,
    /// SERDES energy, fJ per bit (at the 50 Gb/s NoC line rate).
    pub serdes_fj_per_bit: f64,
    /// SERDES + driver static power per optical link endpoint pair, µW.
    pub serdes_static_uw: f64,
    /// SERDES + driver area per optical link, µm².
    pub serdes_area_um2: f64,
}

impl TechNode {
    /// The 11 nm node used for every NoC-level number in the paper.
    pub fn n11() -> Self {
        TechNode {
            feature_nm: 11,
            vdd: 0.7,
            buffer_write_fj_per_bit: 10.0,
            buffer_read_fj_per_bit: 8.0,
            buffer_leak_uw_per_bit: 0.53,
            buffer_area_um2_per_bit: 0.5,
            xbar_fj_per_bit: 6.0,
            xbar_area_um2_per_bit: 1.2,
            xbar_leak_nw_per_bit: 0.1,
            arbiter_fj_per_grant: 4.0,
            arbiter_area_um2_per_req: 8.0,
            arbiter_leak_nw_per_req: 120.0,
            clock_fj_per_flit: 350.0,
            clock_static_mw: 0.40,
            router_overhead_area_um2: 2171.0,
            wire_dyn_fj_per_bit_mm: 100.0,
            wire_leak_uw_per_mm: 0.6,
            wire_delay_ps_per_mm: 70.0,
            wire_pitch_um: 0.32,
            serdes_fj_per_bit: 2.0,
            serdes_static_uw: 40.0,
            serdes_area_um2: 400.0,
        }
    }

    /// The 14 nm node (ITRS roadmap; used for the bare electrical link in
    /// the paper's Fig. 3 comparison).
    pub fn n14() -> Self {
        Self::scaled_from_11(14)
    }

    /// The 22 nm node.
    pub fn n22() -> Self {
        Self::scaled_from_11(22)
    }

    /// The 32 nm node.
    pub fn n32() -> Self {
        Self::scaled_from_11(32)
    }

    /// The 45 nm node.
    pub fn n45() -> Self {
        Self::scaled_from_11(45)
    }

    /// Looks a node up by feature size.
    pub fn by_feature(nm: u32) -> Option<Self> {
        match nm {
            11 => Some(Self::n11()),
            14 => Some(Self::n14()),
            22 => Some(Self::n22()),
            32 => Some(Self::n32()),
            45 => Some(Self::n45()),
            _ => None,
        }
    }

    /// Generalized scaling from the calibrated 11 nm column.
    ///
    /// Energies scale with `s·v²` (capacitance × voltage²), areas with
    /// `s²`, leakage roughly with `s·v`, wire delay stays roughly constant
    /// per mm for repeated wires, and wire pitch scales with `s`, where
    /// `s = nm / 11` and `v = vdd(nm) / vdd(11)`.
    fn scaled_from_11(nm: u32) -> Self {
        let base = Self::n11();
        let s = nm as f64 / base.feature_nm as f64;
        let vdd = match nm {
            14 => 0.8,
            22 => 0.9,
            32 => 1.0,
            _ => 1.1,
        };
        let v = vdd / base.vdd;
        let e = s * v * v; // dynamic energy scale
        let a = s * s; // area scale
        let l = s * v; // leakage scale
        TechNode {
            feature_nm: nm,
            vdd,
            buffer_write_fj_per_bit: base.buffer_write_fj_per_bit * e,
            buffer_read_fj_per_bit: base.buffer_read_fj_per_bit * e,
            buffer_leak_uw_per_bit: base.buffer_leak_uw_per_bit * l,
            buffer_area_um2_per_bit: base.buffer_area_um2_per_bit * a,
            xbar_fj_per_bit: base.xbar_fj_per_bit * e,
            xbar_area_um2_per_bit: base.xbar_area_um2_per_bit * a,
            xbar_leak_nw_per_bit: base.xbar_leak_nw_per_bit * l,
            arbiter_fj_per_grant: base.arbiter_fj_per_grant * e,
            arbiter_area_um2_per_req: base.arbiter_area_um2_per_req * a,
            arbiter_leak_nw_per_req: base.arbiter_leak_nw_per_req * l,
            clock_fj_per_flit: base.clock_fj_per_flit * e,
            clock_static_mw: base.clock_static_mw * l,
            router_overhead_area_um2: base.router_overhead_area_um2 * a,
            wire_dyn_fj_per_bit_mm: base.wire_dyn_fj_per_bit_mm * v * v,
            wire_leak_uw_per_mm: base.wire_leak_uw_per_mm * l,
            wire_delay_ps_per_mm: base.wire_delay_ps_per_mm,
            wire_pitch_um: base.wire_pitch_um * s,
            serdes_fj_per_bit: base.serdes_fj_per_bit * e,
            serdes_static_uw: base.serdes_static_uw * l,
            serdes_area_um2: base.serdes_area_um2 * a,
        }
    }
}

impl Default for TechNode {
    fn default() -> Self {
        Self::n11()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_feature() {
        for nm in [11u32, 14, 22, 32, 45] {
            let n = TechNode::by_feature(nm).expect("known node");
            assert_eq!(n.feature_nm, nm);
        }
        assert!(TechNode::by_feature(7).is_none());
    }

    #[test]
    fn scaling_is_monotonic_in_feature_size() {
        let nodes = [
            TechNode::n11(),
            TechNode::n14(),
            TechNode::n22(),
            TechNode::n32(),
            TechNode::n45(),
        ];
        for w in nodes.windows(2) {
            let (small, big) = (&w[0], &w[1]);
            assert!(big.buffer_write_fj_per_bit > small.buffer_write_fj_per_bit);
            assert!(big.buffer_area_um2_per_bit > small.buffer_area_um2_per_bit);
            assert!(big.buffer_leak_uw_per_bit > small.buffer_leak_uw_per_bit);
            assert!(big.wire_pitch_um > small.wire_pitch_um);
            assert!(big.vdd >= small.vdd);
        }
    }

    #[test]
    fn default_is_the_paper_node() {
        assert_eq!(TechNode::default().feature_nm, 11);
    }

    #[test]
    fn area_scales_quadratically() {
        let a11 = TechNode::n11().buffer_area_um2_per_bit;
        let a22 = TechNode::n22().buffer_area_um2_per_bit;
        let ratio = a22 / a11;
        let expected = (22.0f64 / 11.0).powi(2);
        assert!((ratio - expected).abs() < 1e-9, "ratio {ratio}");
    }
}
