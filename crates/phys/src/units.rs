//! Lightweight unit newtypes.
//!
//! The models in this workspace juggle quantities in decibels, femtojoules,
//! picoseconds, micrometers and gigabits per second. Mixing those up is the
//! classic failure mode of analytical interconnect models, so each quantity
//! gets a zero-cost wrapper around `f64` with only the arithmetic that makes
//! physical sense. Raw values are always available through
//! [`value`](Decibels::value) for formulas that genuinely need plain floats.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Wraps a raw value.
            #[inline]
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// Returns the raw value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns `true` if the value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Optical power ratio or loss, in decibels.
    Decibels,
    "dB"
);
unit!(
    /// Length in micrometers.
    Micrometers,
    "um"
);
unit!(
    /// Time in picoseconds.
    Picoseconds,
    "ps"
);
unit!(
    /// Energy in femtojoules.
    Femtojoules,
    "fJ"
);
unit!(
    /// Data rate in gigabits per second.
    Gbps,
    "Gb/s"
);
unit!(
    /// Area in square micrometers.
    SquareMicrometers,
    "um^2"
);
unit!(
    /// Power in milliwatts.
    Milliwatts,
    "mW"
);

impl Micrometers {
    /// Constructs from millimeters.
    #[inline]
    pub fn from_mm(mm: f64) -> Self {
        Self(mm * 1e3)
    }

    /// Constructs from centimeters.
    #[inline]
    pub fn from_cm(cm: f64) -> Self {
        Self(cm * 1e4)
    }

    /// Converts to millimeters.
    #[inline]
    pub fn as_mm(self) -> f64 {
        self.0 / 1e3
    }

    /// Converts to centimeters.
    #[inline]
    pub fn as_cm(self) -> f64 {
        self.0 / 1e4
    }
}

impl Milliwatts {
    /// Constructs from watts.
    #[inline]
    pub fn from_watts(w: f64) -> Self {
        Self(w * 1e3)
    }

    /// Converts to watts.
    #[inline]
    pub fn as_watts(self) -> f64 {
        self.0 / 1e3
    }

    /// Constructs from microwatts.
    #[inline]
    pub fn from_uw(uw: f64) -> Self {
        Self(uw / 1e3)
    }

    /// Energy spent per bit at a given line rate.
    ///
    /// `P [mW] / R [Gb/s] = E [pJ/bit]`, converted here to femtojoules.
    #[inline]
    pub fn energy_per_bit(self, rate: Gbps) -> Femtojoules {
        Femtojoules(self.0 / rate.0 * 1e3)
    }
}

impl Femtojoules {
    /// Constructs from picojoules.
    #[inline]
    pub fn from_pj(pj: f64) -> Self {
        Self(pj * 1e3)
    }

    /// Converts to picojoules.
    #[inline]
    pub fn as_pj(self) -> f64 {
        self.0 / 1e3
    }

    /// Converts to joules.
    #[inline]
    pub fn as_joules(self) -> f64 {
        self.0 * 1e-15
    }
}

impl Picoseconds {
    /// Constructs from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Self(ns * 1e3)
    }

    /// Converts to nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 / 1e3
    }
}

impl SquareMicrometers {
    /// Converts to square millimeters.
    #[inline]
    pub fn as_mm2(self) -> f64 {
        self.0 / 1e6
    }

    /// Constructs from square millimeters.
    #[inline]
    pub fn from_mm2(mm2: f64) -> Self {
        Self(mm2 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Decibels::new(1.5);
        let b = Decibels::new(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        assert_eq!(a / b, 3.0);
    }

    #[test]
    fn length_conversions() {
        assert_eq!(Micrometers::from_mm(1.0).value(), 1000.0);
        assert_eq!(Micrometers::from_cm(1.0).value(), 10_000.0);
        assert!((Micrometers::new(2500.0).as_mm() - 2.5).abs() < 1e-12);
        assert!((Micrometers::new(25_000.0).as_cm() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn power_energy_conversions() {
        // 1 mW at 1 Gb/s is 1 pJ/bit = 1000 fJ/bit.
        let e = Milliwatts::new(1.0).energy_per_bit(Gbps::new(1.0));
        assert!((e.value() - 1000.0).abs() < 1e-9);
        // 50 mW at 50 Gb/s is 1 pJ/bit.
        let e = Milliwatts::new(50.0).energy_per_bit(Gbps::new(50.0));
        assert!((e.as_pj() - 1.0).abs() < 1e-9);
        assert!((Milliwatts::from_watts(1.53).value() - 1530.0).abs() < 1e-9);
        assert!((Milliwatts::from_uw(250.0).value() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn energy_conversions() {
        assert!((Femtojoules::from_pj(2.0).value() - 2000.0).abs() < 1e-9);
        assert!((Femtojoules::new(1e15).as_joules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sums_and_display() {
        let total: Femtojoules = [1.0, 2.0, 3.0].iter().map(|&v| Femtojoules::new(v)).sum();
        assert_eq!(total.value(), 6.0);
        assert_eq!(format!("{}", Gbps::new(50.0)), "50.0000 Gb/s");
    }

    #[test]
    fn min_max() {
        let a = Picoseconds::new(3.0);
        let b = Picoseconds::new(5.0);
        assert_eq!(a.max(b).value(), 5.0);
        assert_eq!(a.min(b).value(), 3.0);
    }

    #[test]
    fn area_conversions() {
        assert!((SquareMicrometers::from_mm2(1.0).value() - 1e6).abs() < 1e-6);
        assert!((SquareMicrometers::new(500.0).as_mm2() - 0.0005).abs() < 1e-12);
    }
}
