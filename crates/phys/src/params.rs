//! Device parameter sets — Table I of the paper, plus the ITRS-derived
//! electrical wire parameters used for the electronic baseline.
//!
//! These are *inputs* to every model in the workspace. The paper takes them
//! from the literature (\[14\], \[9\] in its bibliography); we transcribe them
//! verbatim. Where Table I lists two modulator speeds — the peak device
//! capability and the SERDES-limited rate used at the NoC level (in
//! parentheses in the paper) — both are kept.

use crate::units::{Decibels, Femtojoules, Gbps, Micrometers, SquareMicrometers};
use serde::{Deserialize, Serialize};

/// The four interconnect technologies compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkTechnology {
    /// Repeated electrical wires (ITRS 14 nm parameters).
    Electronic,
    /// Conventional nanophotonics: microring modulators and detectors.
    Photonic,
    /// Pure plasmonics: metal waveguides, MOS-type modulator.
    Plasmonic,
    /// Hybrid plasmonic-photonic interconnect: plasmonic active devices on
    /// SOI passive waveguides.
    Hyppi,
}

impl LinkTechnology {
    /// All four technologies, in the paper's presentation order.
    pub const ALL: [LinkTechnology; 4] = [
        LinkTechnology::Electronic,
        LinkTechnology::Photonic,
        LinkTechnology::Plasmonic,
        LinkTechnology::Hyppi,
    ];

    /// The three optical technologies (everything but electronics).
    pub const OPTICAL: [LinkTechnology; 3] = [
        LinkTechnology::Photonic,
        LinkTechnology::Plasmonic,
        LinkTechnology::Hyppi,
    ];

    /// Returns true for technologies that carry data as light and therefore
    /// need O-E / E-O conversion at router boundaries.
    #[inline]
    pub fn is_optical(self) -> bool {
        !matches!(self, LinkTechnology::Electronic)
    }

    /// Human-readable name used in reproduced tables.
    pub fn name(self) -> &'static str {
        match self {
            LinkTechnology::Electronic => "Electronic",
            LinkTechnology::Photonic => "Photonic",
            LinkTechnology::Plasmonic => "Plasmonic",
            LinkTechnology::Hyppi => "HyPPI",
        }
    }
}

impl std::fmt::Display for LinkTechnology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// On-chip laser parameters (Table I, "Laser" rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaserParams {
    /// Wall-plug efficiency, as a fraction (Table I lists percent).
    pub efficiency: f64,
    /// Footprint of the laser source.
    pub area: SquareMicrometers,
}

/// Modulator parameters (Table I, "Modulator" rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModulatorParams {
    /// Peak device data rate (used for the bare link comparison, Fig. 3).
    pub peak_rate: Gbps,
    /// SERDES-limited rate used at the NoC system level (the parenthesized
    /// values in Table I).
    pub serdes_rate: Gbps,
    /// Dynamic energy per modulated bit.
    pub energy_per_bit: Femtojoules,
    /// Optical insertion loss of the modulator.
    pub insertion_loss: Decibels,
    /// Extinction ratio between the on and off states.
    pub extinction_ratio: Decibels,
    /// Device footprint.
    pub area: SquareMicrometers,
    /// Device capacitance, femtofarads.
    pub capacitance_ff: f64,
    /// Drive/bias voltage swing, volts (midpoint of the Table I range).
    pub bias_voltage: f64,
}

/// Photodetector parameters (Table I, "Photodetector" rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorParams {
    /// Detector bandwidth as a data rate (first of the paired values).
    pub rate: Gbps,
    /// Intrinsic device speed limit (second of the paired values).
    pub intrinsic_rate: Gbps,
    /// Receiver energy per bit.
    pub energy_per_bit: Femtojoules,
    /// Responsivity, amperes per watt.
    pub responsivity_a_per_w: f64,
    /// Device footprint.
    pub area: SquareMicrometers,
}

/// Waveguide parameters (Table I, "Waveguide" rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveguideParams {
    /// Propagation loss, dB per centimeter.
    pub propagation_loss_db_per_cm: f64,
    /// Coupling loss between the active device section and the waveguide
    /// (zero for the all-photonic link, which needs no mode conversion).
    pub coupling_loss: Decibels,
    /// Waveguide pitch (center-to-center spacing when routed in parallel).
    pub pitch: Micrometers,
    /// Waveguide width.
    pub width: Micrometers,
}

impl WaveguideParams {
    /// Propagation loss over a given length.
    #[inline]
    pub fn propagation_loss(&self, length: Micrometers) -> Decibels {
        Decibels::new(self.propagation_loss_db_per_cm * length.as_cm())
    }
}

/// Complete parameter set for one optical technology (one Table I column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Which column this is.
    pub technology: LinkTechnology,
    pub laser: LaserParams,
    pub modulator: ModulatorParams,
    pub detector: DetectorParams,
    pub waveguide: WaveguideParams,
}

impl TechnologyParams {
    /// Looks up the Table I column for an optical technology.
    ///
    /// # Panics
    ///
    /// Panics for [`LinkTechnology::Electronic`], which has no optical
    /// parameter set — use [`electronic_wire_params`] instead.
    pub fn for_technology(tech: LinkTechnology) -> Self {
        match tech {
            LinkTechnology::Photonic => photonic_params(),
            LinkTechnology::Plasmonic => plasmonic_params(),
            LinkTechnology::Hyppi => hyppi_params(),
            LinkTechnology::Electronic => {
                panic!("electronic links are parameterized by ElectronicWireParams")
            }
        }
    }
}

/// Table I, "Photonic" column.
pub fn photonic_params() -> TechnologyParams {
    TechnologyParams {
        technology: LinkTechnology::Photonic,
        laser: LaserParams {
            efficiency: 0.25,
            area: SquareMicrometers::new(200.0),
        },
        modulator: ModulatorParams {
            peak_rate: Gbps::new(25.0),
            serdes_rate: Gbps::new(25.0),
            energy_per_bit: Femtojoules::new(2.77),
            insertion_loss: Decibels::new(1.02),
            extinction_ratio: Decibels::new(6.18),
            area: SquareMicrometers::new(100.0),
            capacitance_ff: 16.0,
            bias_voltage: 1.3, // midpoint of the -2.2..0.4 V swing
        },
        detector: DetectorParams {
            rate: Gbps::new(40.0),
            intrinsic_rate: Gbps::new(40.0),
            energy_per_bit: Femtojoules::new(0.0),
            responsivity_a_per_w: 0.8,
            area: SquareMicrometers::new(100.0),
        },
        waveguide: WaveguideParams {
            propagation_loss_db_per_cm: 1.0,
            coupling_loss: Decibels::ZERO,
            pitch: Micrometers::new(4.0),
            width: Micrometers::new(0.35),
        },
    }
}

/// Table I, "Plasmonic" column.
pub fn plasmonic_params() -> TechnologyParams {
    TechnologyParams {
        technology: LinkTechnology::Plasmonic,
        laser: LaserParams {
            efficiency: 0.20,
            area: SquareMicrometers::new(0.003),
        },
        modulator: ModulatorParams {
            peak_rate: Gbps::new(59.0),
            serdes_rate: Gbps::new(50.0),
            energy_per_bit: Femtojoules::new(6.8),
            insertion_loss: Decibels::new(1.1),
            extinction_ratio: Decibels::new(17.0),
            area: SquareMicrometers::new(4.0),
            capacitance_ff: 14.0,
            bias_voltage: 0.7,
        },
        detector: DetectorParams {
            rate: Gbps::new(50.0),
            intrinsic_rate: Gbps::new(700.0),
            energy_per_bit: Femtojoules::new(0.14),
            responsivity_a_per_w: 0.1,
            area: SquareMicrometers::new(4.0),
        },
        waveguide: WaveguideParams {
            propagation_loss_db_per_cm: 440.0,
            coupling_loss: Decibels::new(0.63),
            pitch: Micrometers::new(0.5),
            width: Micrometers::new(0.1),
        },
    }
}

/// Table I, "HyPPI" column.
pub fn hyppi_params() -> TechnologyParams {
    TechnologyParams {
        technology: LinkTechnology::Hyppi,
        laser: LaserParams {
            efficiency: 0.20,
            area: SquareMicrometers::new(0.003),
        },
        modulator: ModulatorParams {
            peak_rate: Gbps::new(2100.0),
            serdes_rate: Gbps::new(50.0),
            energy_per_bit: Femtojoules::new(4.25),
            insertion_loss: Decibels::new(0.6),
            extinction_ratio: Decibels::new(12.0),
            area: SquareMicrometers::new(1.0),
            capacitance_ff: 0.94,
            bias_voltage: 2.5, // midpoint of the 2..3 V range
        },
        detector: DetectorParams {
            rate: Gbps::new(50.0),
            intrinsic_rate: Gbps::new(700.0),
            energy_per_bit: Femtojoules::new(0.14),
            responsivity_a_per_w: 0.1,
            area: SquareMicrometers::new(4.0),
        },
        waveguide: WaveguideParams {
            propagation_loss_db_per_cm: 1.0,
            coupling_loss: Decibels::new(1.0),
            pitch: Micrometers::new(1.0),
            width: Micrometers::new(0.35),
        },
    }
}

/// Electrical wire parameters derived from the ITRS 14 nm node, as used by
/// the paper for its electronic baseline (§III-A and §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectronicWireParams {
    /// Wire width (paper §III-B: 160 nm).
    pub wire_width: Micrometers,
    /// Wire pitch: width plus spacing (160 nm + 160 nm).
    pub wire_pitch: Micrometers,
    /// Delay of an optimally repeated wire, ps per millimeter.
    pub delay_ps_per_mm: f64,
    /// Dynamic energy of a repeated wire, fJ per bit per millimeter.
    pub energy_fj_per_bit_mm: f64,
    /// Leakage power of the repeaters, µW per wire per millimeter.
    pub leakage_uw_per_wire_mm: f64,
    /// Signaling rate per wire for the bare-link comparison.
    pub rate_per_wire: Gbps,
    /// Number of parallel wires in the bare-link comparison (one flit wide).
    pub bus_width: u32,
}

/// Default ITRS 14 nm electrical wire parameters.
///
/// Delay and energy follow the standard optimally-repeated-wire results for
/// an intermediate-layer wire at this node (≈60 ps/mm, ≈150 fJ/bit/mm for a
/// full-swing repeated line); the width/pitch come straight from the paper.
pub fn electronic_wire_params() -> ElectronicWireParams {
    ElectronicWireParams {
        wire_width: Micrometers::new(0.16),
        wire_pitch: Micrometers::new(0.32),
        delay_ps_per_mm: 60.0,
        energy_fj_per_bit_mm: 150.0,
        leakage_uw_per_wire_mm: 0.6,
        rate_per_wire: Gbps::new(3.0),
        bus_width: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_transcription_spot_checks() {
        let p = photonic_params();
        assert_eq!(p.modulator.peak_rate.value(), 25.0);
        assert_eq!(p.modulator.energy_per_bit.value(), 2.77);
        assert_eq!(p.waveguide.propagation_loss_db_per_cm, 1.0);
        assert_eq!(p.detector.responsivity_a_per_w, 0.8);
        assert_eq!(p.laser.efficiency, 0.25);

        let s = plasmonic_params();
        assert_eq!(s.modulator.peak_rate.value(), 59.0);
        assert_eq!(s.modulator.serdes_rate.value(), 50.0);
        assert_eq!(s.waveguide.propagation_loss_db_per_cm, 440.0);
        assert_eq!(s.waveguide.coupling_loss.value(), 0.63);

        let h = hyppi_params();
        assert_eq!(h.modulator.peak_rate.value(), 2100.0);
        assert_eq!(h.modulator.serdes_rate.value(), 50.0);
        assert_eq!(h.modulator.insertion_loss.value(), 0.6);
        assert_eq!(h.modulator.area.value(), 1.0);
        assert_eq!(h.modulator.capacitance_ff, 0.94);
        assert_eq!(h.waveguide.pitch.value(), 1.0);
    }

    #[test]
    fn lookup_matches_free_functions() {
        for tech in LinkTechnology::OPTICAL {
            let p = TechnologyParams::for_technology(tech);
            assert_eq!(p.technology, tech);
        }
    }

    #[test]
    #[should_panic(expected = "electronic links")]
    fn electronic_lookup_panics() {
        let _ = TechnologyParams::for_technology(LinkTechnology::Electronic);
    }

    #[test]
    fn propagation_loss_scales_with_length() {
        let wg = hyppi_params().waveguide;
        let l1 = wg.propagation_loss(Micrometers::from_mm(1.0));
        let l2 = wg.propagation_loss(Micrometers::from_mm(2.0));
        assert!((l2.value() - 2.0 * l1.value()).abs() < 1e-12);
        // 1 dB/cm over 1 cm is 1 dB.
        let l = wg.propagation_loss(Micrometers::from_cm(1.0));
        assert!((l.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plasmonic_loss_is_catastrophic_at_mm_scale() {
        let wg = plasmonic_params().waveguide;
        let l = wg.propagation_loss(Micrometers::from_mm(1.0));
        assert!(l.value() > 40.0, "440 dB/cm should give 44 dB/mm");
    }

    #[test]
    fn optical_flags() {
        assert!(!LinkTechnology::Electronic.is_optical());
        assert!(LinkTechnology::Photonic.is_optical());
        assert!(LinkTechnology::Hyppi.is_optical());
        assert_eq!(LinkTechnology::ALL.len(), 4);
        assert_eq!(format!("{}", LinkTechnology::Hyppi), "HyPPI");
    }
}
