//! Optical loss budgets and the laser power equation.
//!
//! Every optical energy estimate in the paper bottoms out in the same
//! physics: light leaves a laser with some wall-plug efficiency, loses power
//! through modulator insertion loss, coupling interfaces, waveguide
//! propagation and (for all-optical NoCs) router traversals, and must arrive
//! at the detector with enough power for the receiver front-end to resolve
//! bits at the line rate. This module implements that chain.

use crate::constants::RECEIVER_UA_PER_GHZ;
use crate::db::db_to_ratio;
use crate::units::{Decibels, Gbps, Micrometers, Milliwatts};

/// An accumulating optical loss budget along a light path.
///
/// Losses are stored as positive dB values; [`total`](Self::total) is their
/// sum and [`transmission`](Self::transmission) the corresponding linear
/// power fraction that survives.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LossBudget {
    entries: Vec<(&'static str, Decibels)>,
}

impl LossBudget {
    /// Starts an empty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named loss contribution (positive dB).
    pub fn add(&mut self, label: &'static str, loss: Decibels) -> &mut Self {
        debug_assert!(
            loss.value() >= 0.0,
            "losses are positive dB, got {loss} for {label}"
        );
        self.entries.push((label, loss));
        self
    }

    /// Adds waveguide propagation loss over `length` at the given dB/cm.
    pub fn add_propagation(
        &mut self,
        label: &'static str,
        db_per_cm: f64,
        length: Micrometers,
    ) -> &mut Self {
        self.add(label, Decibels::new(db_per_cm * length.as_cm()))
    }

    /// Total loss in dB.
    pub fn total(&self) -> Decibels {
        self.entries.iter().map(|&(_, l)| l).sum()
    }

    /// Fraction of optical power that survives the path (0..=1).
    pub fn transmission(&self) -> f64 {
        db_to_ratio(-self.total())
    }

    /// Iterates over the named contributions.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, Decibels)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of contributions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether any contributions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Minimum optical power the receiver needs at the detector, in milliwatts.
///
/// The receiver front-end needs a photocurrent proportional to the signal
/// bandwidth ([`RECEIVER_UA_PER_GHZ`]); dividing by the detector
/// responsivity converts that current requirement into optical power.
#[inline]
pub fn receiver_sensitivity_mw(rate: Gbps, responsivity_a_per_w: f64) -> Milliwatts {
    debug_assert!(responsivity_a_per_w > 0.0);
    // µA = µA/GHz × GHz; mW = µA / (A/W) × 1e-3.
    let required_ua = RECEIVER_UA_PER_GHZ * rate.value();
    Milliwatts::new(required_ua / responsivity_a_per_w * 1e-3)
}

/// Electrical (wall-plug) laser power needed to close a link budget.
///
/// `P_laser = P_receiver / transmission / wall_plug_efficiency`.
#[inline]
pub fn laser_power_mw(
    rate: Gbps,
    responsivity_a_per_w: f64,
    loss: &LossBudget,
    wall_plug_efficiency: f64,
) -> Milliwatts {
    debug_assert!((0.0..=1.0).contains(&wall_plug_efficiency) && wall_plug_efficiency > 0.0);
    let at_detector = receiver_sensitivity_mw(rate, responsivity_a_per_w);
    Milliwatts::new(at_detector.value() / loss.transmission() / wall_plug_efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_is_lossless() {
        let b = LossBudget::new();
        assert!(b.is_empty());
        assert_eq!(b.total().value(), 0.0);
        assert!((b.transmission() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_accumulates() {
        let mut b = LossBudget::new();
        b.add("modulator", Decibels::new(0.6))
            .add("coupling", Decibels::new(1.0))
            .add_propagation("waveguide", 1.0, Micrometers::from_cm(1.4));
        assert_eq!(b.len(), 3);
        assert!((b.total().value() - 3.0).abs() < 1e-12);
        assert!((b.transmission() - 0.501187).abs() < 1e-5);
        let labels: Vec<_> = b.entries().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["modulator", "coupling", "waveguide"]);
    }

    #[test]
    fn sensitivity_scales_with_rate_and_responsivity() {
        // 50 Gb/s at 0.1 A/W: 50 µA / 0.1 = 500 µW = 0.5 mW.
        let s = receiver_sensitivity_mw(Gbps::new(50.0), 0.1);
        assert!((s.value() - 0.5).abs() < 1e-12);
        // Higher responsivity needs proportionally less power.
        let s8 = receiver_sensitivity_mw(Gbps::new(50.0), 0.8);
        assert!((s.value() / s8.value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn laser_power_closes_the_budget() {
        let mut loss = LossBudget::new();
        loss.add("total", Decibels::new(3.0103)); // a factor of 2
        let p = laser_power_mw(Gbps::new(50.0), 0.1, &loss, 0.2);
        // 0.5 mW at detector × 2 loss / 0.2 efficiency = 5 mW.
        assert!((p.value() - 5.0).abs() < 1e-3);
    }

    #[test]
    fn laser_energy_per_bit_is_rate_independent() {
        // P ∝ rate, so P/rate (energy per bit) must not depend on rate.
        let loss = LossBudget::new();
        let e1 = laser_power_mw(Gbps::new(25.0), 0.8, &loss, 0.25).energy_per_bit(Gbps::new(25.0));
        let e2 =
            laser_power_mw(Gbps::new(2100.0), 0.8, &loss, 0.25).energy_per_bit(Gbps::new(2100.0));
        assert!((e1.value() - e2.value()).abs() < 1e-9);
        // Lossless photonic laser floor: 1 µA/GHz / 0.8 A/W / 0.25 = 5 fJ/bit.
        assert!((e1.value() - 5.0).abs() < 1e-9);
    }
}
