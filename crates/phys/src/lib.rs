//! Physical-layer models for the HyPPI NoC reproduction.
//!
//! This crate holds everything the rest of the workspace treats as *given
//! physics*:
//!
//! * strongly-typed unit wrappers ([`units`]) so that decibels, picoseconds
//!   and femtojoules cannot be mixed up silently;
//! * decibel arithmetic and dBm power conversions ([`db`]);
//! * physical constants such as the speed of light and the group index of an
//!   SOI waveguide ([`constants`]);
//! * the device parameter sets of Table I of the paper — photonic, plasmonic
//!   and HyPPI modulators, detectors, lasers and waveguides — plus the
//!   ITRS-derived electrical wire parameters ([`params`]);
//! * optical loss budgets and the laser power equation used for every
//!   optical-link energy estimate in the paper ([`loss`]).
//!
//! Everything downstream (`hyppi-dsent`, `hyppi-optical`, the link-level
//! CLEAR evaluation) builds on these primitives.

pub mod constants;
pub mod db;
pub mod loss;
pub mod params;
pub mod units;

pub use db::{db_to_ratio, dbm_to_mw, mw_to_dbm, ratio_to_db};
pub use loss::{laser_power_mw, LossBudget};
pub use params::{
    electronic_wire_params, hyppi_params, photonic_params, plasmonic_params, DetectorParams,
    ElectronicWireParams, LaserParams, LinkTechnology, ModulatorParams, TechnologyParams,
    WaveguideParams,
};
pub use units::{
    Decibels, Femtojoules, Gbps, Micrometers, Milliwatts, Picoseconds, SquareMicrometers,
};
