//! Physical constants shared by the link and network models.

/// Speed of light in vacuum, in micrometers per picosecond.
pub const SPEED_OF_LIGHT_UM_PER_PS: f64 = 299.792_458;

/// Group index of a silicon-on-insulator (SOI) strip waveguide at 1550 nm.
///
/// Both the photonic and the HyPPI link use conventional SOI waveguides for
/// passive propagation (paper §II), so their time of flight is identical.
pub const SOI_GROUP_INDEX: f64 = 4.2;

/// Effective group index for propagation along a plasmonic metal waveguide.
///
/// Surface plasmon polaritons propagate slightly slower than the SOI mode;
/// the difference is irrelevant at the few-micron distances where plasmonic
/// links are viable, but we keep it distinct for completeness.
pub const PLASMONIC_GROUP_INDEX: f64 = 3.6;

/// Propagation delay of an SOI waveguide, ps per micrometer.
#[inline]
pub fn soi_delay_ps_per_um() -> f64 {
    SOI_GROUP_INDEX / SPEED_OF_LIGHT_UM_PER_PS
}

/// Propagation delay of a plasmonic waveguide, ps per micrometer.
#[inline]
pub fn plasmonic_delay_ps_per_um() -> f64 {
    PLASMONIC_GROUP_INDEX / SPEED_OF_LIGHT_UM_PER_PS
}

/// Required receiver photocurrent per GHz of signal bandwidth, in microamps.
///
/// This is the single free constant of the receiver model: the photocurrent
/// a receiver front-end needs scales with its bandwidth (shot/thermal noise
/// floor). One microamp per gigahertz reproduces the paper's all-optical
/// energy-per-bit projections (≈352 fJ/bit photonic, ≈354 fJ/bit HyPPI,
/// Fig. 8) once combined with the Table I responsivities and laser
/// efficiencies; see `crates/optical`.
pub const RECEIVER_UA_PER_GHZ: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soi_time_of_flight_is_about_14ps_per_mm() {
        let per_mm = soi_delay_ps_per_um() * 1000.0;
        assert!((per_mm - 14.0).abs() < 0.1, "got {per_mm}");
    }

    #[test]
    fn plasmonic_slower_than_vacuum_faster_than_nothing() {
        assert!(plasmonic_delay_ps_per_um() > 1.0 / SPEED_OF_LIGHT_UM_PER_PS);
        assert!(plasmonic_delay_ps_per_um() < soi_delay_ps_per_um());
    }
}
