//! Decibel and dBm conversions.
//!
//! Optical link budgets are naturally expressed in decibels; laser power
//! requirements come out of the budget through the linear ratio. These
//! helpers are the single place in the workspace where the dB ↔ linear
//! conversion happens.

use crate::units::{Decibels, Milliwatts};

/// Converts a loss/gain in dB to the corresponding linear power ratio.
///
/// A positive input is interpreted as a *gain*; loss budgets should negate
/// or use [`LossBudget::transmission`](crate::loss::LossBudget::transmission).
#[inline]
pub fn db_to_ratio(db: Decibels) -> f64 {
    10f64.powf(db.value() / 10.0)
}

/// Converts a linear power ratio to decibels.
#[inline]
pub fn ratio_to_db(ratio: f64) -> Decibels {
    debug_assert!(ratio > 0.0, "dB of a non-positive ratio is undefined");
    Decibels::new(10.0 * ratio.log10())
}

/// Converts power in dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> Milliwatts {
    Milliwatts::new(10f64.powf(dbm / 10.0))
}

/// Converts power in milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: Milliwatts) -> f64 {
    debug_assert!(mw.value() > 0.0, "dBm of non-positive power is undefined");
    10.0 * mw.value().log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_ratio_fixed_points() {
        assert!((db_to_ratio(Decibels::new(0.0)) - 1.0).abs() < 1e-12);
        assert!((db_to_ratio(Decibels::new(3.0103)) - 2.0).abs() < 1e-4);
        assert!((db_to_ratio(Decibels::new(10.0)) - 10.0).abs() < 1e-12);
        assert!((db_to_ratio(Decibels::new(-10.0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn db_roundtrip() {
        for &r in &[0.01, 0.5, 1.0, 2.0, 123.4] {
            let back = db_to_ratio(ratio_to_db(r));
            assert!((back - r).abs() / r < 1e-12);
        }
    }

    #[test]
    fn dbm_fixed_points() {
        assert!((dbm_to_mw(0.0).value() - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0).value() - 10.0).abs() < 1e-12);
        assert!((dbm_to_mw(-30.0).value() - 0.001).abs() < 1e-15);
        assert!((mw_to_dbm(Milliwatts::new(1.0)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn dbm_roundtrip() {
        for &p in &[-20.0, -3.0, 0.0, 7.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(p)) - p).abs() < 1e-12);
        }
    }
}
