//! Checkpoint/restore parity: running `N` cycles must equal running to
//! cycle `c`, snapshotting, restoring, and running the remainder —
//! **bit-for-bit** in `SimStats` (latency histograms included) — on
//! `Simulator`, `ShardedSimulator`, and `ReferenceSimulator`, across
//! open/closed-loop, express, faulted, and shard-cut cells, including
//! re-partitioned restores (P=4 snapshot resumed at P=1 and back).
//!
//! Because all three engines are already pinned bit-for-bit against each
//! other (`tests/parity.rs`, `tests/shard_parity.rs`), these fixtures
//! make snapshot equality transitive: any divergence in what the
//! snapshot captures — arbitration pointers, credit state, wormhole
//! remaps, RNG position — shows up as a statistics diff.
//!
//! The property block at the bottom additionally splices random cells at
//! random cycles and audits per-cycle flit conservation across the
//! splice (injected = delivered + in-network, every cycle) on a
//! manually-stepped restored engine.

mod common;

use common::cells::{self, fixture_trace, uniform_matrix};
use hyppi_netsim::reference::ReferenceSimulator;
use hyppi_netsim::snapshot::{Snapshot, SnapshotError};
use hyppi_netsim::{RunOutcome, ShardedSimulator, SimConfig, SimError, SimStats, Simulator};
use hyppi_phys::LinkTechnology;
use hyppi_topology::{
    express_mesh, ExpressSpec, FaultSpec, MeshSpec, NodeId, RoutingTable, ShardSpec, Topology,
};
use hyppi_traffic::{Trace, TraceEvent};
use proptest::prelude::*;

fn small_mesh(w: u16, h: u16) -> Topology {
    cells::plain_mesh(w, h)
}

fn express8(span: u16) -> Topology {
    cells::express(8, 8, span)
}

/// Split cycles every fixture is spliced at: mid-warmup, dense traffic,
/// and deep into the run (possibly inside an idle fast-forward gap).
const SPLITS: [u64; 4] = [1, 57, 300, 2048];

/// The unified cell catalog (`tests/common/cells.rs`): every cell's P=1
/// whole run must equal its spliced run (pause + snapshot + resume) at
/// every split, and the sharded engine's spliced run — windowed on the
/// all-optical cells, per-cycle elsewhere — must match too.
#[test]
fn catalog_splices_match_whole_runs() {
    for cell in cells::catalog() {
        let whole = cell.run_single();
        for split in [57u64, 300] {
            let spliced = cell.run_single_spliced(split);
            assert_eq!(spliced, whole, "{}: P=1 splice at {split}", cell.name);
            let sharded = cell.run_sharded_spliced(ShardSpec { sx: 2, sy: 1 }, 0, 0, split);
            assert_eq!(sharded, whole, "{}: sharded splice at {split}", cell.name);
        }
    }
}

/// P=1 splice: whole run == run-until + resume, for every split.
fn assert_trace_splice(topo: &Topology, cfg: SimConfig, trace: &Trace, label: &str) -> SimStats {
    let routes = RoutingTable::compute_xy(topo);
    let whole = Simulator::new(topo, &routes, cfg)
        .run_trace(trace)
        .expect("whole run completes");
    for split in SPLITS {
        let spliced = match Simulator::new(topo, &routes, cfg)
            .run_trace_until(trace, split)
            .expect("bounded run completes")
        {
            RunOutcome::Finished(stats) => stats,
            RunOutcome::Paused(snap) => {
                assert_eq!(snap.now(), split, "{label}: pause boundary");
                Simulator::new(topo, &routes, cfg)
                    .resume_trace(&snap, trace)
                    .expect("resumed run completes")
            }
        };
        assert_eq!(spliced, whole, "{label}: split at {split}");
    }
    whole
}

fn assert_synthetic_splice(
    topo: &Topology,
    cfg: SimConfig,
    rate: f64,
    warmup: u64,
    measure: u64,
    seed: u64,
    label: &str,
) -> SimStats {
    let routes = RoutingTable::compute_xy(topo);
    let m = uniform_matrix(topo, rate);
    let whole = Simulator::new(topo, &routes, cfg)
        .run_synthetic(&m, warmup, measure, seed)
        .expect("whole run completes");
    for split in SPLITS {
        let spliced = match Simulator::new(topo, &routes, cfg)
            .run_synthetic_until(&m, warmup, measure, seed, split)
            .expect("bounded run completes")
        {
            RunOutcome::Finished(stats) => stats,
            RunOutcome::Paused(snap) => Simulator::new(topo, &routes, cfg)
                .resume_synthetic(&snap, &m, warmup, measure, seed)
                .expect("resumed run completes"),
        };
        assert_eq!(spliced, whole, "{label}: split at {split}");
    }
    whole
}

#[test]
fn trace_splice_plain_8x8() {
    let topo = small_mesh(8, 8);
    for seed in [1u64, 42] {
        let trace = fixture_trace(&topo, seed, 400);
        assert_trace_splice(
            &topo,
            SimConfig::paper(),
            &trace,
            &format!("plain 8x8, seed {seed}"),
        );
    }
}

#[test]
fn trace_splice_express_span3() {
    // Dateline VC classes mid-flight at the split: restored packets must
    // keep their (pre/post)-dateline class or VC allocation diverges.
    let topo = express8(3);
    let trace = fixture_trace(&topo, 7, 400);
    assert_trace_splice(&topo, SimConfig::paper(), &trace, "express x3 8x8");
}

#[test]
fn trace_splice_closed_loop() {
    // Closed-loop window state (outstanding counts, parked sources)
    // across the splice.
    let topo = small_mesh(8, 8);
    let trace = fixture_trace(&topo, 99, 400);
    assert_trace_splice(
        &topo,
        SimConfig::paper_closed_loop(2),
        &trace,
        "closed-loop 8x8, window 2",
    );
}

#[test]
fn trace_splice_faulted() {
    // Faults + baseline: the plan fingerprint covers the faulted
    // topology and routes, and `rerouted_hops` accounting must survive
    // the splice.
    let healthy = small_mesh(8, 8);
    let healthy_routes = RoutingTable::compute_xy(&healthy);
    let spec = FaultSpec::none()
        .dead_link(NodeId(3 * 8 + 3), NodeId(3 * 8 + 4))
        .degraded_span(NodeId(5 * 8 + 3), NodeId(5 * 8 + 4))
        .dead_router(NodeId(6 * 8 + 1));
    let topo = spec.apply(&healthy);
    let routes = RoutingTable::compute_xy_avoiding(&topo).expect("routable");
    let cfg = SimConfig::paper();
    let trace = fixture_trace(&healthy, 17, 400);
    let whole = Simulator::new(&topo, &routes, cfg)
        .with_baseline(&healthy, &healthy_routes)
        .run_trace(&trace)
        .expect("whole run completes");
    assert!(whole.rerouted_hops > 0, "faults never forced a detour");
    for split in SPLITS {
        let spliced = match Simulator::new(&topo, &routes, cfg)
            .with_baseline(&healthy, &healthy_routes)
            .run_trace_until(&trace, split)
            .expect("bounded run completes")
        {
            RunOutcome::Finished(stats) => stats,
            RunOutcome::Paused(snap) => Simulator::new(&topo, &routes, cfg)
                .with_baseline(&healthy, &healthy_routes)
                .resume_trace(&snap, &trace)
                .expect("resumed run completes"),
        };
        assert_eq!(spliced, whole, "faulted splice at {split}");
    }
}

#[test]
fn synthetic_splice_open_and_closed_loop() {
    let topo = small_mesh(8, 8);
    assert_synthetic_splice(
        &topo,
        SimConfig::paper(),
        0.10,
        150,
        500,
        5,
        "open-loop 8x8",
    );
    assert_synthetic_splice(
        &topo,
        SimConfig::paper_closed_loop(4),
        0.25,
        150,
        500,
        13,
        "closed-loop 8x8, window 4",
    );
}

/// Sharded splice matrix: snapshot under one shard grid, restore under
/// another (including P=1 both ways), sequential and threaded.
#[test]
fn sharded_repartition_splice() {
    let topo = small_mesh(8, 8);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    let trace = fixture_trace(&topo, 4242, 500);
    let whole = Simulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("whole run completes");
    let grids = [
        ShardSpec { sx: 2, sy: 1 },
        ShardSpec { sx: 2, sy: 2 },
        ShardSpec { sx: 4, sy: 2 },
    ];
    for split in [57u64, 300] {
        // Snapshots taken at P=1 and at each grid…
        let mut snaps: Vec<(String, Snapshot)> = Vec::new();
        snaps.push((
            "P=1".into(),
            Simulator::new(&topo, &routes, cfg)
                .run_trace_until(&trace, split)
                .expect("bounded run completes")
                .expect_paused(),
        ));
        for grid in grids {
            for threads in [1usize, 0] {
                let snap = ShardedSimulator::new(&topo, &routes, cfg, grid)
                    .with_threads(threads)
                    .run_trace_until(&trace, split)
                    .expect("bounded run completes")
                    .expect_paused();
                snaps.push((format!("{}x{} t{threads}", grid.sx, grid.sy), snap));
            }
        }
        // …must all be byte-identical (the format is partition-
        // independent and the engines are lockstep)…
        for (label, snap) in &snaps[1..] {
            assert_eq!(
                snap.bytes(),
                snaps[0].1.bytes(),
                "snapshot bytes diverge at split {split}: {label} vs P=1"
            );
        }
        // …and resume to the whole-run statistics under every engine.
        let (_, snap) = &snaps[0];
        let resumed = Simulator::new(&topo, &routes, cfg)
            .resume_trace(snap, &trace)
            .expect("P=1 resume completes");
        assert_eq!(resumed, whole, "P=1 resume at {split}");
        for grid in grids {
            for threads in [1usize, 0] {
                let resumed = ShardedSimulator::new(&topo, &routes, cfg, grid)
                    .with_threads(threads)
                    .resume_trace(snap, &trace)
                    .expect("sharded resume completes");
                assert_eq!(
                    resumed, whole,
                    "grid {}x{} t{threads} resume at {split}",
                    grid.sx, grid.sy
                );
            }
        }
    }
}

/// The acceptance-criteria cell spelled out: a P=4 (quadrants) snapshot
/// restored and finished at P=1, and a P=1 snapshot finished at P=4, on
/// a closed-loop synthetic workload crossing every shard cut.
#[test]
fn p4_snapshot_restores_at_p1_and_back() {
    let topo = small_mesh(8, 8);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper_closed_loop(4);
    let m = uniform_matrix(&topo, 0.25);
    let (warmup, measure, seed) = (150u64, 500u64, 23u64);
    let whole = Simulator::new(&topo, &routes, cfg)
        .run_synthetic(&m, warmup, measure, seed)
        .expect("whole run completes");
    let split = 200u64;
    let p4 = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec::quadrants())
        .run_synthetic_until(&m, warmup, measure, seed, split)
        .expect("bounded run completes")
        .expect_paused();
    let at_p1 = Simulator::new(&topo, &routes, cfg)
        .resume_synthetic(&p4, &m, warmup, measure, seed)
        .expect("P=1 resume completes");
    assert_eq!(at_p1, whole, "P=4 snapshot resumed at P=1");
    let p1 = Simulator::new(&topo, &routes, cfg)
        .run_synthetic_until(&m, warmup, measure, seed, split)
        .expect("bounded run completes")
        .expect_paused();
    let at_p4 = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec::quadrants())
        .resume_synthetic(&p1, &m, warmup, measure, seed)
        .expect("P=4 resume completes");
    assert_eq!(at_p4, whole, "P=1 snapshot resumed at P=4");
}

/// Reference-engine splice: the frozen oracle carries the mirror
/// implementation, and its snapshots interchange with the production
/// engines' (logical content equality — the oracle proves the format
/// captures engine-independent state).
#[test]
fn reference_splice_and_cross_engine_restore() {
    let topo = small_mesh(8, 8);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    let trace = fixture_trace(&topo, 77, 400);
    let whole = ReferenceSimulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("whole run completes");
    for split in SPLITS {
        let spliced = match ReferenceSimulator::new(&topo, &routes, cfg)
            .run_trace_until(&trace, split)
            .expect("bounded run completes")
        {
            RunOutcome::Finished(stats) => stats,
            RunOutcome::Paused(snap) => {
                // Cross-engine: the oracle's snapshot resumes on the
                // production engine, and vice versa, to the same stats.
                let on_fast = Simulator::new(&topo, &routes, cfg)
                    .resume_trace(&snap, &trace)
                    .expect("production resume completes");
                assert_eq!(on_fast, whole, "reference snapshot on Simulator at {split}");
                let fast_snap = Simulator::new(&topo, &routes, cfg)
                    .run_trace_until(&trace, split)
                    .expect("bounded run completes")
                    .expect_paused();
                let on_ref = ReferenceSimulator::new(&topo, &routes, cfg)
                    .resume_trace(&fast_snap, &trace)
                    .expect("reference resume completes");
                assert_eq!(on_ref, whole, "Simulator snapshot on reference at {split}");
                ReferenceSimulator::new(&topo, &routes, cfg)
                    .resume_trace(&snap, &trace)
                    .expect("reference resume completes")
            }
        };
        assert_eq!(spliced, whole, "reference splice at {split}");
    }
}

#[test]
fn reference_synthetic_splice_closed_loop_express() {
    let topo = express8(3);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper_closed_loop(4);
    let m = uniform_matrix(&topo, 0.20);
    let (warmup, measure, seed) = (150u64, 400u64, 31u64);
    let whole = ReferenceSimulator::new(&topo, &routes, cfg)
        .run_synthetic(&m, warmup, measure, seed)
        .expect("whole run completes");
    for split in [57u64, 300] {
        let snap = ReferenceSimulator::new(&topo, &routes, cfg)
            .run_synthetic_until(&m, warmup, measure, seed, split)
            .expect("bounded run completes")
            .expect_paused();
        let spliced = ReferenceSimulator::new(&topo, &routes, cfg)
            .resume_synthetic(&snap, &m, warmup, measure, seed)
            .expect("resumed run completes");
        assert_eq!(spliced, whole, "reference synthetic splice at {split}");
        let cross = Simulator::new(&topo, &routes, cfg)
            .resume_synthetic(&snap, &m, warmup, measure, seed)
            .expect("cross resume completes");
        assert_eq!(cross, whole, "cross-engine synthetic splice at {split}");
    }
}

// ---- error handling -----------------------------------------------------

#[test]
fn restore_rejects_mismatches() {
    let topo = small_mesh(8, 8);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    let trace = fixture_trace(&topo, 1, 300);
    let snap = Simulator::new(&topo, &routes, cfg)
        .run_trace_until(&trace, 57)
        .expect("bounded run completes")
        .expect_paused();

    // Wrong configuration → plan fingerprint mismatch.
    let other_cfg = SimConfig {
        vcs: 2,
        ..SimConfig::paper()
    };
    let err = Simulator::new(&topo, &routes, other_cfg)
        .resume_trace(&snap, &trace)
        .expect_err("vcs=2 plan must reject");
    assert_eq!(err, SimError::Snapshot(SnapshotError::PlanMismatch));

    // Wrong topology → plan fingerprint mismatch.
    let other_topo = small_mesh(4, 4);
    let other_routes = RoutingTable::compute_xy(&other_topo);
    let err = Simulator::new(&other_topo, &other_routes, cfg)
        .resume_trace(&snap, &fixture_trace(&other_topo, 1, 50))
        .expect_err("4x4 plan must reject");
    assert_eq!(err, SimError::Snapshot(SnapshotError::PlanMismatch));

    // Different trace → workload fingerprint mismatch.
    let other_trace = fixture_trace(&topo, 2, 300);
    let err = Simulator::new(&topo, &routes, cfg)
        .resume_trace(&snap, &other_trace)
        .expect_err("different trace must reject");
    assert_eq!(err, SimError::Snapshot(SnapshotError::WorkloadMismatch));

    // Truncated body: the header parses, decode rejects.
    let bytes = snap.bytes();
    let cut = Snapshot::from_bytes(bytes[..bytes.len() - 3].to_vec())
        .expect("header is intact, construction succeeds");
    let err = Simulator::new(&topo, &routes, cfg)
        .resume_trace(&cut, &trace)
        .expect_err("truncated snapshot must reject");
    assert_eq!(err, SimError::Snapshot(SnapshotError::Truncated));

    // Damaged magic is rejected at construction.
    let mut bad = bytes.to_vec();
    bad[0] ^= 0xFF;
    let err = Snapshot::from_bytes(bad).expect_err("bad magic must reject");
    assert_eq!(err, SnapshotError::BadMagic);

    // Unknown version is rejected at construction.
    let mut newer = bytes.to_vec();
    newer[8] = 0xFE;
    let err = Snapshot::from_bytes(newer).expect_err("future version must reject");
    assert_eq!(err, SnapshotError::BadVersion { found: 0xFE });
}

/// A manual-stepping snapshot (no workload pinned) resumes under any
/// workload: the trace cursor is rebuilt by scanning.
#[test]
fn manual_snapshot_resumes_into_trace_run() {
    let topo = small_mesh(4, 4);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    // Whole run: two packets admitted at cycle 0, two more at cycle 40.
    let mk_events = || {
        vec![
            TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(15),
                flits: 32,
            },
            TraceEvent {
                cycle: 0,
                src: NodeId(5),
                dst: NodeId(10),
                flits: 1,
            },
            TraceEvent {
                cycle: 40,
                src: NodeId(15),
                dst: NodeId(0),
                flits: 32,
            },
            TraceEvent {
                cycle: 40,
                src: NodeId(3),
                dst: NodeId(12),
                flits: 1,
            },
        ]
    };
    let trace = Trace::new("manual", 16, 0.0, mk_events());
    let whole = Simulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("whole run completes");
    // Manually step through the first 20 cycles (admitting as the run
    // loop would), snapshot, then hand off to `resume_trace`.
    let mut sim = Simulator::new(&topo, &routes, cfg);
    let mut events = mk_events();
    events.retain(|e| {
        if e.cycle < 20 {
            sim.admit(e.src, e.dst, e.flits, e.cycle);
        }
        e.cycle >= 20
    });
    for now in 0..20 {
        sim.step(now);
    }
    let snap = sim.snapshot(20);
    assert_eq!(snap.now(), 20);
    let resumed = Simulator::new(&topo, &routes, cfg)
        .resume_trace(&snap, &trace)
        .expect("resumed run completes");
    assert_eq!(resumed, whole);
}

// ---- property: random cells, random splits, flit conservation -----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (topology, pattern, window, faults, split): splice parity
    /// on all three engines plus a per-cycle flit-conservation audit of
    /// the restored state (injected = delivered + in-network at every
    /// cycle boundary after the splice).
    #[test]
    fn random_cell_splices_cleanly(
        (w, h) in prop_oneof![Just((6u16, 6u16)), Just((8, 4)), Just((8, 8))],
        express_span in prop_oneof![Just(0u16), Just(3)],
        window in prop_oneof![Just(0usize), Just(2), Just(8)],
        faulted in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1000,
        split in 1u64..900,
    ) {
        let healthy = if express_span > 0 {
            express_mesh(
                MeshSpec {
                    width: w,
                    height: h,
                    core_spacing_mm: 1.0,
                    base_tech: LinkTechnology::Electronic,
                    capacity: hyppi_phys::Gbps::new(50.0),
                },
                ExpressSpec { span: express_span, tech: LinkTechnology::Hyppi },
            )
        } else {
            small_mesh(w, h)
        };
        let topo = if faulted {
            FaultSpec::none()
                .dead_link(NodeId(1), NodeId(2))
                .degraded_span(NodeId(w), NodeId(w + 1))
                .apply(&healthy)
        } else {
            healthy.clone()
        };
        let routes = if faulted {
            RoutingTable::compute_xy_avoiding(&topo).expect("routable")
        } else {
            RoutingTable::compute_xy(&topo)
        };
        let cfg = if window == 0 {
            SimConfig::paper()
        } else {
            SimConfig::paper_closed_loop(window)
        };
        let trace = fixture_trace(&topo, seed, 250);

        let whole = Simulator::new(&topo, &routes, cfg)
            .run_trace(&trace)
            .expect("whole run completes");

        // Production splice.
        let outcome = Simulator::new(&topo, &routes, cfg)
            .run_trace_until(&trace, split)
            .expect("bounded run completes");
        let snap = match outcome {
            RunOutcome::Finished(stats) => {
                prop_assert_eq!(stats, whole);
                return Ok(());
            }
            RunOutcome::Paused(snap) => snap,
        };
        let resumed = Simulator::new(&topo, &routes, cfg)
            .resume_trace(&snap, &trace)
            .expect("resumed run completes");
        prop_assert_eq!(&resumed, &whole);

        // Sharded restore of the same snapshot.
        let sharded = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec { sx: 2, sy: 1 })
            .resume_trace(&snap, &trace)
            .expect("sharded resume completes");
        prop_assert_eq!(&sharded, &whole);

        // Reference-engine restore of the same snapshot.
        let reference = ReferenceSimulator::new(&topo, &routes, cfg)
            .resume_trace(&snap, &trace)
            .expect("reference resume completes");
        prop_assert_eq!(&reference, &whole);

        // Conservation audit across the splice: restore into a manually
        // stepped engine and check the flit ledger every cycle while
        // feeding it the trace's remaining events.
        let mut sim = Simulator::new(&topo, &routes, cfg)
            .restore(&snap)
            .expect("manual restore");
        let mut pending: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.cycle >= split)
            .cloned()
            .collect();
        let audit_until = split + 400;
        let mut next = 0usize;
        for now in split..audit_until {
            while next < pending.len() && pending[next].cycle <= now {
                let e = pending[next];
                sim.admit(e.src, e.dst, e.flits, now);
                next += 1;
            }
            sim.step(now);
            let s = sim.stats();
            prop_assert!(
                s.flits_injected == s.flits_delivered + sim.in_network_flits(),
                "conservation broke at cycle {now}: injected {} != delivered {} + in-network {}",
                s.flits_injected,
                s.flits_delivered,
                sim.in_network_flits()
            );
        }
        pending.clear();
    }
}
