//! Telemetry never perturbs the parity oracle.
//!
//! The probe hooks threaded through the active engine observe state but
//! must not change it: a run with the full [`FlightRecorder`] attached
//! (metrics sampler + packet tracer) has to produce `SimStats`
//! **bit-for-bit identical** to the same run with the zero-cost
//! [`NoopProbe`] — across open and closed-loop configs, express
//! topologies, faulted meshes, and both the single-shard and the
//! sharded engine (whose probed runs are forced single-worker).
//!
//! The probes are also sanity-checked for liveness: a run that delivers
//! packets must produce inject/eject events and non-empty samples, so a
//! silently disconnected hook can't fake a parity pass.

mod common;

use common::cells;
use hyppi_netsim::telemetry::PacketEventKind;
use hyppi_netsim::{FlightRecorder, ShardedSimulator, SimConfig, Simulator};
use hyppi_phys::{Gbps, LinkTechnology};
use hyppi_topology::{
    express_mesh, ExpressSpec, FaultSpec, MeshSpec, NodeId, RoutingTable, ShardSpec, Topology,
};
use hyppi_traffic::SyntheticPattern;
use proptest::prelude::*;

fn grid(w: u16, h: u16) -> Topology {
    cells::plain_mesh(w, h)
}

/// The unified cell catalog (`tests/common/cells.rs`): a fully-probed
/// run of every cell must equal the plain run bit-for-bit, on the P=1
/// engine and on the sharded engine (probed runs are single-worker and
/// per-cycle — windows would batch what the probe observes, so the
/// windowed cells also pin the probe-forces-classic dispatch).
#[test]
fn catalog_probed_runs_match_plain() {
    for cell in cells::catalog() {
        let plain = cell.run_single();
        let (probed, rec) = cell.run_single_probed();
        assert_eq!(probed, plain, "{}: probed P=1 diverged", cell.name);
        if plain.all.count > 0 {
            let sampler = rec.sampler.as_ref().expect("sampler attached");
            assert!(!sampler.samples().is_empty(), "{}: no samples", cell.name);
        }
        let (sharded, _) = cell.run_sharded_probed(ShardSpec { sx: 2, sy: 1 });
        assert_eq!(sharded, plain, "{}: probed sharded diverged", cell.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// NoopProbe run == all-probes-attached run, bit for bit, on both
    /// engines, across open/closed-loop × express × faulted cells.
    #[test]
    fn probed_run_stats_are_bit_identical(
        (w, h) in (4u16..=6, 3u16..=5),
        express in prop_oneof![Just(false), Just(true)],
        faulted in prop_oneof![Just(false), Just(true)],
        window in prop_oneof![Just(0usize), Just(2), Just(8)],
        rate in 0.02f64..0.20,
        seed in 0u64..1000,
    ) {
        let healthy = if express {
            express_mesh(
                MeshSpec {
                    width: w,
                    height: h,
                    core_spacing_mm: 1.0,
                    base_tech: LinkTechnology::Electronic,
                    capacity: Gbps::new(50.0),
                },
                ExpressSpec { span: 3, tech: LinkTechnology::Hyppi },
            )
        } else {
            grid(w, h)
        };
        let topo = if faulted {
            FaultSpec::none()
                .dead_link(NodeId(1), NodeId(2))
                .degraded_span(NodeId(w), NodeId(w + 1))
                .apply(&healthy)
        } else {
            healthy.clone()
        };
        let routes = if faulted {
            RoutingTable::compute_xy_avoiding(&topo).expect("routable")
        } else {
            RoutingTable::compute_xy(&topo)
        };
        let cfg = if window == 0 {
            SimConfig::paper()
        } else {
            SimConfig::paper_closed_loop(window)
        };
        let m = SyntheticPattern::Uniform.matrix(&topo, rate);
        let (warmup, measure) = (100, 400);

        // Single-shard engine: plain vs fully probed.
        let plain = Simulator::new(&topo, &routes, cfg)
            .run_synthetic(&m, warmup, measure, seed)
            .expect("plain run completes");
        let mut rec = FlightRecorder::new().with_metrics(50).with_trace(100_000);
        let probed = Simulator::new(&topo, &routes, cfg)
            .run_synthetic_probed(&m, warmup, measure, seed, &mut rec)
            .expect("probed run completes");
        prop_assert_eq!(&probed, &plain);

        // Probe liveness: delivered packets must leave a trail. (The
        // sampler flushes on interval boundaries, so the final partial
        // interval is not in the sum — bound it, don't equate it.)
        if plain.all.count > 0 {
            let sampler = rec.sampler.as_ref().expect("sampler attached");
            prop_assert!(!sampler.samples().is_empty());
            let injected: u64 = sampler.samples().iter().map(|s| s.injected).sum();
            prop_assert!(injected > 0 && injected <= plain.flits_injected);
            let delivered: u64 = sampler.samples().iter().map(|s| s.delivered).sum();
            prop_assert!(delivered <= plain.flits_delivered);
            let tracer = rec.tracer.as_ref().expect("tracer attached");
            prop_assert!(
                tracer.events().any(|e| e.kind == PacketEventKind::Inject)
            );
            prop_assert!(
                tracer.events().any(|e| e.kind == PacketEventKind::Eject)
            );
        }

        // Sharded engine (its probed runs force a single worker): the
        // same bit-for-bit contract, and sharded probed == P=1 plain.
        let mut rec2 = FlightRecorder::new().with_metrics(50).with_trace(100_000);
        let sharded_probed =
            ShardedSimulator::new(&topo, &routes, cfg, ShardSpec { sx: 2, sy: 1 })
                .run_synthetic_probed(&m, warmup, measure, seed, &mut rec2)
                .expect("sharded probed run completes");
        prop_assert_eq!(&sharded_probed, &plain);

        // The sharded run's sampler sees the same traffic (modulo the
        // unflushed final partial interval).
        if plain.all.count > 0 {
            let sampler = rec2.sampler.as_ref().expect("sampler attached");
            let injected: u64 = sampler.samples().iter().map(|s| s.injected).sum();
            prop_assert!(injected > 0 && injected <= plain.flits_injected);
        }
    }
}

/// Engine self-profiling accounts the superstep phases without touching
/// statistics, including on multi-worker runs.
#[test]
fn profiled_run_matches_plain_and_accounts_phases() {
    let topo = grid(8, 8);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    let m = SyntheticPattern::Uniform.matrix(&topo, 0.10);
    let plain = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec::quadrants())
        .run_synthetic(&m, 100, 400, 7)
        .expect("plain run completes");
    let (profiled, prof) = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec::quadrants())
        .run_synthetic_profiled(&m, 100, 400, 7)
        .expect("profiled run completes");
    assert_eq!(profiled, plain);
    assert_eq!(prof.workers, 4);
    assert!(prof.supersteps > 0);
    // Phases were actually timed: a 500+ cycle 4-shard run cannot take
    // zero accounted nanoseconds.
    assert!(prof.total_ns() > 0);
    // Barriers exist on a multi-shard run.
    assert!(prof.barrier_ns > 0);
    let f = prof.fraction(prof.step_ns)
        + prof.fraction(prof.exchange_ns)
        + prof.fraction(prof.barrier_ns);
    assert!((f - 1.0).abs() < 1e-9);
}
