//! Sharded-engine parity: `ShardedSimulator` must reproduce the P=1
//! `Simulator`'s `SimStats` **bit-for-bit** — same latency histograms,
//! same per-link utilization, same cycle counts — on 16×16 cells across
//! seeds × {plain mesh, express mesh with dateline VCs} × {trace,
//! synthetic, saturation}. Combined with `tests/parity.rs` (P=1 vs the
//! frozen seed engine) this transitively pins the sharded engine to the
//! seed semantics.
//!
//! Every fixture runs both sequentially (`threads = 1`, full mailbox
//! protocol on one thread) and threaded, so scheduler nondeterminism has
//! a dedicated pin, not just the protocol.

mod common;

use common::cells::{self, express, fixture_trace, uniform_matrix, GRIDS};
use hyppi_netsim::{ShardedSimulator, SimConfig, SimStats, Simulator};
use hyppi_phys::LinkTechnology;
use hyppi_topology::{mesh, FaultSpec, MeshSpec, NodeId, RoutingTable, ShardSpec, Topology};
use hyppi_traffic::{Trace, TraceEvent};

fn paper_mesh() -> Topology {
    mesh(MeshSpec::paper(LinkTechnology::Electronic))
}

fn paper_express(span: u16) -> Topology {
    express(16, 16, span)
}

/// The unified cell catalog (`tests/common/cells.rs`) under per-cycle
/// exchanges (`with_lookahead(1)`): every cell × every grid must equal
/// P=1 bit-for-bit. The windowed protocol over the same catalog is
/// pinned by `tests/lookahead_parity.rs`; this suite owns the classic
/// mailbox protocol plus the 16×16 paper-mesh fixtures below.
#[test]
fn catalog_per_cycle_matches_p1_on_all_grids() {
    for cell in cells::catalog() {
        let single = cell.run_single();
        for grid in GRIDS {
            let sharded = cell.run_sharded(grid, 0, 1);
            assert_eq!(
                sharded, single,
                "catalog cell diverged: {}, grid {}x{}",
                cell.name, grid.sx, grid.sy
            );
        }
    }
}

fn assert_trace_parity(topo: &Topology, trace: &Trace, label: &str) {
    let routes = RoutingTable::compute_xy(topo);
    let cfg = SimConfig::paper();
    let single: SimStats = Simulator::new(topo, &routes, cfg)
        .run_trace(trace)
        .expect("single-shard engine completes");
    for spec in GRIDS {
        for threads in [1, 0] {
            let sharded = ShardedSimulator::new(topo, &routes, cfg, spec)
                .with_threads(threads)
                .run_trace(trace)
                .expect("sharded engine completes");
            assert_eq!(
                sharded, single,
                "trace parity diverged: {label}, grid {}x{}, threads {threads}",
                spec.sx, spec.sy
            );
        }
    }
}

fn assert_synthetic_parity_cfg(
    topo: &Topology,
    rate: f64,
    seed: u64,
    cfg: SimConfig,
    label: &str,
) -> SimStats {
    let routes = RoutingTable::compute_xy(topo);
    let m = uniform_matrix(topo, rate);
    let single = Simulator::new(topo, &routes, cfg)
        .run_synthetic(&m, 150, 500, seed)
        .expect("single-shard engine completes");
    for spec in GRIDS {
        for threads in [1, 0] {
            let sharded = ShardedSimulator::new(topo, &routes, cfg, spec)
                .with_threads(threads)
                .run_synthetic(&m, 150, 500, seed)
                .expect("sharded engine completes");
            assert_eq!(
                sharded, single,
                "synthetic parity diverged: {label}, grid {}x{}, threads {threads}",
                spec.sx, spec.sy
            );
        }
    }
    // Derived tail statistics ride the histograms; spell them out so an
    // estimator change is caught against the P=1 data too.
    assert!(single.all.histogram.iter().sum::<u64>() == single.all.count);
    single
}

fn assert_synthetic_parity(topo: &Topology, rate: f64, seed: u64, label: &str) {
    assert_synthetic_parity_cfg(topo, rate, seed, SimConfig::paper(), label);
}

#[test]
fn trace_parity_16x16_plain_mesh() {
    let topo = paper_mesh();
    for seed in [1u64, 42] {
        let trace = fixture_trace(&topo, seed, 700);
        assert_trace_parity(&topo, &trace, &format!("plain 16x16, seed {seed}"));
    }
}

#[test]
fn trace_parity_16x16_express_span5() {
    // Dateline VC classes in force, 2-cycle optical links in the
    // calendar, express links crossing the vertical shard cuts.
    let topo = paper_express(5);
    for seed in [7u64, 1234] {
        let trace = fixture_trace(&topo, seed, 700);
        assert_trace_parity(&topo, &trace, &format!("express x5 16x16, seed {seed}"));
    }
}

#[test]
fn trace_parity_16x16_express_span15() {
    // Span 15 "ring wrap": express links leap across every column cut,
    // including non-adjacent shard tiles of the 4×2 grid.
    let topo = paper_express(15);
    let trace = fixture_trace(&topo, 99, 500);
    assert_trace_parity(&topo, &trace, "express x15 16x16, seed 99");
}

#[test]
fn synthetic_parity_16x16_both_topologies() {
    let plain = paper_mesh();
    let xpress = paper_express(5);
    for seed in [5u64, 2718] {
        assert_synthetic_parity(&plain, 0.06, seed, &format!("plain 16x16, seed {seed}"));
        assert_synthetic_parity(
            &xpress,
            0.06,
            seed,
            &format!("express x5 16x16, seed {seed}"),
        );
    }
}

#[test]
fn saturation_parity_16x16() {
    // A rate past the uniform saturation knee (~0.247): heavy VC/switch
    // contention with parked sources and boundary credit backpressure —
    // the hardest regime for exchange-timing bugs.
    let topo = paper_mesh();
    assert_synthetic_parity(&topo, 0.32, 11, "plain 16x16 saturated");
}

#[test]
fn saturation_burst_trace_parity_16x16() {
    // All-to-all wormhole burst on the paper mesh: every arbitration
    // path exercised under full buffers.
    let topo = paper_mesh();
    let n = topo.num_nodes() as u16;
    let mut events = Vec::new();
    for s in 0..n {
        for k in 1..8u16 {
            events.push(TraceEvent {
                cycle: u64::from(k) * 4,
                src: NodeId(s),
                dst: NodeId((s + k * 37) % n),
                flits: if k % 2 == 0 { 32 } else { 1 },
            });
        }
    }
    let trace = Trace::new("saturation burst", n, 0.0, events);
    assert_trace_parity(&topo, &trace, "16x16 all-to-all burst");
}

/// Closed-loop cells, windows 1, 4 and 16: ejections in one shard must
/// return source credits to NICs in *any* other shard through the
/// mailbox grid (the all-pairs adjacency closed-loop plans switch on),
/// with next-cycle visibility identical to the P=1 in-shard decrement.
/// Rate 0.30 keeps windows full and sources parked; every grid × both
/// execution modes must stay bit-for-bit.
#[test]
fn closed_loop_synthetic_parity_windows() {
    let topo = paper_mesh();
    for window in [1usize, 4, 16] {
        let stats = assert_synthetic_parity_cfg(
            &topo,
            0.30,
            13 + window as u64,
            SimConfig::paper_closed_loop(window),
            &format!("plain 16x16 closed loop, window {window}"),
        );
        let peak = stats.peak_outstanding.iter().max().copied().unwrap_or(0);
        assert_eq!(peak as usize, window, "window never filled");
    }
}

/// Closed-loop on the express mesh: source credits and the dateline VC
/// discipline interact across express links that leap over shard cuts.
#[test]
fn closed_loop_express_parity() {
    let topo = paper_express(5);
    assert_synthetic_parity_cfg(
        &topo,
        0.25,
        7,
        SimConfig::paper_closed_loop(4),
        "express x5 16x16 closed loop, window 4",
    );
}

/// Closed-loop trace cell: wormhole data packets (32 flits) crossing
/// shard cuts while the window gates their sources — the minted
/// immigrant handles must carry the true origin for the credit return.
#[test]
fn closed_loop_trace_parity() {
    let topo = paper_mesh();
    let trace = fixture_trace(&topo, 4242, 600);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper_closed_loop(2);
    let single = Simulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("single-shard engine completes");
    for spec in GRIDS {
        for threads in [1, 0] {
            let sharded = ShardedSimulator::new(&topo, &routes, cfg, spec)
                .with_threads(threads)
                .run_trace(&trace)
                .expect("sharded engine completes");
            assert_eq!(
                sharded, single,
                "closed-loop trace parity diverged: grid {}x{}, threads {threads}",
                spec.sx, spec.sy
            );
        }
    }
}

/// Oversubscribed execution: fewer worker threads than shards (the
/// mailbox protocol claims to support it — each worker owns several
/// shards and posts/collects for all of them). 4 quadrant shards on 2
/// and on 3 workers (uneven chunks), open- and closed-loop.
#[test]
fn oversubscribed_workers_match_single_shard() {
    let topo = paper_mesh();
    let routes = RoutingTable::compute_xy(&topo);
    let m = uniform_matrix(&topo, 0.10);
    for cfg in [SimConfig::paper(), SimConfig::paper_closed_loop(4)] {
        let single = Simulator::new(&topo, &routes, cfg)
            .run_synthetic(&m, 150, 500, 31)
            .expect("single-shard engine completes");
        for (spec, threads) in [
            (ShardSpec::quadrants(), 2),
            (ShardSpec::quadrants(), 3),
            (ShardSpec { sx: 4, sy: 2 }, 3),
        ] {
            let sharded = ShardedSimulator::new(&topo, &routes, cfg, spec)
                .with_threads(threads)
                .run_synthetic(&m, 150, 500, 31)
                .expect("oversubscribed sharded engine completes");
            assert_eq!(
                sharded, single,
                "oversubscribed parity diverged: grid {}x{} on {threads} threads, window {}",
                spec.sx, spec.sy, cfg.max_outstanding
            );
        }
    }
}

/// Faults sitting exactly on the shard cut lines: a dead span and a
/// degraded span across the x = 7↔8 column cut (a boundary of every
/// grid in `GRIDS`), a dead span across the y = 7↔8 row cut of the 2×2
/// and 4×2 grids, and a dead router in the first column east of the
/// x-cut. Boundary classification must stay correct — a dead boundary
/// link simply never exists in the ingest tables, a degraded one mails
/// its flits with the raised latency — and the resilience counters must
/// absorb across shards exactly like the other statistics.
#[test]
fn trace_parity_faulted_16x16_faults_on_cuts() {
    let healthy = paper_mesh();
    let healthy_routes = RoutingTable::compute_xy(&healthy);
    let spec = FaultSpec::none()
        .dead_link(NodeId(3 * 16 + 7), NodeId(3 * 16 + 8))
        .degraded_span(NodeId(9 * 16 + 7), NodeId(9 * 16 + 8))
        .dead_link(NodeId(7 * 16 + 5), NodeId(8 * 16 + 5))
        .dead_router(NodeId(6 * 16 + 8));
    let topo = spec.apply(&healthy);
    let routes = RoutingTable::compute_xy_avoiding(&topo).expect("fault set keeps mesh routable");
    let cfg = SimConfig::paper();
    let trace = fixture_trace(&healthy, 17, 700);
    let single = Simulator::new(&topo, &routes, cfg)
        .with_baseline(&healthy, &healthy_routes)
        .run_trace(&trace)
        .expect("single-shard engine completes");
    assert!(
        single.unreachable_pairs > 0,
        "dead-router traffic never hit"
    );
    assert!(single.rerouted_hops > 0, "cut faults never forced a detour");
    for grid in GRIDS {
        for threads in [1, 0] {
            let sharded = ShardedSimulator::new(&topo, &routes, cfg, grid)
                .with_threads(threads)
                .with_baseline(&healthy, &healthy_routes)
                .run_trace(&trace)
                .expect("sharded engine completes");
            assert_eq!(
                sharded, single,
                "faulted-cut trace parity diverged: grid {}x{}, threads {threads}",
                grid.sx, grid.sy
            );
        }
    }
}

/// Closed-loop synthetic cell on the faulted express mesh, with a
/// *degraded express link* that leaps over the x = 7↔8 column cut: the
/// halved class-B VC set, the dateline transition, the mailbox flit
/// exchange and the cross-shard source-credit return all interact.
#[test]
fn closed_loop_faulted_express_parity_on_cut() {
    let healthy = paper_express(5);
    let healthy_routes = RoutingTable::compute_xy(&healthy);
    let cut_express = healthy
        .links()
        .iter()
        .find(|l| l.is_express() && (l.src.0 % 16) < 8 && (l.dst.0 % 16) >= 8)
        .expect("a span-5 express link crosses the column cut");
    let spec = FaultSpec::none()
        .degraded_span(cut_express.src, cut_express.dst)
        .dead_link(NodeId(5 * 16 + 7), NodeId(5 * 16 + 8));
    let topo = spec.apply(&healthy);
    let routes = RoutingTable::compute_xy_avoiding(&topo).expect("fault set keeps mesh routable");
    let cfg = SimConfig::paper_closed_loop(4);
    let m = uniform_matrix(&topo, 0.25);
    let single = Simulator::new(&topo, &routes, cfg)
        .with_baseline(&healthy, &healthy_routes)
        .run_synthetic(&m, 150, 500, 23)
        .expect("single-shard engine completes");
    assert!(single.accepted_flits > 0);
    for grid in GRIDS {
        for threads in [1, 0] {
            let sharded = ShardedSimulator::new(&topo, &routes, cfg, grid)
                .with_threads(threads)
                .with_baseline(&healthy, &healthy_routes)
                .run_synthetic(&m, 150, 500, 23)
                .expect("sharded engine completes");
            assert_eq!(
                sharded, single,
                "faulted express closed-loop parity diverged: grid {}x{}, threads {threads}",
                grid.sx, grid.sy
            );
        }
    }
}

#[test]
fn sharded_32x32_uniform_runs_and_matches() {
    // The target workload of the shard subsystem: a 32×32 mesh the
    // serial sweeps could not open. One short synthetic cell, quadrant
    // shards, threaded — pinned bit-for-bit against P=1.
    let topo = cells::plain_mesh(32, 32);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    let m = uniform_matrix(&topo, 0.08);
    let single = Simulator::new(&topo, &routes, cfg)
        .run_synthetic(&m, 50, 200, 42)
        .expect("completes");
    let sharded = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec::quadrants())
        .run_synthetic(&m, 50, 200, 42)
        .expect("completes");
    assert_eq!(sharded, single);
    assert!(single.all.count > 1000, "workload is non-trivial");
}
