//! The unified parity-cell catalog.
//!
//! Every parity suite (`parity.rs`, `shard_parity.rs`,
//! `snapshot_parity.rs`, `telemetry_parity.rs`, `lookahead_parity.rs`)
//! iterates the same cell matrix — topology family × {open, closed}
//! loop × {trace, synthetic} workload — so a cell added here is pinned
//! across every engine dimension at once: P=1 vs the frozen reference,
//! sharded vs P=1 (per-cycle and conservative-lookahead), spliced vs
//! whole, probed vs plain.
//!
//! The topology families:
//!
//! * **plain** — electronic 6×6 mesh, every link 1 cycle;
//! * **express** — electronic 8×4 with 2-cycle optical span-3 express
//!   links (dateline VC discipline, mixed-latency calendar);
//! * **faulted** — the plain mesh with dead links, a degraded span and a
//!   dead router (up*/down* detours + admission drops + baseline
//!   accounting);
//! * **hyppi** — all-optical 8×8 (every link 2 cycles): every shard cut
//!   has minimum boundary latency 2, so the sharded engine runs
//!   conservative-lookahead W=2 windows on these cells;
//! * **hyppi-faulted** — the all-optical mesh with faults sitting on the
//!   default shard-cut lines (degradation raises latencies, so cuts keep
//!   W=2 while the fault machinery runs under windowed exchanges).
//!
//! Keep the meshes small: five suites iterate the full matrix in debug
//! mode under `cargo test -q`.

use hyppi_netsim::{
    FlightRecorder, ReferenceSimulator, RunOutcome, ShardedSimulator, SimConfig, SimStats,
    Simulator,
};
use hyppi_phys::{Gbps, LinkTechnology};
use hyppi_topology::{
    express_mesh, mesh, ExpressSpec, FaultSpec, MeshSpec, NodeId, RoutingTable, ShardSpec, Topology,
};
use hyppi_traffic::{
    BurstSpec, SyntheticPattern, TenantMap, TenantSpec, TenantWorkload, Trace, TraceEvent,
    TrafficMatrix,
};

/// Synthetic warm-up cycles used by every synthetic cell.
pub const WARMUP: u64 = 100;
/// Synthetic measured injection cycles used by every synthetic cell.
pub const MEASURE: u64 = 400;

/// Plain electronic mesh (1-cycle links).
pub fn plain_mesh(w: u16, h: u16) -> Topology {
    mesh(MeshSpec {
        width: w,
        height: h,
        core_spacing_mm: 1.0,
        base_tech: LinkTechnology::Electronic,
        capacity: Gbps::new(50.0),
    })
}

/// Electronic mesh with 2-cycle optical express links.
pub fn express(w: u16, h: u16, span: u16) -> Topology {
    express_mesh(
        MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        },
        ExpressSpec {
            span,
            tech: LinkTechnology::Hyppi,
        },
    )
}

/// All-optical mesh: every link is a 2-cycle HyPPI link, so every shard
/// cut classifies at minimum boundary latency 2 (lookahead W=2).
pub fn hyppi_mesh(w: u16, h: u16) -> Topology {
    mesh(MeshSpec {
        width: w,
        height: h,
        core_spacing_mm: 1.0,
        base_tech: LinkTechnology::Hyppi,
        capacity: Gbps::new(50.0),
    })
}

/// Deterministic pseudo-random trace (packet mix of 1- and 32-flit
/// packets, bursty cycles, idle gaps) derived from `seed` via SplitMix64
/// so the fixture is reproducible without an RNG dependency. This is the
/// generator family every parity suite historically rolled by hand.
pub fn fixture_trace(topo: &Topology, seed: u64, packets: usize) -> Trace {
    let n = topo.num_nodes() as u64;
    let mut z = seed;
    let mut next = move || {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut events = Vec::with_capacity(packets);
    let mut cycle = 0u64;
    for _ in 0..packets {
        // Mostly dense bursts, occasionally a long idle gap (exercises
        // the idle fast-forward path).
        cycle += match next() % 10 {
            0 => 500 + next() % 2000,
            1..=4 => 0,
            _ => next() % 4,
        };
        let src = next() % n;
        let mut dst = next() % n;
        if dst == src {
            dst = (dst + 1) % n;
        }
        events.push(TraceEvent {
            cycle,
            src: NodeId(src as u16),
            dst: NodeId(dst as u16),
            flits: if next() % 3 == 0 { 32 } else { 1 },
        });
    }
    Trace::new("parity cell", topo.num_nodes() as u16, 0.0, events)
}

/// Uniform-random synthetic matrix at a fixed per-node rate.
pub fn uniform_matrix(topo: &Topology, rate: f64) -> TrafficMatrix {
    let n = topo.num_nodes();
    let mut m = TrafficMatrix::zero(n);
    let per_pair = rate / (n - 1) as f64;
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s != d {
                m.set(s, d, per_pair);
            }
        }
    }
    m
}

/// Workload dimension of the cell matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellWorkload {
    /// SplitMix64 fixture trace.
    Trace { seed: u64, packets: usize },
    /// Bernoulli synthetic injection over a uniform matrix.
    Synthetic { rate: f64, seed: u64 },
}

/// One fully-built parity cell: topology (faults applied), routes, the
/// healthy baseline when faulted, the loop config, and the workload.
pub struct Cell {
    /// `family/loop/workload`, e.g. `"hyppi/closed/trace"`.
    pub name: String,
    /// The simulated topology (faults applied when the cell is faulted).
    pub topo: Topology,
    /// Routes for `topo` (fault-avoiding up*/down* when faulted).
    pub routes: RoutingTable,
    /// The healthy topology + XY routes the faults were applied to;
    /// `None` on healthy cells.
    pub baseline: Option<(Topology, RoutingTable)>,
    /// Paper config, open- or closed-loop.
    pub cfg: SimConfig,
    pub workload: CellWorkload,
    /// Multi-tenant layout: the spec (drives the synthetic matrix) and
    /// its resolved node-ownership map (attached to every engine so the
    /// per-tenant `SimStats` lanes are recorded); `None` on
    /// single-tenant cells.
    pub tenants: Option<(TenantSpec, TenantMap)>,
    /// The conservative-lookahead window the sharded engine derives on
    /// this cell for the default grids (1 = per-cycle exchanges).
    pub expected_lookahead: u64,
}

/// The shard grids every sharded suite pins cells on: vertical halves,
/// the default quadrants, and a finer column split.
pub const GRIDS: [ShardSpec; 3] = [
    ShardSpec { sx: 2, sy: 1 },
    ShardSpec { sx: 2, sy: 2 },
    ShardSpec { sx: 4, sy: 2 },
];

impl Cell {
    /// The cell's trace (trace cells only).
    pub fn trace(&self) -> Option<Trace> {
        match self.workload {
            CellWorkload::Trace { seed, packets } => Some(fixture_trace(&self.topo, seed, packets)),
            CellWorkload::Synthetic { .. } => None,
        }
    }

    /// The cell's traffic matrix and seed (synthetic cells only). On
    /// multi-tenant cells the matrix comes from the tenant spec (each
    /// tenant's pattern on its own tile); the workload `rate` is
    /// documentation only there.
    pub fn matrix(&self) -> Option<(TrafficMatrix, u64)> {
        match self.workload {
            CellWorkload::Synthetic { rate, seed } => {
                let m = match &self.tenants {
                    Some((spec, _)) => spec.matrix(&self.topo),
                    None => uniform_matrix(&self.topo, rate),
                };
                Some((m, seed))
            }
            CellWorkload::Trace { .. } => None,
        }
    }

    /// Runs the cell on the P=1 production engine.
    pub fn run_single(&self) -> SimStats {
        let mut sim = Simulator::new(&self.topo, &self.routes, self.cfg);
        if let Some((h, hr)) = &self.baseline {
            sim = sim.with_baseline(h, hr);
        }
        if let Some((_, map)) = &self.tenants {
            sim = sim.with_tenants(map);
        }
        self.drive_single(sim)
    }

    fn drive_single(&self, sim: Simulator<'_>) -> SimStats {
        match self.workload {
            CellWorkload::Trace { .. } => sim
                .run_trace(&self.trace().expect("trace cell"))
                .expect("P=1 run completes"),
            CellWorkload::Synthetic { .. } => {
                let (m, seed) = self.matrix().expect("synthetic cell");
                sim.run_synthetic(&m, WARMUP, MEASURE, seed)
                    .expect("P=1 run completes")
            }
        }
    }

    /// Runs the cell on the frozen reference engine.
    pub fn run_reference(&self) -> SimStats {
        let mut sim = ReferenceSimulator::new(&self.topo, &self.routes, self.cfg);
        if let Some((h, hr)) = &self.baseline {
            sim = sim.with_baseline(h, hr);
        }
        if let Some((_, map)) = &self.tenants {
            sim = sim.with_tenants(map);
        }
        match self.workload {
            CellWorkload::Trace { .. } => sim
                .run_trace(&self.trace().expect("trace cell"))
                .expect("reference run completes"),
            CellWorkload::Synthetic { .. } => {
                let (m, seed) = self.matrix().expect("synthetic cell");
                sim.run_synthetic(&m, WARMUP, MEASURE, seed)
                    .expect("reference run completes")
            }
        }
    }

    /// Builds the sharded engine for this cell (baseline installed).
    pub fn sharded(&self, spec: ShardSpec, threads: usize) -> ShardedSimulator<'_> {
        let mut sim =
            ShardedSimulator::new(&self.topo, &self.routes, self.cfg, spec).with_threads(threads);
        if let Some((h, hr)) = &self.baseline {
            sim = sim.with_baseline(h, hr);
        }
        if let Some((_, map)) = &self.tenants {
            sim = sim.with_tenants(map);
        }
        sim
    }

    /// Runs the cell on the sharded engine; `lookahead` caps the window
    /// (0 = the derived window, 1 = per-cycle exchanges).
    pub fn run_sharded(&self, spec: ShardSpec, threads: usize, lookahead: u64) -> SimStats {
        let sim = self.sharded(spec, threads).with_lookahead(lookahead);
        match self.workload {
            CellWorkload::Trace { .. } => sim
                .run_trace(&self.trace().expect("trace cell"))
                .expect("sharded run completes"),
            CellWorkload::Synthetic { .. } => {
                let (m, seed) = self.matrix().expect("synthetic cell");
                sim.run_synthetic(&m, WARMUP, MEASURE, seed)
                    .expect("sharded run completes")
            }
        }
    }

    /// Runs the cell on the sharded engine, pausing at `stop_at` and
    /// resuming the snapshot on a fresh instance — the mid-run splice
    /// every snapshot suite pins. `lookahead` caps both halves' windows.
    pub fn run_sharded_spliced(
        &self,
        spec: ShardSpec,
        threads: usize,
        lookahead: u64,
        stop_at: u64,
    ) -> SimStats {
        match self.workload {
            CellWorkload::Trace { .. } => {
                let trace = self.trace().expect("trace cell");
                match self
                    .sharded(spec, threads)
                    .with_lookahead(lookahead)
                    .run_trace_until(&trace, stop_at)
                    .expect("bounded run completes")
                {
                    RunOutcome::Finished(stats) => stats,
                    RunOutcome::Paused(snap) => self
                        .sharded(spec, threads)
                        .with_lookahead(lookahead)
                        .resume_trace(&snap, &trace)
                        .expect("resumed run completes"),
                }
            }
            CellWorkload::Synthetic { .. } => {
                let (m, seed) = self.matrix().expect("synthetic cell");
                match self
                    .sharded(spec, threads)
                    .with_lookahead(lookahead)
                    .run_synthetic_until(&m, WARMUP, MEASURE, seed, stop_at)
                    .expect("bounded run completes")
                {
                    RunOutcome::Finished(stats) => stats,
                    RunOutcome::Paused(snap) => self
                        .sharded(spec, threads)
                        .with_lookahead(lookahead)
                        .resume_synthetic(&snap, &m, WARMUP, MEASURE, seed)
                        .expect("resumed run completes"),
                }
            }
        }
    }

    /// Runs the cell on the P=1 engine, pausing at `stop_at` and
    /// resuming the snapshot.
    pub fn run_single_spliced(&self, stop_at: u64) -> SimStats {
        let build = || {
            let mut sim = Simulator::new(&self.topo, &self.routes, self.cfg);
            if let Some((h, hr)) = &self.baseline {
                sim = sim.with_baseline(h, hr);
            }
            if let Some((_, map)) = &self.tenants {
                sim = sim.with_tenants(map);
            }
            sim
        };
        match self.workload {
            CellWorkload::Trace { .. } => {
                let trace = self.trace().expect("trace cell");
                match build()
                    .run_trace_until(&trace, stop_at)
                    .expect("bounded run completes")
                {
                    RunOutcome::Finished(stats) => stats,
                    RunOutcome::Paused(snap) => build()
                        .resume_trace(&snap, &trace)
                        .expect("resumed run completes"),
                }
            }
            CellWorkload::Synthetic { .. } => {
                let (m, seed) = self.matrix().expect("synthetic cell");
                match build()
                    .run_synthetic_until(&m, WARMUP, MEASURE, seed, stop_at)
                    .expect("bounded run completes")
                {
                    RunOutcome::Finished(stats) => stats,
                    RunOutcome::Paused(snap) => build()
                        .resume_synthetic(&snap, &m, WARMUP, MEASURE, seed)
                        .expect("resumed run completes"),
                }
            }
        }
    }

    /// Runs the cell on the P=1 engine with the full flight recorder
    /// attached, returning the stats and the recorder.
    pub fn run_single_probed(&self) -> (SimStats, FlightRecorder) {
        let mut rec = FlightRecorder::new().with_metrics(50).with_trace(100_000);
        let mut sim = Simulator::new(&self.topo, &self.routes, self.cfg);
        if let Some((h, hr)) = &self.baseline {
            sim = sim.with_baseline(h, hr);
        }
        if let Some((_, map)) = &self.tenants {
            sim = sim.with_tenants(map);
        }
        let stats = match self.workload {
            CellWorkload::Trace { .. } => sim
                .run_trace_probed(&self.trace().expect("trace cell"), &mut rec)
                .expect("probed run completes"),
            CellWorkload::Synthetic { .. } => {
                let (m, seed) = self.matrix().expect("synthetic cell");
                sim.run_synthetic_probed(&m, WARMUP, MEASURE, seed, &mut rec)
                    .expect("probed run completes")
            }
        };
        (stats, rec)
    }

    /// Runs the cell on the sharded engine with the flight recorder
    /// attached (probed sharded runs are forced single-worker).
    pub fn run_sharded_probed(&self, spec: ShardSpec) -> (SimStats, FlightRecorder) {
        let mut rec = FlightRecorder::new().with_metrics(50).with_trace(100_000);
        let sim = self.sharded(spec, 0);
        let stats = match self.workload {
            CellWorkload::Trace { .. } => sim
                .run_trace_probed(&self.trace().expect("trace cell"), &mut rec)
                .expect("probed run completes"),
            CellWorkload::Synthetic { .. } => {
                let (m, seed) = self.matrix().expect("synthetic cell");
                sim.run_synthetic_probed(&m, WARMUP, MEASURE, seed, &mut rec)
                    .expect("probed run completes")
            }
        };
        (stats, rec)
    }
}

/// Fault set for the electronic 6×6 mesh: two dead spans, a degraded
/// span, and a dead router (admission drops).
fn electronic_faults() -> FaultSpec {
    FaultSpec::none()
        .dead_link(NodeId(14), NodeId(15))
        .degraded_span(NodeId(20), NodeId(26))
        .dead_router(NodeId(28))
}

/// Fault set for the all-optical 8×8 mesh, sitting on the default shard
/// cuts (x = 3↔4 and y = 3↔4 for the quadrant grid): a dead span and a
/// degraded span across the column cut, a dead span across the row cut.
/// Degradation *raises* latency, so every cut keeps its minimum boundary
/// latency of 2 and the lookahead window survives the faults.
fn hyppi_faults() -> FaultSpec {
    FaultSpec::none()
        .dead_link(NodeId(3 * 8 + 3), NodeId(3 * 8 + 4))
        .degraded_span(NodeId(5 * 8 + 3), NodeId(5 * 8 + 4))
        .dead_link(NodeId(3 * 8 + 5), NodeId(4 * 8 + 5))
}

fn build(
    family: &str,
    healthy: Topology,
    faults: Option<FaultSpec>,
    cfg: SimConfig,
    loop_name: &str,
    workload: CellWorkload,
    expected_lookahead: u64,
) -> Cell {
    let wl_name = match workload {
        CellWorkload::Trace { .. } => "trace",
        CellWorkload::Synthetic { .. } => "synthetic",
    };
    let name = format!("{family}/{loop_name}/{wl_name}");
    match faults {
        None => {
            let routes = RoutingTable::compute_xy(&healthy);
            Cell {
                name,
                topo: healthy,
                routes,
                baseline: None,
                cfg,
                workload,
                tenants: None,
                expected_lookahead,
            }
        }
        Some(spec) => {
            let healthy_routes = RoutingTable::compute_xy(&healthy);
            let topo = spec.apply(&healthy);
            let routes =
                RoutingTable::compute_xy_avoiding(&topo).expect("fault set keeps mesh routable");
            Cell {
                name,
                topo,
                routes,
                baseline: Some((healthy, healthy_routes)),
                cfg,
                workload,
                tenants: None,
                expected_lookahead,
            }
        }
    }
}

/// The full cell matrix: 5 topology families × {open, closed(4)} ×
/// {trace, synthetic} = 20 base cells, plus six bursty / multi-tenant
/// cells. Closed-loop synthetic cells run past the small-mesh knee so
/// windows actually fill; closed-loop cells pin `expected_lookahead = 1`
/// (source credits need next-cycle global visibility — the plan refuses
/// to open a window).
///
/// The extra cells pin the dynamic-traffic and multi-tenancy subsystems
/// across every suite:
///
/// * `plain/open/synthetic-onoff` — ON/OFF modulated injection;
/// * `hyppi/open/synthetic-mmpp` — MMPP arrivals under W=2 windowed
///   exchanges (lookahead sees non-steady traffic);
/// * `hyppi-faulted/open/synthetic-onoff` — bursty sources while the
///   shard-cut links are faulted (bursty-on-faulted-cut);
/// * `plain/open/tenant` — hotspot|uniform tenant pair, per-tenant
///   stats lanes absorbed across shards and snapshots;
/// * `plain/closed/tenant` — the same pair under source credits
///   (closed-loop forces the per-cycle protocol);
/// * `hyppi/open/tenant-mmpp` — tenants *and* bursty modulation under
///   W=2 windows.
pub fn catalog() -> Vec<Cell> {
    type Family = (
        &'static str,
        fn() -> Topology,
        Option<fn() -> FaultSpec>,
        u64,
    );
    let families: Vec<Family> = vec![
        ("plain", (|| plain_mesh(6, 6)) as fn() -> Topology, None, 1),
        ("express", || express(8, 4, 3), None, 1),
        ("faulted", || plain_mesh(6, 6), Some(electronic_faults), 1),
        ("hyppi", || hyppi_mesh(8, 8), None, 2),
        ("hyppi-faulted", || hyppi_mesh(8, 8), Some(hyppi_faults), 2),
    ];
    let mut cells = Vec::new();
    for (family, mk_topo, mk_faults, open_lookahead) in families {
        for (loop_name, cfg, open) in [
            ("open", SimConfig::paper(), true),
            ("closed", SimConfig::paper_closed_loop(4), false),
        ] {
            let lookahead = if open { open_lookahead } else { 1 };
            // Seeds vary per (family, loop) so cells don't share traffic.
            let seed_base = 1000 + cells.len() as u64;
            let rate = if open { 0.08 } else { 0.25 };
            cells.push(build(
                family,
                mk_topo(),
                mk_faults.map(|f| f()),
                cfg,
                loop_name,
                CellWorkload::Trace {
                    seed: seed_base,
                    packets: 400,
                },
                lookahead,
            ));
            cells.push(build(
                family,
                mk_topo(),
                mk_faults.map(|f| f()),
                cfg,
                loop_name,
                CellWorkload::Synthetic {
                    rate,
                    seed: seed_base + 1,
                },
                lookahead,
            ));
        }
    }

    // Bursty cells: the burst spec rides in `SimConfig`, so every run
    // path (single, reference, sharded, spliced, probed) picks it up
    // with no harness changes.
    let mut onoff_cfg = SimConfig::paper();
    onoff_cfg.burst = BurstSpec::onoff(4.0);
    let mut mmpp_cfg = SimConfig::paper();
    mmpp_cfg.burst = BurstSpec::mmpp(3.0);
    for (family, topo, faults, cfg, suffix, lookahead) in [
        ("plain", plain_mesh(6, 6), None, onoff_cfg, "onoff", 1),
        ("hyppi", hyppi_mesh(8, 8), None, mmpp_cfg, "mmpp", 2),
        (
            "hyppi-faulted",
            hyppi_mesh(8, 8),
            Some(hyppi_faults()),
            onoff_cfg,
            "onoff",
            2,
        ),
    ] {
        let seed = 2000 + cells.len() as u64;
        let mut cell = build(
            family,
            topo,
            faults,
            cfg,
            "open",
            CellWorkload::Synthetic { rate: 0.08, seed },
            lookahead,
        );
        cell.name = format!("{}-{suffix}", cell.name);
        cells.push(cell);
    }

    // Multi-tenant cells: a hotspot|uniform pair on vertical half-tiles.
    // The resolved map is attached to every engine, so the per-tenant
    // stats lanes are pinned bit-for-bit alongside the aggregate.
    let pair = TenantSpec::pair(
        TenantWorkload {
            pattern: SyntheticPattern::Hotspot,
            rate: 0.06,
        },
        TenantWorkload {
            pattern: SyntheticPattern::Uniform,
            rate: 0.08,
        },
    );
    let closed_pair = pair.with_rate(0, 0.18).with_rate(1, 0.22);
    for (family, topo, cfg, spec, loop_name, suffix, lookahead) in [
        (
            "plain",
            plain_mesh(6, 6),
            SimConfig::paper(),
            pair.clone(),
            "open",
            "tenant",
            1,
        ),
        (
            "plain",
            plain_mesh(6, 6),
            SimConfig::paper_closed_loop(4),
            closed_pair,
            "closed",
            "tenant",
            1,
        ),
        (
            "hyppi",
            hyppi_mesh(8, 8),
            mmpp_cfg,
            pair,
            "open",
            "tenant-mmpp",
            2,
        ),
    ] {
        let seed = 2000 + cells.len() as u64;
        let mut cell = build(
            family,
            topo,
            None,
            cfg,
            loop_name,
            CellWorkload::Synthetic { rate: 0.08, seed },
            lookahead,
        );
        cell.name = format!("{family}/{loop_name}/{suffix}");
        let map = spec.map(&cell.topo);
        cell.tenants = Some((spec, map));
        cells.push(cell);
    }

    cells
}
