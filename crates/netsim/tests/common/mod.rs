//! Shared fixtures for the parity suites.
//!
//! Each integration-test binary compiles its own copy of this module, so
//! not every suite uses every helper.
#![allow(dead_code)]

pub mod cells;
