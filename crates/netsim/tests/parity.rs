//! Engine parity: the active-set engine must reproduce the seed engine's
//! `SimStats` **bit-for-bit** — same latency histograms, same energy
//! counts, same per-link utilization, same cycle counts — on a fixture
//! matrix of seeds × topologies × workloads. This pins the paper's
//! Fig. 6 / Table V numbers across engine rewrites.
//!
//! `ReferenceSimulator` (in `hyppi_netsim::reference`) is the frozen seed
//! implementation; any intentional microarchitectural change must land in
//! both engines.

mod common;

use common::cells::{self, express, fixture_trace, plain_mesh, uniform_matrix};
use hyppi_netsim::{ReferenceSimulator, SimConfig, SimStats, Simulator};
use hyppi_topology::NodeId;
use hyppi_topology::{FaultSpec, RoutingTable, Topology};
use hyppi_traffic::{Trace, TraceEvent};

/// The unified cell catalog (`tests/common/cells.rs`): every cell's P=1
/// run must equal the frozen reference engine bit-for-bit. The sharded,
/// snapshot, telemetry, and lookahead suites iterate the same catalog,
/// so a cell added there is transitively pinned to the seed semantics
/// through this test.
#[test]
fn catalog_matches_reference_engine() {
    for cell in cells::catalog() {
        let single = cell.run_single();
        let reference = cell.run_reference();
        assert_eq!(single, reference, "catalog cell diverged: {}", cell.name);
    }
}

fn assert_trace_parity_cfg(topo: &Topology, trace: &Trace, cfg: SimConfig, label: &str) {
    let routes = RoutingTable::compute_xy(topo);
    let new = Simulator::new(topo, &routes, cfg)
        .run_trace(trace)
        .expect("active-set engine completes");
    let reference = ReferenceSimulator::new(topo, &routes, cfg)
        .run_trace(trace)
        .expect("reference engine completes");
    assert_eq!(new, reference, "trace parity diverged: {label}");
}

fn assert_trace_parity(topo: &Topology, trace: &Trace, label: &str) {
    assert_trace_parity_cfg(topo, trace, SimConfig::paper(), label);
}

fn assert_synthetic_parity_cfg(
    topo: &Topology,
    rate: f64,
    seed: u64,
    cfg: SimConfig,
    label: &str,
) -> hyppi_netsim::SimStats {
    let routes = RoutingTable::compute_xy(topo);
    let m = uniform_matrix(topo, rate);
    let new = Simulator::new(topo, &routes, cfg)
        .run_synthetic(&m, 150, 600, seed)
        .expect("active-set engine completes");
    let reference = ReferenceSimulator::new(topo, &routes, cfg)
        .run_synthetic(&m, 150, 600, seed)
        .expect("reference engine completes");
    assert_eq!(new, reference, "synthetic parity diverged: {label}");
    // `SimStats` equality already covers the histogram arrays; spell the
    // derived tail statistics out too so a change to the percentile
    // estimator itself (not just the collection) is caught against the
    // frozen engine's data.
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(
            new.all.percentile(q),
            reference.all.percentile(q),
            "p{} diverged: {label}",
            (q * 100.0) as u32
        );
    }
    assert!(new.all.histogram.iter().sum::<u64>() == new.all.count);
    new
}

fn assert_synthetic_parity(topo: &Topology, seed: u64, label: &str) {
    assert_synthetic_parity_cfg(topo, 0.08, seed, SimConfig::paper(), label);
}

/// Faulted-mesh trace cell: apply `spec` to `healthy`, route around the
/// faults with the up*/down* table, run both engines with the healthy
/// baseline installed, and pin bit-for-bit equality.
fn assert_fault_trace_parity(
    healthy: &Topology,
    spec: &FaultSpec,
    trace: &Trace,
    cfg: SimConfig,
    label: &str,
) -> SimStats {
    let healthy_routes = RoutingTable::compute_xy(healthy);
    let topo = spec.apply(healthy);
    let routes = RoutingTable::compute_xy_avoiding(&topo).expect("fault set keeps mesh routable");
    let new = Simulator::new(&topo, &routes, cfg)
        .with_baseline(healthy, &healthy_routes)
        .run_trace(trace)
        .expect("active-set engine completes");
    let reference = ReferenceSimulator::new(&topo, &routes, cfg)
        .with_baseline(healthy, &healthy_routes)
        .run_trace(trace)
        .expect("reference engine completes");
    assert_eq!(new, reference, "faulted trace parity diverged: {label}");
    new
}

/// Faulted-mesh synthetic cell (same parity rule, Bernoulli injection).
fn assert_fault_synthetic_parity(
    healthy: &Topology,
    spec: &FaultSpec,
    rate: f64,
    seed: u64,
    cfg: SimConfig,
    label: &str,
) -> SimStats {
    let healthy_routes = RoutingTable::compute_xy(healthy);
    let topo = spec.apply(healthy);
    let routes = RoutingTable::compute_xy_avoiding(&topo).expect("fault set keeps mesh routable");
    let m = uniform_matrix(&topo, rate);
    let new = Simulator::new(&topo, &routes, cfg)
        .with_baseline(healthy, &healthy_routes)
        .run_synthetic(&m, 150, 600, seed)
        .expect("active-set engine completes");
    let reference = ReferenceSimulator::new(&topo, &routes, cfg)
        .with_baseline(healthy, &healthy_routes)
        .run_synthetic(&m, 150, 600, seed)
        .expect("reference engine completes");
    assert_eq!(new, reference, "faulted synthetic parity diverged: {label}");
    new
}

/// The fixture matrix from the issue: ≥3 seeds × {plain mesh, express
/// mesh with dateline VCs}, trace-driven.
#[test]
fn trace_parity_plain_mesh_three_seeds() {
    let topo = plain_mesh(8, 8);
    for seed in [1u64, 7, 42] {
        let trace = fixture_trace(&topo, seed, 600);
        assert_trace_parity(&topo, &trace, &format!("plain 8x8, seed {seed}"));
    }
}

#[test]
fn trace_parity_express_mesh_three_seeds() {
    // Span 5 on a 16-wide mesh: dateline VC classes in force, mixed 1- and
    // 2-cycle link latencies in the calendar.
    let topo = express(16, 2, 5);
    for seed in [3u64, 11, 1234] {
        let trace = fixture_trace(&topo, seed, 600);
        assert_trace_parity(&topo, &trace, &format!("express 16x2 span 5, seed {seed}"));
    }
}

#[test]
fn trace_parity_express_wraparound_span() {
    // Span 15 "ring wrap" — the hardest deadlock-discipline case.
    let topo = express(16, 2, 15);
    let trace = fixture_trace(&topo, 99, 400);
    assert_trace_parity(&topo, &trace, "express 16x2 span 15, seed 99");
}

#[test]
fn synthetic_parity_three_seeds_both_topologies() {
    let plain = plain_mesh(6, 6);
    let xpress = express(8, 4, 3);
    for seed in [5u64, 17, 2718] {
        assert_synthetic_parity(&plain, seed, &format!("plain 6x6, seed {seed}"));
        assert_synthetic_parity(&xpress, seed, &format!("express 8x4 span 3, seed {seed}"));
    }
}

/// Saturating all-to-all wormhole burst: heavy VC/switch contention, so
/// every arbitration path is exercised, not just the quiescent fast path.
#[test]
fn trace_parity_under_saturation() {
    let topo = plain_mesh(4, 4);
    let mut events = Vec::new();
    for s in 0..16u16 {
        for k in 1..16u16 {
            events.push(TraceEvent {
                cycle: u64::from(k) * 4,
                src: NodeId(s),
                dst: NodeId((s + k) % 16),
                flits: if k % 2 == 0 { 32 } else { 1 },
            });
        }
    }
    let trace = Trace::new("saturation", 16, 0.0, events);
    assert_trace_parity(&topo, &trace, "4x4 all-to-all saturation");
}

/// Closed-loop NIC cells: windows 1, 4 and 16 over trace and synthetic
/// workloads on both topology families. The credit-gated emission, the
/// source-credit return, the emission-restarted latency clocks, and the
/// new accepted/backlog/outstanding statistics must all match the frozen
/// engine bit-for-bit (the frozen engine carries the mirror
/// implementation — see `reference.rs`).
#[test]
fn closed_loop_trace_parity_windows() {
    let plain = plain_mesh(6, 6);
    let xpress = express(16, 2, 5);
    for window in [1usize, 4, 16] {
        let cfg = SimConfig::paper_closed_loop(window);
        let trace = fixture_trace(&plain, 21 + window as u64, 500);
        assert_trace_parity_cfg(&plain, &trace, cfg, &format!("plain 6x6, window {window}"));
        let trace = fixture_trace(&xpress, 77 + window as u64, 400);
        assert_trace_parity_cfg(
            &xpress,
            &trace,
            cfg,
            &format!("express 16x2 span 5, window {window}"),
        );
    }
}

/// Synthetic closed-loop cells at a rate past the small-mesh knee, so
/// windows actually fill, sources park, and credits un-park them.
#[test]
fn closed_loop_synthetic_parity_windows() {
    let topo = plain_mesh(6, 6);
    for window in [1usize, 4, 16] {
        let cfg = SimConfig::paper_closed_loop(window);
        let stats = assert_synthetic_parity_cfg(
            &topo,
            0.30,
            9 + window as u64,
            cfg,
            &format!("plain 6x6 saturated, window {window}"),
        );
        // The cells are not vacuous: the window filled somewhere…
        let peak = stats.peak_outstanding.iter().max().copied().unwrap_or(0);
        assert_eq!(peak as usize, window, "window never filled");
        assert!(stats.accepted_flits > 0);
        // …and when it is tight (service rate window/RTT below the
        // offered 0.30), the overload piles up at the NICs instead of in
        // the network.
        if window <= 4 {
            assert!(stats.peak_backlog.iter().any(|&b| b > 1));
        }
    }
}

/// Golden scalar anchors for the paper-default configuration, recorded
/// from the seed engine. These pin absolute values (not just engine
/// agreement) so a bug introduced symmetrically into both engines is
/// still caught.
#[test]
fn golden_zero_load_anchors() {
    // 2-node mesh, single flit: 7-cycle zero-load latency (3 + 1 + 3).
    let topo = plain_mesh(2, 1);
    let routes = RoutingTable::compute_xy(&topo);
    let trace = Trace::new(
        "golden",
        2,
        0.0,
        vec![TraceEvent {
            cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            flits: 1,
        }],
    );
    for stats in [
        Simulator::new(&topo, &routes, SimConfig::paper())
            .run_trace(&trace)
            .unwrap(),
        ReferenceSimulator::new(&topo, &routes, SimConfig::paper())
            .run_trace(&trace)
            .unwrap(),
    ] {
        assert_eq!(stats.all.max, 7);
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.flits_delivered, 1);
        assert_eq!(stats.total_flit_hops(), 1);
        // Source switch + destination switch.
        assert_eq!(stats.total_router_traversals(), 2);
        // The log-linear histogram buckets 7-cycle latencies exactly
        // (values below 8 are their own bucket), so every percentile of
        // the single-packet run is 7.
        assert_eq!(stats.all.histogram[7], 1);
        assert_eq!(stats.all.histogram.iter().sum::<u64>(), 1);
        assert_eq!(stats.all.p50(), 7);
        assert_eq!(stats.all.p99(), 7);
    }
}

/// Latency histograms and their percentile read-outs agree bit-for-bit
/// between the engines under heavy contention, where latencies span many
/// octaves of the log-linear histogram.
#[test]
fn histogram_parity_under_contention() {
    let topo = plain_mesh(4, 4);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    let mut events = Vec::new();
    for s in 0..16u16 {
        for k in 1..16u16 {
            events.push(TraceEvent {
                cycle: 0,
                src: NodeId(s),
                dst: NodeId((s + k) % 16),
                flits: 32,
            });
        }
    }
    let trace = Trace::new("histogram burst", 16, 0.0, events);
    let new = Simulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("completes");
    let reference = ReferenceSimulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("completes");
    assert_eq!(new.all.histogram, reference.all.histogram);
    assert_eq!(new.data.histogram, reference.data.histogram);
    // The burst spreads latencies across several buckets, so the tail
    // statistics are non-degenerate.
    assert!(new.all.histogram.iter().filter(|&&c| c > 0).count() > 3);
    assert!(new.all.p50() < new.all.p99());
    for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
        assert_eq!(new.all.percentile(q), reference.all.percentile(q));
    }
}

/// Faulted plain mesh, trace-driven: dead links (detours), a degraded
/// span (raised latency + halved VCs), and a dead router (admission
/// drops) must all stay bit-for-bit across the engines — and the new
/// resilience counters must actually fire.
#[test]
fn trace_parity_faulted_plain_mesh() {
    let healthy = plain_mesh(8, 8);
    let spec = FaultSpec::none()
        .dead_link(NodeId(27), NodeId(28))
        .dead_link(NodeId(12), NodeId(20))
        .degraded_span(NodeId(35), NodeId(36))
        .dead_router(NodeId(45));
    for seed in [2u64, 13] {
        let trace = fixture_trace(&healthy, seed, 500);
        let stats = assert_fault_trace_parity(
            &healthy,
            &spec,
            &trace,
            SimConfig::paper(),
            &format!("faulted plain 8x8, seed {seed}"),
        );
        assert!(stats.unreachable_pairs > 0, "dead-router traffic never hit");
        assert!(stats.rerouted_hops > 0, "dead links never forced a detour");
        assert_eq!(
            stats.all.count + stats.unreachable_pairs,
            500,
            "every trace event is either delivered or dropped"
        );
    }
}

/// Faulted express mesh: a dead regular span plus a *degraded express
/// span* — the halved-VC discipline must keep at least one VC in each
/// dateline class, and the up*/down* detours must coexist with the
/// class-B transition.
#[test]
fn trace_parity_faulted_express_mesh() {
    let healthy = express(16, 2, 5);
    let elink = healthy
        .links()
        .iter()
        .find(|l| l.is_express())
        .expect("express mesh has express links");
    let spec = FaultSpec::none()
        .dead_link(NodeId(3), NodeId(4))
        .degraded_span(elink.src, elink.dst);
    for seed in [8u64, 21] {
        let trace = fixture_trace(&healthy, seed, 400);
        let stats = assert_fault_trace_parity(
            &healthy,
            &spec,
            &trace,
            SimConfig::paper(),
            &format!("faulted express 16x2 span 5, seed {seed}"),
        );
        assert_eq!(stats.unreachable_pairs, 0, "no dead routers in this cell");
        assert_eq!(stats.all.count, 400);
    }
}

/// Faulted synthetic cells, open loop and closed loop: the admission-time
/// drop must not consume RNG draws (P=1 vs reference would diverge) and
/// must not occupy closed-loop window slots.
#[test]
fn synthetic_parity_faulted_mesh_open_and_closed_loop() {
    let healthy = plain_mesh(6, 6);
    let spec = FaultSpec::none()
        .dead_link(NodeId(14), NodeId(15))
        .degraded_span(NodeId(20), NodeId(26))
        .dead_router(NodeId(28));
    let open = assert_fault_synthetic_parity(
        &healthy,
        &spec,
        0.08,
        31,
        SimConfig::paper(),
        "faulted plain 6x6 open loop",
    );
    assert!(open.unreachable_pairs > 0);
    assert!(open.rerouted_hops > 0);
    for window in [1usize, 4] {
        let closed = assert_fault_synthetic_parity(
            &healthy,
            &spec,
            0.30,
            9 + window as u64,
            SimConfig::paper_closed_loop(window),
            &format!("faulted plain 6x6 closed loop, window {window}"),
        );
        assert!(closed.unreachable_pairs > 0);
        assert!(closed.accepted_flits > 0);
    }
}
