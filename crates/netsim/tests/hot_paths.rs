//! Regression tests for the hot-path optimization round (credit fusion,
//! calendar batching, packed free-VC search).
//!
//! Two families:
//!
//! 1. **Batched fast-forward ≡ single-step advancement.** The run loop
//!    skips idle gaps by jumping straight to the next occupied calendar
//!    bucket (word-wide occupancy-bitset probes) or trace admission. On
//!    random arrival schedules — including multi-thousand-cycle gaps and
//!    2-cycle optical express links, which exercise the calendar wheel
//!    proper — the batched run must produce statistics identical to an
//!    engine stepped one cycle at a time with no fast-forwarding at all.
//! 2. **Credit fusion at shard boundaries.** Credits freed during cycle
//!    `t` become spendable at `t+1`, whether they were folded in place
//!    by the double-buffered credit cells (in-shard) or carried by a
//!    superstep mailbox (cross-shard). A credit-starved stream over a
//!    shard cut makes any visibility skew change latencies, so the
//!    engines are compared bit-for-bit against the frozen seed engine.

use hyppi_netsim::{ReferenceSimulator, ShardedSimulator, SimConfig, Simulator};
use hyppi_phys::{Gbps, LinkTechnology};
use hyppi_topology::{
    express_mesh, mesh, ExpressSpec, MeshSpec, NodeId, RoutingTable, ShardSpec, Topology,
};
use hyppi_traffic::{Trace, TraceEvent};
use proptest::prelude::*;

fn grid(w: u16, h: u16) -> Topology {
    mesh(MeshSpec {
        width: w,
        height: h,
        core_spacing_mm: 1.0,
        base_tech: LinkTechnology::Electronic,
        capacity: Gbps::new(50.0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched fast-forward over the arrival calendar produces the same
    /// statistics as cycle-by-cycle stepping, on random schedules with
    /// idle gaps, mixed packet sizes, and optional express links.
    #[test]
    fn fast_forward_matches_single_step(
        (w, h) in (3u16..=6, 2u16..=5),
        span in prop_oneof![Just(0u16), Just(3u16)],
        gap in 0u64..20_000,
        packets in proptest::collection::vec(
            (0u64..400, 0u16..64, 0u16..64, prop_oneof![Just(1u32), Just(32u32)]),
            1..30,
        ),
    ) {
        prop_assume!(span == 0 || span < w);
        let topo = if span == 0 {
            grid(w, h)
        } else {
            express_mesh(
                MeshSpec {
                    width: w,
                    height: h,
                    core_spacing_mm: 1.0,
                    base_tech: LinkTechnology::Electronic,
                    capacity: Gbps::new(50.0),
                },
                ExpressSpec { span, tech: LinkTechnology::Hyppi },
            )
        };
        let n = (topo.num_nodes()) as u16;
        let mut events: Vec<TraceEvent> = packets
            .into_iter()
            .enumerate()
            .map(|(i, (cycle, s, d, flits))| TraceEvent {
                // Every other packet lands after the idle gap, so the
                // batched run loop really jumps.
                cycle: cycle + if i % 2 == 0 { 0 } else { gap },
                src: NodeId(s % n),
                dst: NodeId(d % n),
                flits,
            })
            .filter(|e| e.src != e.dst)
            .collect();
        prop_assume!(!events.is_empty());
        events.sort_by_key(|e| e.cycle);
        let routes = RoutingTable::compute_xy(&topo);
        let cfg = SimConfig::paper();

        // Batched: the production run loop (fast-forwards idle gaps).
        let trace = Trace::new("ff", n, 0.0, events.clone());
        let batched = Simulator::new(&topo, &routes, cfg)
            .run_trace(&trace)
            .expect("batched run completes");

        // Single-stepped: the same engine advanced one cycle at a time.
        let mut sim = Simulator::new(&topo, &routes, cfg);
        let mut next = 0usize;
        let mut now = 0u64;
        loop {
            while next < events.len() && events[next].cycle <= now {
                let e = events[next];
                sim.admit(e.src, e.dst, e.flits, e.cycle);
                next += 1;
            }
            sim.step(now);
            now += 1;
            if next == events.len()
                && sim.pending_packets() == 0
                && sim.in_network_flits() == 0
            {
                break;
            }
            prop_assert!(now < 200_000, "single-stepped run did not drain");
        }
        let stepped = sim.stats();

        // Identical histograms, counters and per-element tallies; only
        // the run-length bookkeeping (`cycles`) is owned by the batched
        // run loop.
        prop_assert_eq!(&batched.all, &stepped.all);
        prop_assert_eq!(&batched.control, &stepped.control);
        prop_assert_eq!(&batched.data, &stepped.data);
        prop_assert_eq!(batched.flits_injected, stepped.flits_injected);
        prop_assert_eq!(batched.flits_delivered, stepped.flits_delivered);
        prop_assert_eq!(&batched.link_flits, &stepped.link_flits);
        prop_assert_eq!(&batched.router_flits, &stepped.router_flits);
    }
}

/// A credit-starved wormhole stream across a shard cut: with 2-flit VC
/// buffers every hop is throttled by the credit round-trip, so a
/// one-cycle error in credit visibility — fused cells in-shard, mailbox
/// credits cross-shard — would shift every latency. All three engines
/// must agree bit-for-bit.
#[test]
fn boundary_credit_visibility_is_next_cycle() {
    let topo = grid(4, 1);
    let routes = RoutingTable::compute_xy(&topo);
    let mut cfg = SimConfig::paper();
    cfg.buffer_depth = 2; // credit-bound: serialization dominated by returns
    let mut events = Vec::new();
    for k in 0..8 {
        events.push(TraceEvent {
            cycle: k * 4,
            src: NodeId(0),
            dst: NodeId(3),
            flits: 32,
        });
    }
    let trace = Trace::new("starved", 4, 0.0, events);

    let single = Simulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("single completes");
    let reference = ReferenceSimulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("reference completes");
    assert_eq!(single, reference, "fused credits diverge from the oracle");

    for threads in [1, 2] {
        let sharded = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec { sx: 2, sy: 1 })
            .with_threads(threads)
            .run_trace(&trace)
            .expect("sharded completes");
        assert_eq!(
            sharded, single,
            "mailbox credit visibility diverges (threads {threads})"
        );
    }
}

/// Same discipline under closed-loop injection: the source credit that
/// re-arms a window-full NIC crosses the shard cut by mailbox and must
/// keep the same next-cycle timing as the in-shard decrement.
#[test]
fn boundary_source_credit_visibility_is_next_cycle() {
    let topo = grid(4, 1);
    let routes = RoutingTable::compute_xy(&topo);
    let mut cfg = SimConfig::paper_closed_loop(1); // window 1: every credit gates
    cfg.buffer_depth = 2;
    let mut events = Vec::new();
    for k in 0..12 {
        events.push(TraceEvent {
            cycle: k,
            src: NodeId(0),
            dst: NodeId(3),
            flits: if k % 3 == 0 { 32 } else { 1 },
        });
    }
    let trace = Trace::new("windowed", 4, 0.0, events);
    let single = Simulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("single completes");
    let reference = ReferenceSimulator::new(&topo, &routes, cfg)
        .run_trace(&trace)
        .expect("reference completes");
    assert_eq!(single, reference);
    let sharded = ShardedSimulator::new(&topo, &routes, cfg, ShardSpec { sx: 2, sy: 1 })
        .with_threads(2)
        .run_trace(&trace)
        .expect("sharded completes");
    assert_eq!(sharded, single);
}
