//! Property tests for the dynamic-traffic and multi-tenancy subsystems.
//!
//! Two families:
//!
//! 1. **Burst modulation is mean-preserving.** The ON/OFF and MMPP
//!    factor processes are constructed with stationary mean exactly 1,
//!    so a bursty run offers the same long-run load as the steady run it
//!    modulates — only the clustering changes. Checked both at the
//!    traffic layer (slot-average of the pure factor function over
//!    random seeds and burstiness levels) and through the engine (the
//!    injected-flit count of a bursty synthetic run tracks the steady
//!    run's within sampling noise).
//! 2. **Per-tenant lanes partition the aggregate, per cycle.** Under
//!    manual stepping with a tenant map attached, the summed per-tenant
//!    counters (injected, delivered, accepted, completed packets,
//!    latency mass) must equal the aggregate `SimStats` at *every* cycle
//!    boundary — not just at run end — for arbitrary packet schedules,
//!    including cross-tile pairs the synthetic tenant matrices never
//!    generate.

use hyppi_netsim::{SimConfig, Simulator};
use hyppi_phys::{Gbps, LinkTechnology};
use hyppi_topology::{mesh, MeshSpec, NodeId, RoutingTable, Topology};
use hyppi_traffic::{
    BurstSpec, SyntheticPattern, TenantSpec, TenantWorkload, TrafficMatrix, BURST_SLOT_CYCLES,
};
use proptest::prelude::*;

fn grid(w: u16, h: u16) -> Topology {
    mesh(MeshSpec {
        width: w,
        height: h,
        core_spacing_mm: 1.0,
        base_tech: LinkTechnology::Electronic,
        capacity: Gbps::new(50.0),
    })
}

fn uniform(topo: &Topology, rate: f64) -> TrafficMatrix {
    let n = topo.num_nodes();
    let mut m = TrafficMatrix::zero(n);
    let per_pair = rate / (n - 1) as f64;
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s != d {
                m.set(s, d, per_pair);
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pure factor function's slot average converges to 1 for random
    /// seeds and burstiness levels — so `rate × factor` offers the
    /// configured mean rate in the long run, for both modulators.
    #[test]
    fn factor_process_is_mean_one(
        onoff in prop_oneof![Just(true), Just(false)],
        burstiness in 1.5f64..6.0,
        seed in 0u64..(1u64 << 48),
        node in 0usize..64,
    ) {
        let spec = if onoff {
            BurstSpec::onoff(burstiness)
        } else {
            BurstSpec::mmpp(burstiness)
        };
        let slots = 60_000u64;
        let mean: f64 = (0..slots)
            .map(|s| spec.factor_at(seed, node, s * BURST_SLOT_CYCLES))
            .sum::<f64>()
            / slots as f64;
        prop_assert!(
            (mean - 1.0).abs() < 0.08,
            "{spec}: long-run factor mean {mean} drifted from 1 (seed {seed})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Through the engine: a bursty synthetic run injects the same
    /// long-run flit volume as the steady run it modulates, within
    /// sampling noise. Burstiness is capped so `rate × factor` stays
    /// below 1 and the mean is never clamp-biased.
    #[test]
    fn bursty_offered_rate_matches_steady(
        onoff in prop_oneof![Just(true), Just(false)],
        burstiness in prop_oneof![Just(2.0f64), Just(3.0), Just(4.0)],
        seed in 0u64..10_000,
    ) {
        let topo = grid(6, 6);
        let routes = RoutingTable::compute_xy(&topo);
        let m = uniform(&topo, 0.05);
        let steady = Simulator::new(&topo, &routes, SimConfig::paper())
            .run_synthetic(&m, 100, 4000, seed)
            .expect("steady run completes");
        let mut cfg = SimConfig::paper();
        cfg.burst = if onoff {
            BurstSpec::onoff(burstiness)
        } else {
            BurstSpec::mmpp(burstiness)
        };
        let bursty = Simulator::new(&topo, &routes, cfg)
            .run_synthetic(&m, 100, 4000, seed)
            .expect("bursty run completes");
        let ratio = bursty.flits_injected as f64 / steady.flits_injected as f64;
        prop_assert!(
            (ratio - 1.0).abs() < 0.25,
            "{}: injected {} vs steady {} (ratio {ratio:.3}, seed {seed})",
            cfg.burst, bursty.flits_injected, steady.flits_injected
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per-tenant conservation under manual stepping: at every cycle
    /// boundary the summed tenant lanes equal the aggregate — injected,
    /// delivered, accepted flits, completed packets and latency mass.
    /// Packets are arbitrary (src, dst) pairs, so cross-tile traffic
    /// (which the tenant matrices never generate, but the engine must
    /// still attribute consistently) is exercised too.
    #[test]
    fn tenant_lanes_partition_aggregate_each_cycle(
        packets in proptest::collection::vec(
            (0u64..300, 0u16..36, 0u16..36, prop_oneof![Just(1u32), Just(32u32)]),
            1..40,
        ),
        closed in prop_oneof![Just(false), Just(true)],
    ) {
        let topo = grid(6, 6);
        let routes = RoutingTable::compute_xy(&topo);
        let spec = TenantSpec::pair(
            TenantWorkload { pattern: SyntheticPattern::Hotspot, rate: 0.06 },
            TenantWorkload { pattern: SyntheticPattern::Uniform, rate: 0.08 },
        );
        let map = spec.map(&topo);
        let cfg = if closed {
            SimConfig::paper_closed_loop(4)
        } else {
            SimConfig::paper()
        };
        let mut events: Vec<(u64, NodeId, NodeId, u32)> = packets
            .into_iter()
            .map(|(cycle, s, d, flits)| (cycle, NodeId(s), NodeId(d), flits))
            .filter(|e| e.1 != e.2)
            .collect();
        prop_assume!(!events.is_empty());
        events.sort_by_key(|e| e.0);

        let mut sim = Simulator::new(&topo, &routes, cfg).with_tenants(&map);
        let mut next = 0usize;
        let mut now = 0u64;
        loop {
            while next < events.len() && events[next].0 <= now {
                let (cycle, src, dst, flits) = events[next];
                sim.admit(src, dst, flits, cycle.max(now));
                next += 1;
            }
            sim.step(now);
            let stats = sim.stats();
            prop_assert_eq!(stats.tenants.len(), 2);
            let inj: u64 = stats.tenants.iter().map(|t| t.flits_injected).sum();
            let del: u64 = stats.tenants.iter().map(|t| t.flits_delivered).sum();
            let acc: u64 = stats.tenants.iter().map(|t| t.accepted_flits).sum();
            let cnt: u64 = stats.tenants.iter().map(|t| t.latency.count).sum();
            let sum: u64 = stats.tenants.iter().map(|t| t.latency.sum).sum();
            prop_assert_eq!(inj, stats.flits_injected);
            prop_assert_eq!(del, stats.flits_delivered);
            prop_assert_eq!(acc, stats.accepted_flits);
            prop_assert_eq!(cnt, stats.all.count);
            prop_assert_eq!(sum, stats.all.sum);
            now += 1;
            if next == events.len() && sim.pending_packets() == 0 && sim.in_network_flits() == 0 {
                break;
            }
            prop_assert!(now < 200_000, "single-stepped run did not drain");
        }
        // The partition is non-trivial: with sources on both halves of
        // the mesh, both lanes carry traffic.
        let stats = sim.stats();
        if events.iter().any(|e| map.tenant_of(e.1) == 0)
            && events.iter().any(|e| map.tenant_of(e.1) == 1)
        {
            prop_assert!(stats.tenants.iter().all(|t| t.flits_injected > 0));
        }
    }
}
