//! Conservative-lookahead parity: the sharded engine running W-cycle
//! superstep windows must reproduce the P=1 `Simulator`'s `SimStats`
//! **bit-for-bit** — and equal its own per-cycle (`with_lookahead(1)`)
//! protocol — on every cell of the unified catalog, on every shard
//! grid, sequential and threaded, including mid-window snapshot
//! splices.
//!
//! The all-optical (`hyppi`) cells are the ones that actually open a
//! window: every link is 2 cycles, so every cut classifies at W=2 and
//! the engine halves its barrier count. The electronic cells pin the
//! other side of the contract — a 1-cycle boundary link anywhere on the
//! cut (or a closed-loop config) must force the per-cycle protocol.
//!
//! The property block runs random partition shapes × window caps ×
//! seeds, splicing at random (odd, mid-window) cycles.

mod common;

use common::cells::{self, CellWorkload, GRIDS};
use hyppi_netsim::{ShardedSimulator, SimConfig, Simulator};
use hyppi_topology::{RoutingTable, ShardSpec};
use proptest::prelude::*;

/// Every catalog cell × every grid × {sequential, threaded} ×
/// {derived window, forced per-cycle}: all bit-for-bit equal to P=1,
/// and the derived window matches the cell's cut classification.
#[test]
fn catalog_windowed_matches_p1_on_all_grids() {
    for cell in cells::catalog() {
        let single = cell.run_single();
        for grid in GRIDS {
            let derived = cell.sharded(grid, 0).lookahead();
            assert_eq!(
                derived, cell.expected_lookahead,
                "{}: grid {}x{} derived window",
                cell.name, grid.sx, grid.sy
            );
            for threads in [1, 0] {
                for lookahead in [0u64, 1] {
                    let sharded = cell.run_sharded(grid, threads, lookahead);
                    assert_eq!(
                        sharded, single,
                        "{}: grid {}x{}, threads {threads}, lookahead cap {lookahead}",
                        cell.name, grid.sx, grid.sy
                    );
                }
            }
        }
    }
}

/// Strip and row partitions (the shapes added for lookahead cuts) on the
/// windowed cells: vertical strips, horizontal strips, and per-row
/// slices all derive W=2 on the all-optical mesh and stay bit-for-bit.
#[test]
fn strip_and_row_partitions_window_correctly() {
    for cell in cells::catalog() {
        if cell.expected_lookahead < 2 {
            continue;
        }
        let single = cell.run_single();
        for spec in [
            ShardSpec::vstrips(4),
            ShardSpec::hstrips(4),
            ShardSpec::rows(8),
        ] {
            assert_eq!(
                cell.sharded(spec, 0).lookahead(),
                2,
                "{}: {}x{} grid derived window",
                cell.name,
                spec.sx,
                spec.sy
            );
            let sharded = cell.run_sharded(spec, 0, 0);
            assert_eq!(
                sharded, single,
                "{}: strips {}x{}",
                cell.name, spec.sx, spec.sy
            );
        }
    }
}

/// Mid-window splices: pause boundaries that fall on odd cycles land
/// inside a W=2 window; the snapshot must canonicalize to the same
/// bytes as the P=1 engine's and resume bit-for-bit under any engine.
#[test]
fn mid_window_splices_match_whole_runs() {
    for cell in cells::catalog() {
        if cell.expected_lookahead < 2 {
            continue;
        }
        let single = cell.run_single();
        // 57 and 301 are odd: with W=2 windows starting at even cycles
        // these stops land mid-window. 300 pins the boundary case.
        for stop in [57u64, 300, 301] {
            let spliced = cell.run_sharded_spliced(ShardSpec::quadrants(), 0, 0, stop);
            assert_eq!(spliced, single, "{}: windowed splice at {stop}", cell.name);
            // Cross-protocol splice: windowed pause resumed per-cycle
            // and vice versa — the snapshot bytes carry no window state.
            let cross = cell.run_sharded_spliced(ShardSpec::quadrants(), 0, 1, stop);
            assert_eq!(cross, single, "{}: per-cycle splice at {stop}", cell.name);
        }
    }
}

/// Windowed snapshots are byte-identical to P=1 snapshots at the same
/// pause cycle — the lookahead engine's state canonicalizes.
#[test]
fn windowed_snapshot_bytes_match_p1() {
    let topo = cells::hyppi_mesh(8, 8);
    let routes = RoutingTable::compute_xy(&topo);
    let cfg = SimConfig::paper();
    let trace = cells::fixture_trace(&topo, 4242, 400);
    for stop in [57u64, 301] {
        let p1 = Simulator::new(&topo, &routes, cfg)
            .run_trace_until(&trace, stop)
            .expect("bounded run completes")
            .expect_paused();
        for (spec, threads) in [
            (ShardSpec::quadrants(), 0),
            (ShardSpec::vstrips(4), 1),
            (ShardSpec { sx: 2, sy: 1 }, 0),
        ] {
            let sim = ShardedSimulator::new(&topo, &routes, cfg, spec).with_threads(threads);
            assert_eq!(sim.lookahead(), 2);
            let snap = sim
                .run_trace_until(&trace, stop)
                .expect("bounded run completes")
                .expect_paused();
            assert_eq!(
                snap.bytes(),
                p1.bytes(),
                "windowed snapshot bytes diverge at {stop}: grid {}x{} t{threads}",
                spec.sx,
                spec.sy
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random partition shape × lookahead cap × seed ⇒ sharded == P=1
    /// bit-for-bit in `SimStats` (latency histograms included), with a
    /// random mid-run splice thrown in.
    #[test]
    fn random_shape_window_seed_parity(
        shape in prop_oneof![
            Just(ShardSpec { sx: 2, sy: 1 }),
            Just(ShardSpec { sx: 2, sy: 2 }),
            Just(ShardSpec { sx: 4, sy: 1 }),
            Just(ShardSpec { sx: 1, sy: 4 }),
            Just(ShardSpec { sx: 4, sy: 2 }),
            Just(ShardSpec { sx: 1, sy: 8 }),
        ],
        lookahead in prop_oneof![Just(0u64), Just(1), Just(2)],
        threads in prop_oneof![Just(1usize), Just(0)],
        synthetic in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1000,
        split in 1u64..600,
    ) {
        let topo = cells::hyppi_mesh(8, 8);
        let routes = RoutingTable::compute_xy(&topo);
        let cfg = SimConfig::paper();
        if synthetic {
            let m = cells::uniform_matrix(&topo, 0.02 + (seed % 7) as f64 * 0.02);
            let single = Simulator::new(&topo, &routes, cfg)
                .run_synthetic(&m, 100, 400, seed)
                .expect("P=1 run completes");
            let sharded = ShardedSimulator::new(&topo, &routes, cfg, shape)
                .with_threads(threads)
                .with_lookahead(lookahead)
                .run_synthetic(&m, 100, 400, seed)
                .expect("sharded run completes");
            prop_assert_eq!(&sharded, &single);
            let spliced = match ShardedSimulator::new(&topo, &routes, cfg, shape)
                .with_threads(threads)
                .with_lookahead(lookahead)
                .run_synthetic_until(&m, 100, 400, seed, split)
                .expect("bounded run completes")
            {
                hyppi_netsim::RunOutcome::Finished(stats) => stats,
                hyppi_netsim::RunOutcome::Paused(snap) => {
                    ShardedSimulator::new(&topo, &routes, cfg, shape)
                        .with_threads(threads)
                        .with_lookahead(lookahead)
                        .resume_synthetic(&snap, &m, 100, 400, seed)
                        .expect("resumed run completes")
                }
            };
            prop_assert_eq!(&spliced, &single);
        } else {
            let trace = cells::fixture_trace(&topo, seed, 300);
            let single = Simulator::new(&topo, &routes, cfg)
                .run_trace(&trace)
                .expect("P=1 run completes");
            let sharded = ShardedSimulator::new(&topo, &routes, cfg, shape)
                .with_threads(threads)
                .with_lookahead(lookahead)
                .run_trace(&trace)
                .expect("sharded run completes");
            prop_assert_eq!(&sharded, &single);
            let spliced = match ShardedSimulator::new(&topo, &routes, cfg, shape)
                .with_threads(threads)
                .with_lookahead(lookahead)
                .run_trace_until(&trace, split)
                .expect("bounded run completes")
            {
                hyppi_netsim::RunOutcome::Finished(stats) => stats,
                hyppi_netsim::RunOutcome::Paused(snap) => {
                    ShardedSimulator::new(&topo, &routes, cfg, shape)
                        .with_threads(threads)
                        .with_lookahead(lookahead)
                        .resume_trace(&snap, &trace)
                        .expect("resumed run completes")
                }
            };
            prop_assert_eq!(&spliced, &single);
        }
    }
}

/// The catalog itself is well-formed: 20 base cells plus the bursty and
/// multi-tenant cells, every (family, loop, workload) combination
/// present exactly once, windowed cells exist — including bursty and
/// tenant cells under W=2 windows.
#[test]
fn catalog_shape() {
    let cells = cells::catalog();
    assert_eq!(cells.len(), 26);
    let names: std::collections::BTreeSet<_> = cells.iter().map(|c| c.name.clone()).collect();
    assert_eq!(names.len(), 26, "cell names are unique");
    for family in ["plain", "express", "faulted", "hyppi", "hyppi-faulted"] {
        for lp in ["open", "closed"] {
            for wl in ["trace", "synthetic"] {
                assert!(
                    names.contains(&format!("{family}/{lp}/{wl}")),
                    "missing cell {family}/{lp}/{wl}"
                );
            }
        }
    }
    for extra in [
        "plain/open/synthetic-onoff",
        "hyppi/open/synthetic-mmpp",
        "hyppi-faulted/open/synthetic-onoff",
        "plain/open/tenant",
        "plain/closed/tenant",
        "hyppi/open/tenant-mmpp",
    ] {
        assert!(names.contains(extra), "missing cell {extra}");
    }
    assert!(
        cells.iter().filter(|c| c.expected_lookahead == 2).count() == 7,
        "open-loop all-optical cells (incl. bursty and tenant) open a W=2 window"
    );
    // Tenant cells carry per-tenant stats lanes; bursty and tenant
    // windowed cells see non-steady arrivals under windowed exchange.
    for cell in cells.iter().filter(|c| c.tenants.is_some()) {
        let stats = cell.run_single();
        assert_eq!(stats.tenants.len(), 2, "{}: tenant lanes", cell.name);
        let lane_sum: u64 = stats.tenants.iter().map(|t| t.flits_delivered).sum();
        assert_eq!(
            lane_sum, stats.flits_delivered,
            "{}: tenant lanes partition the aggregate",
            cell.name
        );
    }
    // Windowed cells are not vacuous: they deliver traffic.
    for cell in cells.iter().filter(|c| c.expected_lookahead == 2) {
        let stats = match cell.workload {
            CellWorkload::Trace { .. } => cell.run_single(),
            CellWorkload::Synthetic { .. } => cell.run_single(),
        };
        assert!(stats.flits_delivered > 0, "{}: vacuous cell", cell.name);
    }
}
