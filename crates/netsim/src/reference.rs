//! The frozen seed engine, kept as the parity oracle.
//!
//! This is the original full-scan simulation engine exactly as seeded:
//! every link pipe and every node is visited every cycle, VC buffers are
//! per-node `Vec<VecDeque<Flit>>` nests, and the only fast-forward is the
//! fully-drained case in [`ReferenceSimulator::run_trace`]. It is **not**
//! maintained for speed — its sole job is to define the golden
//! cycle-level behaviour that the active-set engine in [`crate::sim`]
//! must reproduce bit-for-bit (see `tests/parity.rs`). Any intentional
//! microarchitectural change must be made to both engines, with the
//! parity fixtures re-examined.
//!
//! Do not add optimisations here.

use crate::config::SimConfig;
use crate::flit::{Flit, PacketInfo};
use crate::router::{Emission, VcState};
use crate::sim::SimError;
use crate::stats::SimStats;
use hyppi_topology::{LinkId, NodeId, RoutingTable, Topology};
use hyppi_traffic::{Trace, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Dateline VC class of a packet (see the `router` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcClass {
    Free,
    PreExpress,
    PostExpress,
}

/// One buffered input virtual channel (seed layout: queue-of-flits).
#[derive(Debug, Clone)]
struct InputVc {
    queue: VecDeque<Flit>,
    state: VcState,
}

impl InputVc {
    fn new(depth: usize) -> Self {
        InputVc {
            queue: VecDeque::with_capacity(depth),
            state: VcState::Idle,
        }
    }
}

/// Full router + NIC state of one node (seed layout).
#[derive(Debug, Clone)]
struct NodeState {
    in_links: Vec<LinkId>,
    out_links: Vec<LinkId>,
    route_port: Vec<u8>,
    vcs: Vec<InputVc>,
    out_holder: Vec<Option<(u8, u8)>>,
    sa_rr: Vec<u32>,
    va_rr: Vec<u32>,
    src_queue: VecDeque<u32>,
    emitting: Option<Emission>,
    in_port_used: u32,
    routed_count: u16,
    active_for_out: Vec<u16>,
}

impl NodeState {
    fn new(topo: &Topology, routes: &RoutingTable, node: NodeId, vcs: usize) -> Self {
        let in_links = topo.incoming(node).to_vec();
        let out_links = topo.outgoing(node).to_vec();
        let mut route_port = vec![0u8; topo.num_nodes()];
        for dst in topo.nodes() {
            route_port[dst.index()] = match routes.next_link(node, dst) {
                None => 0,
                Some(lid) => {
                    let pos = out_links
                        .iter()
                        .position(|&l| l == lid)
                        .expect("routing table uses this node's own out links");
                    (pos + 1) as u8
                }
            };
        }
        let in_ports = 1 + in_links.len();
        let out_ports = 1 + out_links.len();
        NodeState {
            in_links,
            out_links,
            route_port,
            vcs: (0..in_ports * vcs).map(|_| InputVc::new(8)).collect(),
            out_holder: vec![None; out_ports * vcs],
            sa_rr: vec![0; out_ports],
            va_rr: vec![0; out_ports],
            src_queue: VecDeque::new(),
            emitting: None,
            in_port_used: 0,
            routed_count: 0,
            active_for_out: vec![0; out_ports],
        }
    }

    fn in_ports(&self) -> usize {
        1 + self.in_links.len()
    }

    fn out_ports(&self) -> usize {
        1 + self.out_links.len()
    }
}

/// The seed full-scan simulator. Same microarchitecture and same public
/// run methods as [`crate::Simulator`], kept only as the parity baseline.
pub struct ReferenceSimulator<'a> {
    topo: &'a Topology,
    routes: &'a RoutingTable,
    /// Healthy-mesh baseline for `SimStats::rerouted_hops` (faulted
    /// topologies only; see [`ReferenceSimulator::with_baseline`]).
    baseline: Option<(&'a Topology, &'a RoutingTable)>,
    cfg: SimConfig,
    dateline: bool,
    nodes: Vec<NodeState>,
    buffered: Vec<u32>,
    credits: Vec<Vec<u16>>,
    pipes: Vec<VecDeque<(u64, u8, Flit)>>,
    in_port_of_link: Vec<u8>,
    packets: Vec<PacketInfo>,
    class_of: Vec<VcClass>,
    express_on_path: Vec<Vec<bool>>,
    pending_credits: Vec<(LinkId, u8)>,
    active_flits: u64,
    pending_sources: u64,
    /// Closed-loop window occupancy per node (packets emitted but not yet
    /// fully ejected); only maintained when `cfg.max_outstanding > 0`.
    outstanding: Vec<u32>,
    /// Acceptance window for `stats.accepted_flits` (the measurement
    /// window of a synthetic run; the whole run for traces).
    accept_from: u64,
    accept_until: u64,
    stats: SimStats,
}

impl<'a> ReferenceSimulator<'a> {
    /// Builds the seed engine for `topo` with `routes` (X-then-Y).
    pub fn new(topo: &'a Topology, routes: &'a RoutingTable, cfg: SimConfig) -> Self {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        let dateline = topo.count_links(|l| l.is_express()) > 0;
        let nodes: Vec<NodeState> = topo
            .nodes()
            .map(|n| NodeState::new(topo, routes, n, cfg.vcs))
            .collect();
        let mut express_on_path: Vec<Vec<bool>> = Vec::new();
        if dateline {
            express_on_path.reserve(topo.num_nodes());
            for dst in topo.nodes() {
                let mut table = vec![false; topo.num_nodes()];
                let mut visited = vec![false; topo.num_nodes()];
                visited[dst.index()] = true;
                for start in topo.nodes() {
                    if visited[start.index()] {
                        continue;
                    }
                    let mut chain = Vec::new();
                    let mut at = start;
                    while !visited[at.index()] {
                        chain.push(at);
                        // Unreachable pairs (faulted topologies) have no
                        // next hop; the chain inherits `false` below.
                        let Some(lid) = routes.next_link(at, dst) else {
                            break;
                        };
                        let link = topo.link(lid);
                        if link.is_express() {
                            for &n in &chain {
                                table[n.index()] = true;
                                visited[n.index()] = true;
                            }
                            chain.clear();
                        }
                        at = link.dst;
                    }
                    let tail = table[at.index()];
                    for &n in &chain {
                        table[n.index()] = tail;
                        visited[n.index()] = true;
                    }
                }
                express_on_path.push(table);
            }
        }
        let mut in_port_of_link = vec![0u8; topo.links().len()];
        for (node, state) in topo.nodes().zip(&nodes) {
            let _ = node;
            for (i, &lid) in state.in_links.iter().enumerate() {
                in_port_of_link[lid.index()] = (i + 1) as u8;
            }
        }
        ReferenceSimulator {
            topo,
            routes,
            baseline: None,
            cfg,
            dateline,
            buffered: vec![0; nodes.len()],
            nodes,
            credits: vec![vec![cfg.buffer_depth as u16; cfg.vcs]; topo.links().len()],
            pipes: vec![VecDeque::new(); topo.links().len()],
            in_port_of_link,
            packets: Vec::new(),
            class_of: Vec::new(),
            express_on_path,
            pending_credits: Vec::new(),
            active_flits: 0,
            pending_sources: 0,
            outstanding: vec![0; topo.num_nodes()],
            accept_from: 0,
            accept_until: u64::MAX,
            stats: SimStats::new(topo.links().len(), topo.num_nodes()),
        }
    }

    /// Installs the healthy-mesh baseline (topology + routes the faults
    /// were applied to) so admitted packets are charged
    /// `SimStats::rerouted_hops` for detours versus the healthy route.
    pub fn with_baseline(mut self, topo: &'a Topology, routes: &'a RoutingTable) -> Self {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        assert_eq!(topo.num_nodes(), self.topo.num_nodes());
        self.baseline = Some((topo, routes));
        self
    }

    /// Extra hops the faulted route src → dst takes versus the healthy
    /// baseline route (clamped at zero; zero with no baseline installed).
    fn extra_hops(&self, src: NodeId, dst: NodeId) -> u64 {
        let Some((base_topo, base_routes)) = self.baseline else {
            return 0;
        };
        if src == dst || !self.routes.reachable(src, dst) {
            return 0;
        }
        let faulted = u64::from(self.routes.hops(self.topo, src, dst));
        let healthy = u64::from(base_routes.hops(base_topo, src, dst));
        faulted.saturating_sub(healthy)
    }

    /// Records the post-admission NIC backlog of `node` into the peak
    /// gauge (seed-engine twin of the active-set engine's `admit`).
    fn note_backlog(&mut self, node: usize) {
        let backlog = self.nodes[node].src_queue.len() as u32
            + u32::from(self.nodes[node].emitting.is_some());
        if backlog > self.stats.peak_backlog[node] {
            self.stats.peak_backlog[node] = backlog;
        }
    }

    #[inline]
    fn vc_range(&self, class: VcClass) -> std::ops::Range<usize> {
        if !self.dateline {
            return 0..self.cfg.vcs;
        }
        let b_start = self.cfg.vcs - (self.cfg.vcs / 4).max(1);
        match class {
            VcClass::Free | VcClass::PreExpress => 0..b_start,
            VcClass::PostExpress => b_start..self.cfg.vcs,
        }
    }

    /// [`Self::vc_range`] restricted to a fault-degraded link: the lowest
    /// `max(1, half)` VCs of the class — every dateline class stays
    /// usable, so the class-B escape argument is untouched.
    #[inline]
    fn degraded_vc_range(&self, class: VcClass) -> std::ops::Range<usize> {
        if !self.dateline {
            return 0..(self.cfg.vcs / 2).max(1);
        }
        let b_start = self.cfg.vcs - (self.cfg.vcs / 4).max(1);
        match class {
            VcClass::Free | VcClass::PreExpress => 0..(b_start / 2).max(1),
            VcClass::PostExpress => b_start..b_start + ((self.cfg.vcs - b_start) / 2).max(1),
        }
    }

    fn route_uses_express(&self, src: NodeId, dst: NodeId) -> bool {
        self.dateline && src != dst && self.express_on_path[dst.index()][src.index()]
    }

    #[inline]
    fn initial_class(&self, src: NodeId, dst: NodeId) -> VcClass {
        if self.route_uses_express(src, dst) {
            VcClass::PreExpress
        } else {
            VcClass::Free
        }
    }

    /// Runs a trace to completion (seed algorithm).
    pub fn run_trace(mut self, trace: &Trace) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.topo.num_nodes());
        let mut now = 0u64;
        let mut next_event = 0usize;
        loop {
            while next_event < trace.events.len() && trace.events[next_event].cycle <= now {
                let e = &trace.events[next_event];
                next_event += 1;
                // Faulted topologies: traffic to or from a dead router has
                // no route — dropped at admission.
                if !self.routes.reachable(e.src, e.dst) {
                    self.stats.unreachable_pairs += 1;
                    continue;
                }
                let pid = self.packets.len() as u32;
                self.packets.push(PacketInfo {
                    src: e.src,
                    dst: e.dst,
                    inject_cycle: e.cycle,
                    flits: e.flits,
                    ejected: 0,
                });
                self.class_of.push(self.initial_class(e.src, e.dst));
                self.stats.rerouted_hops += self.extra_hops(e.src, e.dst);
                self.nodes[e.src.index()].src_queue.push_back(pid);
                self.pending_sources += 1;
                self.note_backlog(e.src.index());
            }

            let drained = self.active_flits == 0 && self.pending_sources == 0;
            if drained {
                if next_event == trace.events.len() {
                    break;
                }
                now = trace.events[next_event].cycle;
                continue;
            }

            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                let stuck = self.packets.iter().filter(|p| !p.is_complete()).count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(self.stats)
    }

    /// Runs Bernoulli-injected synthetic traffic (seed algorithm).
    pub fn run_synthetic(
        mut self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        assert_eq!(matrix.num_nodes(), self.topo.num_nodes());
        self.accept_from = warmup;
        self.accept_until = warmup + measure;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.topo.num_nodes();
        let mut rates = Vec::with_capacity(n);
        let mut cdfs: Vec<Vec<(f64, NodeId)>> = Vec::with_capacity(n);
        for src in self.topo.nodes() {
            let rate = matrix.injection_rate(src);
            let mut cdf = Vec::new();
            if rate > 0.0 {
                let mut acc = 0.0;
                for dst in self.topo.nodes() {
                    let r = matrix.rate(src, dst);
                    if r > 0.0 {
                        acc += r / rate;
                        cdf.push((acc, dst));
                    }
                }
            }
            rates.push(rate);
            cdfs.push(cdf);
        }

        let mut now = 0u64;
        let inject_until = warmup + measure;
        loop {
            if now < inject_until {
                for src in 0..n {
                    if rates[src] > 0.0 && rng.gen::<f64>() < rates[src] {
                        let u: f64 = rng.gen();
                        // Seed behaviour: linear scan of the per-source CDF.
                        let dst = cdfs[src]
                            .iter()
                            .find(|&&(acc, _)| u <= acc)
                            .map(|&(_, d)| d)
                            .unwrap_or(cdfs[src].last().expect("nonempty cdf").1);
                        if dst == NodeId(src as u16) {
                            continue;
                        }
                        // The RNG draws already happened, so dropping an
                        // unreachable pair keeps the sequence aligned with
                        // the active-set engines.
                        if !self.routes.reachable(NodeId(src as u16), dst) {
                            self.stats.unreachable_pairs += 1;
                            continue;
                        }
                        let pid = self.packets.len() as u32;
                        let measured = now >= warmup;
                        self.packets.push(PacketInfo {
                            src: NodeId(src as u16),
                            dst,
                            inject_cycle: if measured { now } else { u64::MAX },
                            flits: 1,
                            ejected: 0,
                        });
                        self.class_of
                            .push(self.initial_class(NodeId(src as u16), dst));
                        self.stats.rerouted_hops += self.extra_hops(NodeId(src as u16), dst);
                        self.nodes[src].src_queue.push_back(pid);
                        self.pending_sources += 1;
                        self.note_backlog(src);
                    }
                }
            } else if self.active_flits == 0 && self.pending_sources == 0 {
                break;
            }
            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                let stuck = self.packets.iter().filter(|p| !p.is_complete()).count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(self.stats)
    }

    fn step(&mut self, now: u64) {
        self.deliver_link_arrivals(now);
        self.emit_from_sources(now);
        self.route_compute();
        self.allocate_vcs();
        self.switch_traversal(now);
        for (lid, vc) in self.pending_credits.drain(..) {
            self.credits[lid.index()][usize::from(vc)] += 1;
        }
    }

    /// Stage 1 (seed): scan every link pipe for due arrivals.
    fn deliver_link_arrivals(&mut self, now: u64) {
        let dwell = self.cfg.pipeline_dwell();
        for lid in 0..self.pipes.len() {
            while let Some(&(arrive, vc, flit)) = self.pipes[lid].front() {
                if arrive > now {
                    break;
                }
                self.pipes[lid].pop_front();
                let link = self.topo.link(LinkId(lid as u32));
                let node = link.dst.index();
                let in_port = usize::from(self.in_port_of_link[lid]);
                let slot = in_port * self.cfg.vcs + usize::from(vc);
                let mut f = flit;
                f.ready = now + 1 + dwell;
                self.nodes[node].vcs[slot].queue.push_back(f);
                self.buffered[node] += 1;
            }
        }
    }

    /// Stage 2 (seed): scan every node for NIC emission.
    fn emit_from_sources(&mut self, now: u64) {
        let dwell = self.cfg.pipeline_dwell();
        let vcs = self.cfg.vcs;
        let window = self.cfg.max_outstanding;
        for node in 0..self.nodes.len() {
            self.nodes[node].in_port_used = 0;
            if self.nodes[node].emitting.is_none() {
                // Closed loop: a full window parks the source until an
                // ejection returns a source credit.
                let window_open = window == 0 || (self.outstanding[node] as usize) < window;
                if let Some(&pid) = self.nodes[node].src_queue.front() {
                    if window_open {
                        let info = self.packets[pid as usize];
                        let range = self.vc_range(self.class_of[pid as usize]);
                        let pick = range
                            .clone()
                            .find(|&v| self.nodes[node].vcs[v].queue.len() < self.cfg.buffer_depth);
                        if let Some(v) = pick {
                            self.nodes[node].src_queue.pop_front();
                            let mut inject_cycle = info.inject_cycle;
                            if window > 0 {
                                self.outstanding[node] += 1;
                                if self.outstanding[node] > self.stats.peak_outstanding[node] {
                                    self.stats.peak_outstanding[node] = self.outstanding[node];
                                }
                                // Closed-loop latency is network latency:
                                // the measured clock restarts at emission.
                                if inject_cycle != u64::MAX {
                                    inject_cycle = now;
                                    self.packets[pid as usize].inject_cycle = now;
                                }
                            }
                            self.nodes[node].emitting = Some(Emission {
                                packet: pid,
                                emitted: 0,
                                total: info.flits,
                                vc: v as u8,
                                dst: info.dst,
                                inject_cycle,
                            });
                        }
                    }
                }
            }
            if let Some(mut em) = self.nodes[node].emitting {
                let slot = usize::from(em.vc);
                debug_assert!(slot < vcs);
                if self.nodes[node].vcs[slot].queue.len() < self.cfg.buffer_depth {
                    let flit = Flit {
                        packet: em.packet,
                        dst: em.dst,
                        is_head: em.emitted == 0,
                        is_tail: em.emitted + 1 == em.total,
                        ready: now + dwell,
                    };
                    self.nodes[node].vcs[slot].queue.push_back(flit);
                    self.buffered[node] += 1;
                    self.active_flits += 1;
                    self.stats.flits_injected += 1;
                    em.emitted += 1;
                    self.nodes[node].emitting = if em.emitted == em.total {
                        self.pending_sources -= 1;
                        None
                    } else {
                        Some(em)
                    };
                }
            }
        }
    }

    /// Stage 3 (seed): scan every VC of every buffered node for RC.
    fn route_compute(&mut self) {
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            let st = &mut self.nodes[node];
            for vc in st.vcs.iter_mut() {
                if vc.state == VcState::Idle {
                    if let Some(head) = vc.queue.front() {
                        debug_assert!(head.is_head, "queue head after Idle must be a head flit");
                        vc.state = VcState::Routed {
                            out_port: st.route_port[head.dst.index()],
                        };
                        st.routed_count += 1;
                    }
                }
            }
        }
    }

    /// Stage 4 (seed): VC allocation, round-robin per output port.
    fn allocate_vcs(&mut self) {
        let vcs = self.cfg.vcs;
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            if self.nodes[node].routed_count == 0 {
                continue;
            }
            let total_in_vcs = self.nodes[node].in_ports() * vcs;
            for p in 0..self.nodes[node].out_ports() {
                if self.nodes[node].routed_count == 0 {
                    break;
                }
                // Fault-degraded links expose only the low half of each
                // class's VCs (the ejection port never degrades).
                let degraded = p > 0 && self.topo.link(self.nodes[node].out_links[p - 1]).degraded;
                let start = self.nodes[node].va_rr[p] as usize;
                for k in 0..total_in_vcs {
                    let idx = (start + k) % total_in_vcs;
                    let VcState::Routed { out_port } = self.nodes[node].vcs[idx].state else {
                        continue;
                    };
                    if usize::from(out_port) != p {
                        continue;
                    }
                    let Some(head) = self.nodes[node].vcs[idx].queue.front() else {
                        continue;
                    };
                    let head_packet = head.packet;
                    let class = self.class_of[head_packet as usize];
                    let range = if degraded {
                        self.degraded_vc_range(class)
                    } else {
                        self.vc_range(class)
                    };
                    let free = range
                        .clone()
                        .find(|&v| self.nodes[node].out_holder[p * vcs + v].is_none());
                    if let Some(ovc) = free {
                        let in_port = (idx / vcs) as u8;
                        let in_vc = (idx % vcs) as u8;
                        self.nodes[node].out_holder[p * vcs + ovc] = Some((in_port, in_vc));
                        self.nodes[node].vcs[idx].state = VcState::Active {
                            out_port: p as u8,
                            out_vc: ovc as u8,
                        };
                        self.nodes[node].routed_count -= 1;
                        self.nodes[node].active_for_out[p] += 1;
                        self.nodes[node].va_rr[p] = ((idx + 1) % total_in_vcs) as u32;
                    }
                }
            }
        }
    }

    /// Stage 5 (seed): switch allocation + traversal.
    fn switch_traversal(&mut self, now: u64) {
        let vcs = self.cfg.vcs;
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            let out_ports = self.nodes[node].out_ports();
            let total_in_vcs = self.nodes[node].in_ports() * vcs;
            for p in 0..out_ports {
                if self.nodes[node].active_for_out[p] == 0 {
                    continue;
                }
                let start = self.nodes[node].sa_rr[p] as usize;
                let mut winner: Option<usize> = None;
                for k in 0..total_in_vcs {
                    let idx = (start + k) % total_in_vcs;
                    let VcState::Active { out_port, out_vc } = self.nodes[node].vcs[idx].state
                    else {
                        continue;
                    };
                    if usize::from(out_port) != p {
                        continue;
                    }
                    let in_port = idx / vcs;
                    if self.nodes[node].in_port_used & (1 << in_port) != 0 {
                        continue;
                    }
                    let Some(head) = self.nodes[node].vcs[idx].queue.front() else {
                        continue;
                    };
                    if head.ready > now {
                        continue;
                    }
                    if p > 0 {
                        let lid = self.nodes[node].out_links[p - 1];
                        if self.credits[lid.index()][usize::from(out_vc)] == 0 {
                            continue;
                        }
                    }
                    winner = Some(idx);
                    break;
                }
                let Some(idx) = winner else { continue };
                self.nodes[node].sa_rr[p] = ((idx + 1) % total_in_vcs) as u32;
                let VcState::Active { out_vc, .. } = self.nodes[node].vcs[idx].state else {
                    unreachable!("winner is Active");
                };
                let flit = self.nodes[node].vcs[idx]
                    .queue
                    .pop_front()
                    .expect("winner has a flit");
                self.buffered[node] -= 1;
                let in_port = idx / vcs;
                self.nodes[node].in_port_used |= 1 << in_port;
                self.stats.router_flits[node] += 1;

                if in_port > 0 {
                    let up = self.nodes[node].in_links[in_port - 1];
                    self.pending_credits.push((up, (idx % vcs) as u8));
                }

                if p == 0 {
                    let pid = flit.packet as usize;
                    self.packets[pid].ejected += 1;
                    self.stats.flits_delivered += 1;
                    if now >= self.accept_from && now < self.accept_until {
                        self.stats.accepted_flits += 1;
                    }
                    self.active_flits -= 1;
                    if self.packets[pid].is_complete() {
                        let info = self.packets[pid];
                        if info.inject_cycle != u64::MAX {
                            self.stats
                                .record_packet(info.flits, now + 1 - info.inject_cycle);
                        }
                        // Closed loop: the window slot frees; first
                        // observable next cycle (emission precedes switch
                        // traversal within a cycle).
                        if self.cfg.max_outstanding > 0 {
                            debug_assert!(self.outstanding[info.src.index()] > 0);
                            self.outstanding[info.src.index()] -= 1;
                        }
                    }
                } else {
                    let lid = self.nodes[node].out_links[p - 1];
                    let link = self.topo.link(lid);
                    self.credits[lid.index()][usize::from(out_vc)] -= 1;
                    if link.is_express() {
                        self.class_of[flit.packet as usize] = VcClass::PostExpress;
                    }
                    self.stats.link_flits[lid.index()] += 1;
                    self.pipes[lid.index()].push_back((
                        now + u64::from(link.latency_cycles),
                        out_vc,
                        flit,
                    ));
                }

                if flit.is_tail {
                    self.nodes[node].out_holder[p * vcs + usize::from(out_vc)] = None;
                    self.nodes[node].vcs[idx].state = VcState::Idle;
                    self.nodes[node].active_for_out[p] -= 1;
                }
            }
        }
    }
}
