//! The frozen seed engine, kept as the parity oracle.
//!
//! This is the original full-scan simulation engine exactly as seeded:
//! every link pipe and every node is visited every cycle, VC buffers are
//! per-node `Vec<VecDeque<Flit>>` nests, and the only fast-forward is the
//! fully-drained case in [`ReferenceSimulator::run_trace`]. It is **not**
//! maintained for speed — its sole job is to define the golden
//! cycle-level behaviour that the active-set engine in [`crate::sim`]
//! must reproduce bit-for-bit (see `tests/parity.rs`). Any intentional
//! microarchitectural change must be made to both engines, with the
//! parity fixtures re-examined.
//!
//! Do not add optimisations here.

use crate::config::SimConfig;
use crate::flit::{Flit, PacketInfo};
use crate::router::{Emission, VcState};
use crate::shard::RunCursor;
use crate::sim::{rescan_trace_cursor, RunOutcome, SimError};
use crate::snapshot::{
    plan_fingerprint, synthetic_fingerprint, trace_fingerprint, EmissionImage, EventImage,
    FlitImage, GlobalState, NodeImage, PacketImage, SlotImage, Snapshot, SnapshotError,
};
use crate::stats::SimStats;
use hyppi_topology::{LinkId, NodeId, RoutingTable, Topology};
use hyppi_traffic::{BurstState, TenantMap, Trace, TrafficMatrix};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// Dateline VC class of a packet (see the `router` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcClass {
    Free,
    PreExpress,
    PostExpress,
}

/// One buffered input virtual channel (seed layout: queue-of-flits).
#[derive(Debug, Clone)]
struct InputVc {
    queue: VecDeque<Flit>,
    state: VcState,
}

impl InputVc {
    fn new(depth: usize) -> Self {
        InputVc {
            queue: VecDeque::with_capacity(depth),
            state: VcState::Idle,
        }
    }
}

/// Full router + NIC state of one node (seed layout).
#[derive(Debug, Clone)]
struct NodeState {
    in_links: Vec<LinkId>,
    out_links: Vec<LinkId>,
    route_port: Vec<u8>,
    vcs: Vec<InputVc>,
    out_holder: Vec<Option<(u8, u8)>>,
    sa_rr: Vec<u32>,
    va_rr: Vec<u32>,
    src_queue: VecDeque<u32>,
    emitting: Option<Emission>,
    in_port_used: u32,
    routed_count: u16,
    active_for_out: Vec<u16>,
    /// Packet holding each VC's output grant, written at VC allocation
    /// (valid while the VC's state is `Active`, stale otherwise). Pure
    /// snapshot bookkeeping — covers the corner where an active VC's
    /// buffered flits have all been forwarded; never read by the
    /// simulation stages.
    active_pid: Vec<u32>,
}

impl NodeState {
    fn new(topo: &Topology, routes: &RoutingTable, node: NodeId, vcs: usize) -> Self {
        let in_links = topo.incoming(node).to_vec();
        let out_links = topo.outgoing(node).to_vec();
        let mut route_port = vec![0u8; topo.num_nodes()];
        for dst in topo.nodes() {
            route_port[dst.index()] = match routes.next_link(node, dst) {
                None => 0,
                Some(lid) => {
                    let pos = out_links
                        .iter()
                        .position(|&l| l == lid)
                        .expect("routing table uses this node's own out links");
                    (pos + 1) as u8
                }
            };
        }
        let in_ports = 1 + in_links.len();
        let out_ports = 1 + out_links.len();
        NodeState {
            in_links,
            out_links,
            route_port,
            vcs: (0..in_ports * vcs).map(|_| InputVc::new(8)).collect(),
            out_holder: vec![None; out_ports * vcs],
            sa_rr: vec![0; out_ports],
            va_rr: vec![0; out_ports],
            src_queue: VecDeque::new(),
            emitting: None,
            in_port_used: 0,
            routed_count: 0,
            active_for_out: vec![0; out_ports],
            active_pid: vec![u32::MAX; in_ports * vcs],
        }
    }

    fn in_ports(&self) -> usize {
        1 + self.in_links.len()
    }

    fn out_ports(&self) -> usize {
        1 + self.out_links.len()
    }
}

/// The seed full-scan simulator. Same microarchitecture and same public
/// run methods as [`crate::Simulator`], kept only as the parity baseline.
pub struct ReferenceSimulator<'a> {
    topo: &'a Topology,
    routes: &'a RoutingTable,
    /// Healthy-mesh baseline for `SimStats::rerouted_hops` (faulted
    /// topologies only; see [`ReferenceSimulator::with_baseline`]).
    baseline: Option<(&'a Topology, &'a RoutingTable)>,
    cfg: SimConfig,
    dateline: bool,
    nodes: Vec<NodeState>,
    buffered: Vec<u32>,
    credits: Vec<Vec<u16>>,
    pipes: Vec<VecDeque<(u64, u8, Flit)>>,
    in_port_of_link: Vec<u8>,
    packets: Vec<PacketInfo>,
    class_of: Vec<VcClass>,
    express_on_path: Vec<Vec<bool>>,
    pending_credits: Vec<(LinkId, u8)>,
    active_flits: u64,
    pending_sources: u64,
    /// Closed-loop window occupancy per node (packets emitted but not yet
    /// fully ejected); only maintained when `cfg.max_outstanding > 0`.
    outstanding: Vec<u32>,
    /// Acceptance window for `stats.accepted_flits` (the measurement
    /// window of a synthetic run; the whole run for traces).
    accept_from: u64,
    accept_until: u64,
    /// Packets completed before a restore and therefore dropped from
    /// `packets` (snapshot bookkeeping: keeps the exported admission and
    /// completion totals exact across save/restore cycles).
    dropped_packets: u64,
    /// Node → tenant map of a multi-tenant run (statistics bookkeeping
    /// only — mirrors the active-set engines' per-tenant lanes).
    tenants: Option<&'a TenantMap>,
    stats: SimStats,
}

impl<'a> ReferenceSimulator<'a> {
    /// Builds the seed engine for `topo` with `routes` (X-then-Y).
    pub fn new(topo: &'a Topology, routes: &'a RoutingTable, cfg: SimConfig) -> Self {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        let dateline = topo.count_links(|l| l.is_express()) > 0;
        let nodes: Vec<NodeState> = topo
            .nodes()
            .map(|n| NodeState::new(topo, routes, n, cfg.vcs))
            .collect();
        let mut express_on_path: Vec<Vec<bool>> = Vec::new();
        if dateline {
            express_on_path.reserve(topo.num_nodes());
            for dst in topo.nodes() {
                let mut table = vec![false; topo.num_nodes()];
                let mut visited = vec![false; topo.num_nodes()];
                visited[dst.index()] = true;
                for start in topo.nodes() {
                    if visited[start.index()] {
                        continue;
                    }
                    let mut chain = Vec::new();
                    let mut at = start;
                    while !visited[at.index()] {
                        chain.push(at);
                        // Unreachable pairs (faulted topologies) have no
                        // next hop; the chain inherits `false` below.
                        let Some(lid) = routes.next_link(at, dst) else {
                            break;
                        };
                        let link = topo.link(lid);
                        if link.is_express() {
                            for &n in &chain {
                                table[n.index()] = true;
                                visited[n.index()] = true;
                            }
                            chain.clear();
                        }
                        at = link.dst;
                    }
                    let tail = table[at.index()];
                    for &n in &chain {
                        table[n.index()] = tail;
                        visited[n.index()] = true;
                    }
                }
                express_on_path.push(table);
            }
        }
        let mut in_port_of_link = vec![0u8; topo.links().len()];
        for (node, state) in topo.nodes().zip(&nodes) {
            let _ = node;
            for (i, &lid) in state.in_links.iter().enumerate() {
                in_port_of_link[lid.index()] = (i + 1) as u8;
            }
        }
        ReferenceSimulator {
            topo,
            routes,
            baseline: None,
            cfg,
            dateline,
            buffered: vec![0; nodes.len()],
            nodes,
            credits: vec![vec![cfg.buffer_depth as u16; cfg.vcs]; topo.links().len()],
            pipes: vec![VecDeque::new(); topo.links().len()],
            in_port_of_link,
            packets: Vec::new(),
            class_of: Vec::new(),
            express_on_path,
            pending_credits: Vec::new(),
            active_flits: 0,
            pending_sources: 0,
            outstanding: vec![0; topo.num_nodes()],
            accept_from: 0,
            accept_until: u64::MAX,
            dropped_packets: 0,
            tenants: None,
            stats: SimStats::new(topo.links().len(), topo.num_nodes()),
        }
    }

    /// Installs a node → tenant map: the run's [`SimStats`] then carries
    /// per-tenant lanes (see [`crate::TenantStats`]), bit-for-bit those
    /// of the active-set engines.
    pub fn with_tenants(mut self, map: &'a TenantMap) -> Self {
        assert_eq!(map.tenant_of_node.len(), self.topo.num_nodes());
        self.tenants = Some(map);
        self.stats.init_tenants(map.tenants);
        self
    }

    /// Installs the healthy-mesh baseline (topology + routes the faults
    /// were applied to) so admitted packets are charged
    /// `SimStats::rerouted_hops` for detours versus the healthy route.
    pub fn with_baseline(mut self, topo: &'a Topology, routes: &'a RoutingTable) -> Self {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        assert_eq!(topo.num_nodes(), self.topo.num_nodes());
        self.baseline = Some((topo, routes));
        self
    }

    /// Extra hops the faulted route src → dst takes versus the healthy
    /// baseline route (clamped at zero; zero with no baseline installed).
    fn extra_hops(&self, src: NodeId, dst: NodeId) -> u64 {
        let Some((base_topo, base_routes)) = self.baseline else {
            return 0;
        };
        if src == dst || !self.routes.reachable(src, dst) {
            return 0;
        }
        let faulted = u64::from(self.routes.hops(self.topo, src, dst));
        let healthy = u64::from(base_routes.hops(base_topo, src, dst));
        faulted.saturating_sub(healthy)
    }

    /// Records the post-admission NIC backlog of `node` into the peak
    /// gauge (seed-engine twin of the active-set engine's `admit`).
    fn note_backlog(&mut self, node: usize) {
        let backlog = self.nodes[node].src_queue.len() as u32
            + u32::from(self.nodes[node].emitting.is_some());
        if backlog > self.stats.peak_backlog[node] {
            self.stats.peak_backlog[node] = backlog;
        }
    }

    #[inline]
    fn vc_range(&self, class: VcClass) -> std::ops::Range<usize> {
        if !self.dateline {
            return 0..self.cfg.vcs;
        }
        let b_start = self.cfg.vcs - (self.cfg.vcs / 4).max(1);
        match class {
            VcClass::Free | VcClass::PreExpress => 0..b_start,
            VcClass::PostExpress => b_start..self.cfg.vcs,
        }
    }

    /// [`Self::vc_range`] restricted to a fault-degraded link: the lowest
    /// `max(1, half)` VCs of the class — every dateline class stays
    /// usable, so the class-B escape argument is untouched.
    #[inline]
    fn degraded_vc_range(&self, class: VcClass) -> std::ops::Range<usize> {
        if !self.dateline {
            return 0..(self.cfg.vcs / 2).max(1);
        }
        let b_start = self.cfg.vcs - (self.cfg.vcs / 4).max(1);
        match class {
            VcClass::Free | VcClass::PreExpress => 0..(b_start / 2).max(1),
            VcClass::PostExpress => b_start..b_start + ((self.cfg.vcs - b_start) / 2).max(1),
        }
    }

    fn route_uses_express(&self, src: NodeId, dst: NodeId) -> bool {
        self.dateline && src != dst && self.express_on_path[dst.index()][src.index()]
    }

    #[inline]
    fn initial_class(&self, src: NodeId, dst: NodeId) -> VcClass {
        if self.route_uses_express(src, dst) {
            VcClass::PreExpress
        } else {
            VcClass::Free
        }
    }

    /// Runs a trace to completion (seed algorithm).
    pub fn run_trace(self, trace: &Trace) -> Result<SimStats, SimError> {
        Ok(self
            .run_trace_span(trace, RunCursor::fresh_for_trace(), u64::MAX)?
            .expect_finished())
    }

    /// Runs a trace, pausing at the cycle boundary `stop_at`; the seed
    /// engine's twin of [`crate::Simulator::run_trace_until`].
    pub fn run_trace_until(self, trace: &Trace, stop_at: u64) -> Result<RunOutcome, SimError> {
        self.run_trace_span(trace, RunCursor::fresh_for_trace(), stop_at)
    }

    /// Resumes a paused trace run from `snap`, itself pausing again at
    /// `stop_at` (pass `u64::MAX` to run to completion). Accepts
    /// snapshots from any engine — the byte format is engine- and
    /// partition-independent.
    pub fn resume_trace_until(
        self,
        snap: &Snapshot,
        trace: &Trace,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        let (sim, mut cursor) = self.restore_from(snap, trace_fingerprint(trace))?;
        if snap.workload_hash() == 0 {
            cursor.next_event = rescan_trace_cursor(trace, cursor.now);
        }
        sim.run_trace_span(trace, cursor, stop_at)
    }

    /// Resumes a paused trace run to completion.
    pub fn resume_trace(self, snap: &Snapshot, trace: &Trace) -> Result<SimStats, SimError> {
        Ok(self
            .resume_trace_until(snap, trace, u64::MAX)?
            .expect_finished())
    }

    /// The trace run loop (seed algorithm, restartable): drives cycles
    /// `cursor.now ..` until the workload drains or the `stop_at`
    /// boundary is reached — pausing serializes the engine state. The
    /// cycle-by-cycle behaviour with `stop_at = u64::MAX` is exactly the
    /// seed loop's.
    fn run_trace_span(
        mut self,
        trace: &Trace,
        cursor: RunCursor,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.topo.num_nodes());
        let mut now = cursor.now;
        let mut next_event = cursor.next_event as usize;
        loop {
            if now >= stop_at {
                let pause = RunCursor {
                    now,
                    next_event: next_event as u64,
                    rng: cursor.rng,
                };
                let snap = self.snapshot_at(&pause, trace_fingerprint(trace));
                return Ok(RunOutcome::Paused(snap));
            }
            while next_event < trace.events.len() && trace.events[next_event].cycle <= now {
                let e = &trace.events[next_event];
                next_event += 1;
                // Faulted topologies: traffic to or from a dead router has
                // no route — dropped at admission.
                if !self.routes.reachable(e.src, e.dst) {
                    self.stats.unreachable_pairs += 1;
                    continue;
                }
                let pid = self.packets.len() as u32;
                self.packets.push(PacketInfo {
                    src: e.src,
                    dst: e.dst,
                    inject_cycle: e.cycle,
                    flits: e.flits,
                    ejected: 0,
                });
                self.class_of.push(self.initial_class(e.src, e.dst));
                self.stats.rerouted_hops += self.extra_hops(e.src, e.dst);
                self.nodes[e.src.index()].src_queue.push_back(pid);
                self.pending_sources += 1;
                self.note_backlog(e.src.index());
            }

            let drained = self.active_flits == 0 && self.pending_sources == 0;
            if drained {
                if next_event == trace.events.len() {
                    break;
                }
                // A bounded run never jumps past its stop cycle: the
                // loop-top check turns the clamped landing into a clean
                // pause (no-op when `stop_at` is `u64::MAX`).
                now = trace.events[next_event].cycle.min(stop_at);
                continue;
            }

            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                let stuck = self.packets.iter().filter(|p| !p.is_complete()).count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(RunOutcome::Finished(self.stats))
    }

    /// Runs Bernoulli-injected synthetic traffic (seed algorithm).
    pub fn run_synthetic(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        Ok(self
            .run_synthetic_span(
                matrix,
                warmup,
                measure,
                seed,
                RunCursor::fresh_for_synthetic(seed),
                u64::MAX,
            )?
            .expect_finished())
    }

    /// Runs synthetic traffic, pausing at the cycle boundary `stop_at`;
    /// the seed engine's twin of
    /// [`crate::Simulator::run_synthetic_until`].
    pub fn run_synthetic_until(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        self.run_synthetic_span(
            matrix,
            warmup,
            measure,
            seed,
            RunCursor::fresh_for_synthetic(seed),
            stop_at,
        )
    }

    /// Resumes a paused synthetic run to completion; same
    /// workload-fingerprint rules as
    /// [`crate::Simulator::resume_synthetic`] (the traffic matrix is
    /// deliberately not pinned — warm-start rate sweeps resume one
    /// post-warmup snapshot under many matrices).
    pub fn resume_synthetic(
        self,
        snap: &Snapshot,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        let (sim, cursor) =
            self.restore_from(snap, synthetic_fingerprint(warmup, measure, seed))?;
        Ok(sim
            .run_synthetic_span(matrix, warmup, measure, seed, cursor, u64::MAX)?
            .expect_finished())
    }

    /// The synthetic run loop (seed algorithm, restartable); see
    /// [`Self::run_trace_span`] for the pause protocol.
    fn run_synthetic_span(
        mut self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
        cursor: RunCursor,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        assert_eq!(matrix.num_nodes(), self.topo.num_nodes());
        self.accept_from = warmup;
        self.accept_until = warmup + measure;
        let mut rng = StdRng::from_state(cursor.rng);
        let n = self.topo.num_nodes();
        let mut rates = Vec::with_capacity(n);
        let mut cdfs: Vec<Vec<(f64, NodeId)>> = Vec::with_capacity(n);
        for src in self.topo.nodes() {
            let rate = matrix.injection_rate(src);
            let mut cdf = Vec::new();
            if rate > 0.0 {
                let mut acc = 0.0;
                for dst in self.topo.nodes() {
                    let r = matrix.rate(src, dst);
                    if r > 0.0 {
                        acc += r / rate;
                        cdf.push((acc, dst));
                    }
                }
            }
            rates.push(rate);
            cdfs.push(cdf);
        }

        let mut now = cursor.now;
        let inject_until = warmup + measure;
        // Burst factors are a pure per-(seed, node, cycle) function — the
        // gate product below is the same expression the active-set
        // engines evaluate, so bursty runs stay bit-for-bit.
        let mut burst = BurstState::new(self.cfg.burst, seed, n);
        loop {
            if now >= stop_at {
                let pause = RunCursor {
                    now,
                    next_event: 0,
                    rng: rng.state(),
                };
                let snap = self.snapshot_at(&pause, synthetic_fingerprint(warmup, measure, seed));
                return Ok(RunOutcome::Paused(snap));
            }
            if now < inject_until {
                let factors = burst.factors_at(now);
                for src in 0..n {
                    if rates[src] > 0.0 && rng.gen::<f64>() < rates[src] * factors[src] {
                        let u: f64 = rng.gen();
                        // Seed behaviour: linear scan of the per-source CDF.
                        let dst = cdfs[src]
                            .iter()
                            .find(|&&(acc, _)| u <= acc)
                            .map(|&(_, d)| d)
                            .unwrap_or(cdfs[src].last().expect("nonempty cdf").1);
                        if dst == NodeId(src as u16) {
                            continue;
                        }
                        // The RNG draws already happened, so dropping an
                        // unreachable pair keeps the sequence aligned with
                        // the active-set engines.
                        if !self.routes.reachable(NodeId(src as u16), dst) {
                            self.stats.unreachable_pairs += 1;
                            continue;
                        }
                        let pid = self.packets.len() as u32;
                        let measured = now >= warmup;
                        self.packets.push(PacketInfo {
                            src: NodeId(src as u16),
                            dst,
                            inject_cycle: if measured { now } else { u64::MAX },
                            flits: 1,
                            ejected: 0,
                        });
                        self.class_of
                            .push(self.initial_class(NodeId(src as u16), dst));
                        self.stats.rerouted_hops += self.extra_hops(NodeId(src as u16), dst);
                        self.nodes[src].src_queue.push_back(pid);
                        self.pending_sources += 1;
                        self.note_backlog(src);
                    }
                }
            } else if self.active_flits == 0 && self.pending_sources == 0 {
                break;
            }
            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                let stuck = self.packets.iter().filter(|p| !p.is_complete()).count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(RunOutcome::Finished(self.stats))
    }

    fn step(&mut self, now: u64) {
        self.deliver_link_arrivals(now);
        self.emit_from_sources(now);
        self.route_compute();
        self.allocate_vcs();
        self.switch_traversal(now);
        for (lid, vc) in self.pending_credits.drain(..) {
            self.credits[lid.index()][usize::from(vc)] += 1;
        }
    }

    /// Stage 1 (seed): scan every link pipe for due arrivals.
    fn deliver_link_arrivals(&mut self, now: u64) {
        let dwell = self.cfg.pipeline_dwell();
        for lid in 0..self.pipes.len() {
            while let Some(&(arrive, vc, flit)) = self.pipes[lid].front() {
                if arrive > now {
                    break;
                }
                self.pipes[lid].pop_front();
                let link = self.topo.link(LinkId(lid as u32));
                let node = link.dst.index();
                let in_port = usize::from(self.in_port_of_link[lid]);
                let slot = in_port * self.cfg.vcs + usize::from(vc);
                let mut f = flit;
                f.ready = now + 1 + dwell;
                self.nodes[node].vcs[slot].queue.push_back(f);
                self.buffered[node] += 1;
            }
        }
    }

    /// Stage 2 (seed): scan every node for NIC emission.
    fn emit_from_sources(&mut self, now: u64) {
        let dwell = self.cfg.pipeline_dwell();
        let vcs = self.cfg.vcs;
        let window = self.cfg.max_outstanding;
        for node in 0..self.nodes.len() {
            self.nodes[node].in_port_used = 0;
            if self.nodes[node].emitting.is_none() {
                // Closed loop: a full window parks the source until an
                // ejection returns a source credit.
                let window_open = window == 0 || (self.outstanding[node] as usize) < window;
                if let Some(&pid) = self.nodes[node].src_queue.front() {
                    if window_open {
                        let info = self.packets[pid as usize];
                        let range = self.vc_range(self.class_of[pid as usize]);
                        let pick = range
                            .clone()
                            .find(|&v| self.nodes[node].vcs[v].queue.len() < self.cfg.buffer_depth);
                        if let Some(v) = pick {
                            self.nodes[node].src_queue.pop_front();
                            let mut inject_cycle = info.inject_cycle;
                            if window > 0 {
                                self.outstanding[node] += 1;
                                if self.outstanding[node] > self.stats.peak_outstanding[node] {
                                    self.stats.peak_outstanding[node] = self.outstanding[node];
                                }
                                // Closed-loop latency is network latency:
                                // the measured clock restarts at emission.
                                if inject_cycle != u64::MAX {
                                    inject_cycle = now;
                                    self.packets[pid as usize].inject_cycle = now;
                                }
                            }
                            self.nodes[node].emitting = Some(Emission {
                                packet: pid,
                                emitted: 0,
                                total: info.flits,
                                vc: v as u8,
                                dst: info.dst,
                                inject_cycle,
                            });
                        }
                    }
                }
            }
            if let Some(mut em) = self.nodes[node].emitting {
                let slot = usize::from(em.vc);
                debug_assert!(slot < vcs);
                if self.nodes[node].vcs[slot].queue.len() < self.cfg.buffer_depth {
                    let flit = Flit {
                        packet: em.packet,
                        dst: em.dst,
                        is_head: em.emitted == 0,
                        is_tail: em.emitted + 1 == em.total,
                        ready: now + dwell,
                    };
                    self.nodes[node].vcs[slot].queue.push_back(flit);
                    self.buffered[node] += 1;
                    self.active_flits += 1;
                    self.stats.flits_injected += 1;
                    if let Some(tm) = self.tenants {
                        self.stats.tenants[usize::from(tm.tenant_of_node[node])].flits_injected +=
                            1;
                    }
                    em.emitted += 1;
                    self.nodes[node].emitting = if em.emitted == em.total {
                        self.pending_sources -= 1;
                        None
                    } else {
                        Some(em)
                    };
                }
            }
        }
    }

    /// Stage 3 (seed): scan every VC of every buffered node for RC.
    fn route_compute(&mut self) {
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            let st = &mut self.nodes[node];
            for vc in st.vcs.iter_mut() {
                if vc.state == VcState::Idle {
                    if let Some(head) = vc.queue.front() {
                        debug_assert!(head.is_head, "queue head after Idle must be a head flit");
                        vc.state = VcState::Routed {
                            out_port: st.route_port[head.dst.index()],
                        };
                        st.routed_count += 1;
                    }
                }
            }
        }
    }

    /// Stage 4 (seed): VC allocation, round-robin per output port.
    fn allocate_vcs(&mut self) {
        let vcs = self.cfg.vcs;
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            if self.nodes[node].routed_count == 0 {
                continue;
            }
            let total_in_vcs = self.nodes[node].in_ports() * vcs;
            for p in 0..self.nodes[node].out_ports() {
                if self.nodes[node].routed_count == 0 {
                    break;
                }
                // Fault-degraded links expose only the low half of each
                // class's VCs (the ejection port never degrades).
                let degraded = p > 0 && self.topo.link(self.nodes[node].out_links[p - 1]).degraded;
                let start = self.nodes[node].va_rr[p] as usize;
                for k in 0..total_in_vcs {
                    let idx = (start + k) % total_in_vcs;
                    let VcState::Routed { out_port } = self.nodes[node].vcs[idx].state else {
                        continue;
                    };
                    if usize::from(out_port) != p {
                        continue;
                    }
                    let Some(head) = self.nodes[node].vcs[idx].queue.front() else {
                        continue;
                    };
                    let head_packet = head.packet;
                    let class = self.class_of[head_packet as usize];
                    let range = if degraded {
                        self.degraded_vc_range(class)
                    } else {
                        self.vc_range(class)
                    };
                    let free = range
                        .clone()
                        .find(|&v| self.nodes[node].out_holder[p * vcs + v].is_none());
                    if let Some(ovc) = free {
                        let in_port = (idx / vcs) as u8;
                        let in_vc = (idx % vcs) as u8;
                        self.nodes[node].out_holder[p * vcs + ovc] = Some((in_port, in_vc));
                        self.nodes[node].vcs[idx].state = VcState::Active {
                            out_port: p as u8,
                            out_vc: ovc as u8,
                        };
                        self.nodes[node].active_pid[idx] = head_packet;
                        self.nodes[node].routed_count -= 1;
                        self.nodes[node].active_for_out[p] += 1;
                        self.nodes[node].va_rr[p] = ((idx + 1) % total_in_vcs) as u32;
                    }
                }
            }
        }
    }

    /// Stage 5 (seed): switch allocation + traversal.
    fn switch_traversal(&mut self, now: u64) {
        let vcs = self.cfg.vcs;
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            let out_ports = self.nodes[node].out_ports();
            let total_in_vcs = self.nodes[node].in_ports() * vcs;
            for p in 0..out_ports {
                if self.nodes[node].active_for_out[p] == 0 {
                    continue;
                }
                let start = self.nodes[node].sa_rr[p] as usize;
                let mut winner: Option<usize> = None;
                for k in 0..total_in_vcs {
                    let idx = (start + k) % total_in_vcs;
                    let VcState::Active { out_port, out_vc } = self.nodes[node].vcs[idx].state
                    else {
                        continue;
                    };
                    if usize::from(out_port) != p {
                        continue;
                    }
                    let in_port = idx / vcs;
                    if self.nodes[node].in_port_used & (1 << in_port) != 0 {
                        continue;
                    }
                    let Some(head) = self.nodes[node].vcs[idx].queue.front() else {
                        continue;
                    };
                    if head.ready > now {
                        continue;
                    }
                    if p > 0 {
                        let lid = self.nodes[node].out_links[p - 1];
                        if self.credits[lid.index()][usize::from(out_vc)] == 0 {
                            continue;
                        }
                    }
                    winner = Some(idx);
                    break;
                }
                let Some(idx) = winner else { continue };
                self.nodes[node].sa_rr[p] = ((idx + 1) % total_in_vcs) as u32;
                let VcState::Active { out_vc, .. } = self.nodes[node].vcs[idx].state else {
                    unreachable!("winner is Active");
                };
                let flit = self.nodes[node].vcs[idx]
                    .queue
                    .pop_front()
                    .expect("winner has a flit");
                self.buffered[node] -= 1;
                let in_port = idx / vcs;
                self.nodes[node].in_port_used |= 1 << in_port;
                self.stats.router_flits[node] += 1;

                if in_port > 0 {
                    let up = self.nodes[node].in_links[in_port - 1];
                    self.pending_credits.push((up, (idx % vcs) as u8));
                }

                if p == 0 {
                    let pid = flit.packet as usize;
                    self.packets[pid].ejected += 1;
                    self.stats.flits_delivered += 1;
                    let accepted = now >= self.accept_from && now < self.accept_until;
                    if accepted {
                        self.stats.accepted_flits += 1;
                    }
                    // Tenant traffic is tile-internal: the ejecting node's
                    // tenant is the packet's tenant.
                    if let Some(tm) = self.tenants {
                        let lane = &mut self.stats.tenants[usize::from(tm.tenant_of_node[node])];
                        lane.flits_delivered += 1;
                        if accepted {
                            lane.accepted_flits += 1;
                        }
                    }
                    self.active_flits -= 1;
                    if self.packets[pid].is_complete() {
                        let info = self.packets[pid];
                        if info.inject_cycle != u64::MAX {
                            self.stats
                                .record_packet(info.flits, now + 1 - info.inject_cycle);
                            if let Some(tm) = self.tenants {
                                self.stats.tenants[usize::from(tm.tenant_of_node[node])]
                                    .latency
                                    .record(now + 1 - info.inject_cycle);
                            }
                        }
                        // Closed loop: the window slot frees; first
                        // observable next cycle (emission precedes switch
                        // traversal within a cycle).
                        if self.cfg.max_outstanding > 0 {
                            debug_assert!(self.outstanding[info.src.index()] > 0);
                            self.outstanding[info.src.index()] -= 1;
                        }
                    }
                } else {
                    let lid = self.nodes[node].out_links[p - 1];
                    let link = self.topo.link(lid);
                    self.credits[lid.index()][usize::from(out_vc)] -= 1;
                    if link.is_express() {
                        self.class_of[flit.packet as usize] = VcClass::PostExpress;
                    }
                    self.stats.link_flits[lid.index()] += 1;
                    self.pipes[lid.index()].push_back((
                        now + u64::from(link.latency_cycles),
                        out_vc,
                        flit,
                    ));
                }

                if flit.is_tail {
                    self.nodes[node].out_holder[p * vcs + usize::from(out_vc)] = None;
                    self.nodes[node].vcs[idx].state = VcState::Idle;
                    self.nodes[node].active_for_out[p] -= 1;
                }
            }
        }
    }

    // ---- checkpoint / restore -------------------------------------------
    //
    // Snapshot bookkeeping, not optimisation: the simulation stages above
    // are untouched. The mirror exists so the parity oracle covers the
    // checkpoint dimension — `tests/snapshot_parity.rs` asserts that the
    // seed engine's own save/restore splices are bit-for-bit, and that
    // its snapshots interchange with the production engines'.

    /// Exports the full logical engine state at the cycle boundary
    /// `cursor.now` (cycles `0..now` simulated, `now` not yet).
    /// Completed packets are dropped from the table — they live on in
    /// the statistics and the exported completion total.
    fn export(&self, cursor: &RunCursor) -> GlobalState {
        let vcs = self.cfg.vcs;
        let mut gpid_of = vec![u32::MAX; self.packets.len()];
        let mut packets = Vec::new();
        for (pid, info) in self.packets.iter().enumerate() {
            if info.is_complete() {
                continue;
            }
            gpid_of[pid] = packets.len() as u32;
            packets.push(PacketImage {
                src: info.src.0,
                dst: info.dst.0,
                inject_cycle: info.inject_cycle,
                flits: info.flits,
                ejected: info.ejected,
                class: match self.class_of[pid] {
                    VcClass::Free => 0,
                    VcClass::PreExpress => 1,
                    VcClass::PostExpress => 2,
                },
            });
        }
        let map = |pid: u32| -> u32 {
            let g = gpid_of[pid as usize];
            debug_assert_ne!(g, u32::MAX, "live state references a completed packet");
            g
        };
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (node, st) in self.nodes.iter().enumerate() {
            let mut slots = Vec::with_capacity(st.in_ports() * vcs);
            for (idx, vc) in st.vcs.iter().enumerate() {
                let (tag, out_port, out_vc) = match vc.state {
                    VcState::Idle => (0u8, 0u8, 0u8),
                    VcState::Routed { out_port } => (1, out_port, 0),
                    VcState::Active { out_port, out_vc } => (2, out_port, out_vc),
                };
                slots.push(SlotImage {
                    tag,
                    out_port,
                    out_vc,
                    active_pid: if tag == 2 {
                        map(st.active_pid[idx])
                    } else {
                        u32::MAX
                    },
                    queue: vc
                        .queue
                        .iter()
                        .map(|f| FlitImage {
                            packet: map(f.packet),
                            dst: f.dst.0,
                            is_head: f.is_head,
                            is_tail: f.is_tail,
                            ready: f.ready,
                        })
                        .collect(),
                });
            }
            nodes.push(NodeImage {
                slots,
                src_queue: st.src_queue.iter().map(|&p| map(p)).collect(),
                emitting: st.emitting.map(|em| EmissionImage {
                    packet: map(em.packet),
                    emitted: em.emitted,
                    total: em.total,
                    vc: em.vc,
                    dst: em.dst.0,
                    inject_cycle: em.inject_cycle,
                }),
                outstanding: self.outstanding[node],
                va_rr: st.va_rr.iter().map(|&v| v as u16).collect(),
                sa_rr: st.sa_rr.iter().map(|&v| v as u16).collect(),
            });
        }
        // In-flight flits: the seed engine's per-link pipes are already
        // the canonical (arrive, vc, flit) event lists, in send order
        // (strictly increasing arrivals — one flit per link per cycle).
        let links = self
            .pipes
            .iter()
            .map(|pipe| {
                pipe.iter()
                    .map(|&(arrive, vc, f)| EventImage {
                        arrive,
                        vc,
                        flit: FlitImage {
                            packet: map(f.packet),
                            dst: f.dst.0,
                            is_head: f.is_head,
                            is_tail: f.is_tail,
                            ready: 0,
                        },
                    })
                    .collect()
            })
            .collect();
        let completed_now = self.packets.iter().filter(|p| p.is_complete()).count() as u64;
        let mut stats = self.stats.clone();
        stats.cycles = cursor.now;
        GlobalState {
            now: cursor.now,
            next_event: cursor.next_event,
            rng: cursor.rng,
            accept_from: self.accept_from,
            accept_until: self.accept_until,
            origin_packets: self.dropped_packets + self.packets.len() as u64,
            completed_packets: self.dropped_packets + completed_now,
            vcs: vcs as u32,
            stats,
            packets,
            nodes,
            links,
        }
    }

    /// Serializes the engine state under this plan's fingerprint.
    fn snapshot_at(&self, cursor: &RunCursor, workload_hash: u64) -> Snapshot {
        let plan_hash = plan_fingerprint(
            self.topo,
            self.routes,
            &self.cfg,
            self.baseline,
            self.tenants,
        );
        Snapshot::encode(&self.export(cursor), plan_hash, workload_hash)
    }

    /// Decodes `snap` against this plan, checks the workload
    /// fingerprint, and rebuilds the engine state; returns the engine
    /// plus the cursor to resume from.
    fn restore_from(
        self,
        snap: &Snapshot,
        workload_hash: u64,
    ) -> Result<(Self, RunCursor), SimError> {
        let gs = snap.decode_for(plan_fingerprint(
            self.topo,
            self.routes,
            &self.cfg,
            self.baseline,
            self.tenants,
        ))?;
        let stored = snap.workload_hash();
        if stored != 0 && workload_hash != 0 && stored != workload_hash {
            return Err(SimError::Snapshot(SnapshotError::WorkloadMismatch));
        }
        let cursor = RunCursor {
            now: gs.now,
            next_event: gs.next_event,
            rng: gs.rng,
        };
        let sim = self.import(&gs).map_err(SimError::Snapshot)?;
        Ok((sim, cursor))
    }

    /// Fills this (freshly built) engine from a decoded snapshot.
    /// Derived state — `out_holder`, `routed_count`, `active_for_out`,
    /// `buffered`, credits — is reconstructed from the logical image;
    /// credits are fully determined by downstream occupancy
    /// (depth − in flight − buffered, see `docs/SNAPSHOT_FORMAT.md`).
    fn import(mut self, gs: &GlobalState) -> Result<Self, SnapshotError> {
        let vcs = self.cfg.vcs;
        let depth = self.cfg.buffer_depth;
        if gs.vcs as usize != vcs
            || gs.nodes.len() != self.topo.num_nodes()
            || gs.links.len() != self.topo.links().len()
        {
            return Err(SnapshotError::Corrupt);
        }
        // The seed engine is single-partition: packet ids are global
        // packet ids, no handle minting needed.
        self.packets = gs
            .packets
            .iter()
            .map(|p| PacketInfo {
                src: NodeId(p.src),
                dst: NodeId(p.dst),
                inject_cycle: p.inject_cycle,
                flits: p.flits,
                ejected: p.ejected,
            })
            .collect();
        self.class_of = gs
            .packets
            .iter()
            .map(|p| match p.class {
                0 => VcClass::Free,
                1 => VcClass::PreExpress,
                _ => VcClass::PostExpress,
            })
            .collect();
        self.dropped_packets = gs.completed_packets;
        for (node, n) in gs.nodes.iter().enumerate() {
            let st = &mut self.nodes[node];
            let total_in_vcs = st.in_ports() * vcs;
            if n.slots.len() != total_in_vcs
                || n.va_rr.len() != st.out_ports()
                || n.sa_rr.len() != st.out_ports()
            {
                return Err(SnapshotError::Corrupt);
            }
            let mut buffered = 0u32;
            for (idx, img) in n.slots.iter().enumerate() {
                if img.queue.len() > depth {
                    return Err(SnapshotError::Corrupt);
                }
                // Invariants the stages rely on: a non-empty idle or
                // routed VC holds a head flit at the front; a routed VC
                // is never empty.
                if img.tag != 2 && !img.queue.is_empty() && !img.queue[0].is_head {
                    return Err(SnapshotError::Corrupt);
                }
                if img.tag == 1 && img.queue.is_empty() {
                    return Err(SnapshotError::Corrupt);
                }
                let vc_state = &mut st.vcs[idx];
                for f in &img.queue {
                    vc_state.queue.push_back(Flit {
                        packet: f.packet,
                        dst: NodeId(f.dst),
                        is_head: f.is_head,
                        is_tail: f.is_tail,
                        ready: f.ready,
                    });
                }
                buffered += img.queue.len() as u32;
                vc_state.state = match img.tag {
                    0 => VcState::Idle,
                    1 => VcState::Routed {
                        out_port: img.out_port,
                    },
                    2 => VcState::Active {
                        out_port: img.out_port,
                        out_vc: img.out_vc,
                    },
                    _ => return Err(SnapshotError::Corrupt),
                };
                match img.tag {
                    1 => st.routed_count += 1,
                    2 => {
                        let p = usize::from(img.out_port);
                        st.out_holder[p * vcs + usize::from(img.out_vc)] =
                            Some(((idx / vcs) as u8, (idx % vcs) as u8));
                        st.active_for_out[p] += 1;
                        st.active_pid[idx] = img.active_pid;
                    }
                    _ => {}
                }
            }
            for p in 0..st.out_ports() {
                if usize::from(n.va_rr[p]) >= total_in_vcs
                    || usize::from(n.sa_rr[p]) >= total_in_vcs
                {
                    return Err(SnapshotError::Corrupt);
                }
                st.va_rr[p] = u32::from(n.va_rr[p]);
                st.sa_rr[p] = u32::from(n.sa_rr[p]);
            }
            st.src_queue = n.src_queue.iter().copied().collect();
            st.emitting = n.emitting.as_ref().map(|em| Emission {
                packet: em.packet,
                emitted: em.emitted,
                total: em.total,
                vc: em.vc,
                dst: NodeId(em.dst),
                inject_cycle: em.inject_cycle,
            });
            self.buffered[node] = buffered;
            self.pending_sources += n.src_queue.len() as u64 + u64::from(st.emitting.is_some());
            self.outstanding[node] = n.outstanding;
            self.active_flits += u64::from(buffered);
        }
        for (lid, evs) in gs.links.iter().enumerate() {
            for ev in evs {
                self.pipes[lid].push_back((
                    ev.arrive,
                    ev.vc,
                    Flit {
                        packet: ev.flit.packet,
                        dst: NodeId(ev.flit.dst),
                        is_head: ev.flit.is_head,
                        is_tail: ev.flit.is_tail,
                        ready: 0,
                    },
                ));
                self.active_flits += 1;
            }
        }
        // Derived credit state: depth − (in flight on the link) −
        // (buffered in the destination VC). The live `pending_credits`
        // list is always empty at a cycle boundary (drained at the end
        // of every step).
        for lid in 0..self.topo.links().len() {
            let link = self.topo.link(LinkId(lid as u32));
            let in_port = usize::from(self.in_port_of_link[lid]);
            for v in 0..vcs {
                let on_link = gs.links[lid]
                    .iter()
                    .filter(|e| usize::from(e.vc) == v)
                    .count();
                let occupied = on_link
                    + gs.nodes[link.dst.index()].slots[in_port * vcs + v]
                        .queue
                        .len();
                if occupied > depth {
                    return Err(SnapshotError::Corrupt);
                }
                self.credits[lid][v] = (depth - occupied) as u16;
            }
        }
        self.accept_from = gs.accept_from;
        self.accept_until = gs.accept_until;
        self.stats = gs.stats.clone();
        Ok(self)
    }
}
