//! Activity counts for energy accounting.
//!
//! The simulator (and the analytical volume router) reduce a workload to
//! *how many flits crossed each link and each router*. `hyppi-analytic`
//! combines these counts with the DSENT-style per-flit energies to produce
//! the paper's Table V dynamic-energy numbers.

use hyppi_topology::{LinkId, NodeId, RoutingTable, Topology};
use hyppi_traffic::CommVolume;
use serde::{Deserialize, Serialize};

/// Flit traversal counts per link and per router.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounts {
    /// Flits that crossed each link, link-id indexed.
    pub link_flits: Vec<u64>,
    /// Flits that traversed each router's switch, node-id indexed.
    pub router_flits: Vec<u64>,
}

impl EnergyCounts {
    /// Zeroed counts for a topology.
    pub fn zero(topo: &Topology) -> Self {
        EnergyCounts {
            link_flits: vec![0; topo.links().len()],
            router_flits: vec![0; topo.num_nodes()],
        }
    }

    /// Routes a full-application [`CommVolume`] analytically and counts the
    /// traversals — the paper's §IV energy methodology ("total dynamic
    /// energy based on the communication volume and the network paths taken
    /// by the flits"). Every flit also traverses its destination router
    /// (ejection).
    pub fn from_volume(topo: &Topology, routes: &RoutingTable, volume: &CommVolume) -> Self {
        let mut c = Self::zero(topo);
        for (src, dst, flits) in volume.pairs() {
            let mut at = src;
            while at != dst {
                let lid = routes
                    .next_link(at, dst)
                    .expect("connected topology always has a next hop");
                c.router_flits[at.index()] += flits;
                c.link_flits[lid.index()] += flits;
                at = topo.link(lid).dst;
            }
            c.router_flits[dst.index()] += flits;
        }
        c
    }

    /// Total flit-link-traversals.
    pub fn total_link_flits(&self) -> u64 {
        self.link_flits.iter().sum()
    }

    /// Total flit-router-traversals.
    pub fn total_router_flits(&self) -> u64 {
        self.router_flits.iter().sum()
    }

    /// Flits crossing one link.
    #[inline]
    pub fn link(&self, l: LinkId) -> u64 {
        self.link_flits[l.index()]
    }

    /// Flits traversing one router.
    #[inline]
    pub fn router(&self, n: NodeId) -> u64 {
        self.router_flits[n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::LinkTechnology;
    use hyppi_topology::{mesh, MeshSpec};

    fn small() -> (Topology, RoutingTable) {
        let t = mesh(MeshSpec {
            width: 4,
            height: 4,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: hyppi_phys::Gbps::new(50.0),
        });
        let r = RoutingTable::compute_xy(&t);
        (t, r)
    }

    #[test]
    fn volume_routing_counts_hops() {
        let (t, r) = small();
        let mut v = CommVolume::zero(16, 0.0);
        v.add(NodeId(0), NodeId(15), 100); // 6 hops
        let c = EnergyCounts::from_volume(&t, &r, &v);
        assert_eq!(c.total_link_flits(), 600);
        // 6 traversed routers + destination router.
        assert_eq!(c.total_router_flits(), 700);
    }

    #[test]
    fn counts_superpose() {
        let (t, r) = small();
        let mut v = CommVolume::zero(16, 0.0);
        v.add(NodeId(0), NodeId(1), 10);
        v.add(NodeId(1), NodeId(0), 20);
        let c = EnergyCounts::from_volume(&t, &r, &v);
        assert_eq!(c.total_link_flits(), 30);
        assert_eq!(c.router(NodeId(0)), 10 + 20);
        assert_eq!(c.router(NodeId(1)), 20 + 10);
    }
}
