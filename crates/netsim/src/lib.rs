//! Cycle-accurate NoC simulation.
//!
//! A from-scratch reimplementation of the simulation machinery the paper
//! takes from **BookSim 2.0** (§IV): input-buffered virtual-channel routers
//! with a 3-stage pipeline, credit-based flow control, deterministic
//! oblivious shortest-path routing (from `hyppi-topology`), per-link
//! latencies of 1 cycle (electronic) or 2 cycles (optical), and trace-driven
//! packet injection with the paper's 1-flit and 32-flit packet sizes.
//!
//! The microarchitecture follows Table II and Fig. 4 of the paper:
//!
//! * 4 virtual channels per port, 8 flit buffers per VC;
//! * 3-stage router pipeline (route computation; VC + switch allocation;
//!   switch traversal) — a flit spends at least 3 cycles per router;
//! * one crossbar transfer per input port and per output port per cycle;
//! * round-robin switch and VC allocation arbiters;
//! * credits returned when a flit leaves the downstream buffer.
//!
//! The simulator is fully deterministic: identical inputs produce identical
//! cycle-level behaviour.
//!
//! The workspace-root [`docs/ARCHITECTURE.md`](../../../docs/ARCHITECTURE.md)
//! is the narrative companion to this crate: the engine core's data
//! structures, the shard superstep/mailbox protocol, closed-loop source
//! credits, and the parity-oracle rule ("never optimize `reference.rs`;
//! microarchitectural changes land in both engines") with pointers into
//! the code.
//!
//! ## The active-set engine
//!
//! [`Simulator`] is the production engine. Its per-cycle cost scales with
//! the number of in-flight flits rather than with network size:
//!
//! * link arrivals live in a cycle-indexed **arrival calendar** (a small
//!   time wheel sized to the longest link latency) and are delivered by
//!   draining one bucket per cycle — no per-link scanning;
//! * **active node bitsets** (`work_mask` for buffered flits, `src_mask`
//!   for NIC activity) gate every router pipeline stage, so quiescent
//!   routers cost nothing;
//! * VC buffers are a flat **structure-of-arrays flit slab** — fixed-depth
//!   ring buffers per (node, port, vc) slot with parallel head/len/state
//!   arrays — so steady-state simulation never allocates;
//! * a **route-compute dirty list** visits exactly the VCs whose head
//!   packet changed, and the run loops **fast-forward across idle gaps**
//!   to the next calendar arrival or trace admission (located by a
//!   word-wide probe of the calendar's occupancy bitset);
//! * per-(link, VC) **double-buffered credit cells** fold credits freed
//!   in cycle `t` into the spendable count on their first access after
//!   `t` — next-cycle visibility with no separate application pass —
//!   and the free-VC search of VC allocation is a packed-bitmask
//!   `trailing_zeros` walk; latency-1 links bypass the calendar and
//!   deposit flits directly in the destination VC at send time.
//!
//! The original full-scan engine survives unmodified in [`mod@reference`] as
//! the parity oracle: `tests/parity.rs` asserts both engines produce
//! bit-for-bit identical [`SimStats`] (latency histograms, energy counts,
//! per-link utilization) across seeds, topologies, and workloads, so the
//! paper's Fig. 6 / Table V numbers are pinned while wall-clock drops.
//!
//! ## Entry points
//!
//! [`Simulator::run_trace`] drives a [`hyppi_traffic::Trace`] to completion
//! and returns [`SimStats`] (per-packet latency statistics plus per-link and
//! per-router flit counts for energy accounting). [`Simulator::run_synthetic`]
//! injects Bernoulli traffic from a [`hyppi_traffic::TrafficMatrix`] for a
//! fixed warm-up + measurement window, used for load-latency curves.
//!
//! ## The sharded parallel engine
//!
//! The [`mod@shard`] module partitions the mesh into P rectangular shards
//! ([`hyppi_topology::ShardSpec`], quadrants by default), each owning its
//! routers' full active-set state — calendar wheel, bitsets, flit slab.
//! Shards advance in **cycle-synchronous supersteps**: each superstep is
//! a step phase (the five pipeline stages, run per shard in parallel) and
//! an exchange phase, separated by barriers. Boundary-link arrivals and
//! upstream credit returns travel through per-edge **double-buffered
//! mailboxes**; because every link has latency ≥ 1 cycle and credits
//! freed in cycle `t` become visible in `t+1`, a message exchanged at the
//! end of superstep `t` lands exactly where the in-shard calendar would
//! have put it — so [`ShardedSimulator`] is **bit-for-bit
//! `SimStats`-identical** to [`Simulator`], which is itself just the
//! P=1 case of the same engine core (`shard::ShardState`).
//! `tests/shard_parity.rs` pins this on 16×16 cells across seeds ×
//! topologies × workloads. Head flits crossing a boundary carry their
//! packet's metadata (size, injection cycle, dateline VC class); the
//! receiving shard mints a local packet handle and re-tags the wormhole's
//! body flits through a per-(link, VC) remap slot.
//!
//! ## Closed-loop injection (credit-limited NICs)
//!
//! With [`SimConfig::max_outstanding`] > 0 every source NIC carries a
//! credit window: at most that many of its packets may be in the network
//! (emitted but not fully ejected) at once. A window-full source parks
//! out of the engine's `src_mask` exactly like a buffer-blocked one; the
//! credit returns when the packet's tail ejects at the destination —
//! in-shard as a direct decrement during switch traversal, cross-shard
//! as a **source-credit mailbox message** riding the existing superstep
//! exchange (boundary head flits carry the packet's origin node for
//! this). Both paths are first observable by the next cycle's emission
//! stage, so `Simulator`, `ShardedSimulator` and the frozen
//! `ReferenceSimulator` (which carries the mirror implementation) stay
//! bit-for-bit — `tests/parity.rs` and `tests/shard_parity.rs` pin
//! windows 1/4/16. Closed-loop latency is *network* latency (the
//! measured clock restarts at emission, so it stays window-bounded);
//! source overload shows up in [`SimStats::peak_backlog`] and in an
//! accepted-throughput curve ([`SimStats::accepted_flits`]) that
//! flattens at the saturation plateau instead of tracking offered load —
//! which is what makes throughput curves meaningful past the knee, where
//! open-loop runs just track offered load until the cycle cap.
//!
//! ## Load sweeps and saturation search
//!
//! The [`sweep`] module batches independent runs: [`SweepRunner`] fans an
//! injection-rate grid × seed matrix across scoped worker threads
//! ([`sweep::parallel_map`]) and reduces each offered load to a
//! [`sweep::LoadPoint`] — mean latency, log-linear p50/p95/p99 tails,
//! measured-packet throughput, and in-window accepted throughput — while
//! [`SweepRunner::find_saturation`] bisects for the saturation point:
//! open-loop, the smallest offered load whose mean latency exceeds a
//! multiple of the zero-load latency; closed-loop
//! ([`SweepConfig::closed_loop`]), the smallest offered load whose
//! accepted throughput falls off the offered-load diagonal (the
//! accepted-plateau criterion — the latency multiple cannot trigger when
//! the window bounds latency). Both engines share the
//! [`stats::LatencyStats`] histogram, so sweep statistics stay under the
//! parity oracle. A [`SweepConfig::shards`] knob routes each run through
//! the sharded engine, opening 32×32+ meshes. Grids and searches are
//! **warm-started** by default — one warm-up per (pattern, seed),
//! snapshot-resumed per rate ([`SweepConfig::cold`] opts out).
//!
//! ## Checkpoint/restore
//!
//! The [`snapshot`] module serializes the complete logical simulation
//! state at a cycle boundary into a versioned, std-only byte format
//! whose contract is: *run N cycles == snapshot + restore + run
//! remainder*, bit-for-bit in [`SimStats`] including the latency
//! histograms. The format is partition-independent — a P-shard
//! [`ShardedSimulator`] snapshot restores into a P′=1 [`Simulator`]
//! (or any shard count), and the same bytes restore into the frozen
//! [`ReferenceSimulator`] for parity checks; per-(link, VC) credits are
//! derived at import rather than stored, and the latency-1 calendar
//! bypass is stripped at export. Entry points: `snapshot`/`restore` on
//! all three engines, `run_trace_until`/`run_synthetic_until` (pause
//! mid-run, returning [`RunOutcome::Paused`]), and
//! `resume_trace`/`resume_synthetic`. `tests/snapshot_parity.rs` pins
//! the splice across open/closed-loop, express, faulted and shard-cut
//! cells. The byte-level layout, the fingerprint mismatch rules, and
//! the restore-equals-continue argument live in the workspace-root
//! [`docs/SNAPSHOT_FORMAT.md`](../../../docs/SNAPSHOT_FORMAT.md).
//!
//! ## Telemetry — the flight recorder
//!
//! The [`telemetry`] module observes the active engine without
//! perturbing it: the [`Probe`] trait is a compile-time hook threaded
//! through both active engines (`run_*_probed`), whose sites vanish for
//! the default [`NoopProbe`] (`ENABLED = false`). Instruments:
//! [`MetricsSampler`] (per-interval time series — flits, link
//! utilization, stall breakdown, VC/calendar occupancy, mailbox volume,
//! closed-loop backpressure), [`PacketTracer`] (ring-buffered packet
//! lifecycle events, JSONL or Chrome `trace_event` export), and
//! [`EngineProfile`] (superstep step/exchange/barrier wall time from
//! `run_*_profiled`). `reference.rs` carries no hooks;
//! `tests/telemetry_parity.rs` pins probed == plain [`SimStats`]
//! bit-for-bit. Schema and usage live in the workspace-root
//! [`docs/OBSERVABILITY.md`](../../../docs/OBSERVABILITY.md).

pub mod config;
pub mod energy_counts;
pub mod flit;
pub mod json;
pub mod reference;
pub mod router;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod sweep;
pub mod telemetry;

pub use config::SimConfig;
pub use energy_counts::EnergyCounts;
pub use reference::ReferenceSimulator;
pub use shard::ShardedSimulator;
pub use sim::{RunOutcome, SimError, Simulator};
pub use snapshot::{Snapshot, SnapshotError};
pub use stats::{LatencyStats, SimStats, TenantStats};
pub use sweep::{
    LoadCurve, LoadPoint, SaturationSearch, SweepConfig, SweepRunner, TenantLoadPoint,
};
pub use telemetry::{
    EngineProfile, FlightRecorder, MetricsSampler, NoopProbe, PacketTracer, Probe, ProfileSink,
    StallCause, TelemetryOpts,
};
