//! Flits and packet bookkeeping.

use hyppi_topology::NodeId;

/// Identifies a packet within one simulation run.
pub type PacketId = u32;

/// One flit in flight. Kept `Copy` and small — buffers hold millions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Destination node (copied here so routing needs no packet lookup).
    pub dst: NodeId,
    /// Head flit of its packet (triggers route + VC allocation).
    pub is_head: bool,
    /// Tail flit of its packet (releases the output VC).
    pub is_tail: bool,
    /// Earliest cycle this flit may traverse the switch of the router it
    /// currently sits in (models the 3-stage pipeline).
    pub ready: u64,
}

/// Per-packet record for latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketInfo {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle the packet was presented for injection (trace timestamp).
    pub inject_cycle: u64,
    /// Size in flits.
    pub flits: u32,
    /// Flits ejected at the destination so far.
    pub ejected: u32,
}

impl PacketInfo {
    /// True once every flit has been consumed at the destination.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.ejected == self.flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_tracks_ejections() {
        let mut p = PacketInfo {
            src: NodeId(0),
            dst: NodeId(1),
            inject_cycle: 5,
            flits: 3,
            ejected: 0,
        };
        assert!(!p.is_complete());
        p.ejected = 3;
        assert!(p.is_complete());
    }

    #[test]
    fn flit_is_small() {
        // The SoA flit slab pre-allocates `slots × depth` of these, so the
        // layout must stay at 16 bytes (packet + dst + 2 flags pack into
        // the `ready` alignment hole).
        assert_eq!(std::mem::size_of::<Flit>(), 16);
    }
}
