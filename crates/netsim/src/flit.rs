//! Flits, packet bookkeeping, and the packed flit-slab slot metadata.

use hyppi_topology::NodeId;

/// Identifies a packet within one simulation run.
pub type PacketId = u32;

/// One flit in flight. Kept `Copy` and small — buffers hold millions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Destination node (copied here so routing needs no packet lookup).
    pub dst: NodeId,
    /// Head flit of its packet (triggers route + VC allocation).
    pub is_head: bool,
    /// Tail flit of its packet (releases the output VC).
    pub is_tail: bool,
    /// Earliest cycle this flit may traverse the switch of the router it
    /// currently sits in (models the 3-stage pipeline).
    pub ready: u64,
}

/// Per-packet record for latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketInfo {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle the packet was presented for injection (trace timestamp).
    pub inject_cycle: u64,
    /// Size in flits.
    pub flits: u32,
    /// Flits ejected at the destination so far.
    pub ejected: u32,
}

impl PacketInfo {
    /// True once every flit has been consumed at the destination.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.ejected == self.flits
    }
}

/// Packed per-slot metadata word: the VC state machine and the ring
/// cursor of one input VC, in a single `u32` so the arbitration loops
/// read and write slot state with one memory access.
///
/// | bits    | field                                   |
/// |---------|-----------------------------------------|
/// | 0..2    | state tag (Idle / Routed / Active)      |
/// | 2..6    | out-port (valid when Routed or Active)  |
/// | 6..11   | out-VC (valid when Active)              |
/// | 11..19  | ring head index                         |
/// | 19..27  | queue length                            |
///
/// Field widths are enforced by `SimConfig::validate` (VCs ≤ 32, buffer
/// depth ≤ 255) and the per-node port assert in the engine constructor
/// (`crate::shard::ShardState`).
pub(crate) mod meta {
    pub const IDLE: u32 = 0;
    pub const ROUTED: u32 = 1;
    pub const ACTIVE: u32 = 2;
    const TAG_MASK: u32 = 0b11;
    pub const PORT_SHIFT: u32 = 2;
    const PORT_MASK: u32 = 0xF;
    pub const OVC_SHIFT: u32 = 6;
    const OVC_MASK: u32 = 0x1F;
    pub const HEAD_SHIFT: u32 = 11;
    pub const HEAD_MASK: u32 = 0xFF;
    const LEN_SHIFT: u32 = 19;
    const LEN_MASK: u32 = 0xFF;
    /// Adding this to a word increments the queue length.
    pub const LEN_ONE: u32 = 1 << LEN_SHIFT;
    /// Clears tag + out-port + out-VC, leaving the ring cursor.
    pub const STATE_CLEAR: u32 = !((1 << HEAD_SHIFT) - 1);

    #[inline]
    pub fn tag(m: u32) -> u32 {
        m & TAG_MASK
    }

    #[inline]
    pub fn out_port(m: u32) -> usize {
        ((m >> PORT_SHIFT) & PORT_MASK) as usize
    }

    #[inline]
    pub fn out_vc(m: u32) -> usize {
        ((m >> OVC_SHIFT) & OVC_MASK) as usize
    }

    #[inline]
    pub fn head(m: u32) -> usize {
        ((m >> HEAD_SHIFT) & HEAD_MASK) as usize
    }

    #[inline]
    pub fn len(m: u32) -> usize {
        ((m >> LEN_SHIFT) & LEN_MASK) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_tracks_ejections() {
        let mut p = PacketInfo {
            src: NodeId(0),
            dst: NodeId(1),
            inject_cycle: 5,
            flits: 3,
            ejected: 0,
        };
        assert!(!p.is_complete());
        p.ejected = 3;
        assert!(p.is_complete());
    }

    #[test]
    fn flit_is_small() {
        // The SoA flit slab pre-allocates `slots × depth` of these, so the
        // layout must stay at 16 bytes (packet + dst + 2 flags pack into
        // the `ready` alignment hole).
        assert_eq!(std::mem::size_of::<Flit>(), 16);
    }
}
