//! Flight recorder — metrics sampling, packet event tracing, and engine
//! self-profiling for the active engine.
//!
//! A run of [`crate::Simulator`] or [`crate::ShardedSimulator`] normally
//! compresses into one end-of-run [`SimStats`] blob. This module opens
//! the time axis without touching simulation state:
//!
//! * **[`Probe`]** is a compile-time hook trait threaded through the
//!   engine core's pipeline stages. The default [`NoopProbe`] sets
//!   `ENABLED = false`, so every hook site (`if P::ENABLED { … }`)
//!   monomorphizes away — the un-probed engine is bit-identical machine
//!   code to the pre-telemetry engine, and `tests/telemetry_parity.rs`
//!   pins that a probed run's `SimStats` are bit-for-bit equal to a
//!   plain run's (probes observe; they never perturb).
//! * **[`MetricsSampler`]** is a probe that records per-interval time
//!   series: flits injected/delivered, stall breakdown by cause
//!   ([`StallCause`]), per-link utilization summary, per-VC buffer
//!   occupancy, calendar-wheel occupancy, closed-loop window
//!   backpressure, and per-shard-edge mailbox volume. Export: JSONL.
//! * **[`PacketTracer`]** is a ring-buffered probe recording packet
//!   lifecycle events (inject / VC-allocate / hop / eject). Export:
//!   JSONL, or Chrome `trace_event` JSON for `about://tracing` /
//!   Perfetto (one async track per source node).
//! * **[`ProfileSink`]** / [`EngineProfile`] time the sharded engine's
//!   superstep phases (step vs. exchange vs. barrier wait) with plain
//!   atomics, so profiling — unlike probes — composes with
//!   multi-threaded runs.
//!
//! Probed runs are **single-worker**: one probe instance must observe
//! every shard, so `run_*_probed` forces `threads = 1`. Statistics are
//! bit-for-bit independent of the worker count, so this changes wall
//! clock only. The frozen parity oracle (`reference.rs`) carries no
//! hooks at all — telemetry is active-engine-only by construction.
//!
//! See `docs/OBSERVABILITY.md` for the event schema and a Chrome-trace
//! walkthrough.

use crate::json::{Json, Obj};
use crate::shard::{EnginePlan, ShardState};
use crate::stats::SimStats;
use hyppi_topology::NodeId;
use hyppi_traffic::TenantMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

// ---- stall taxonomy -----------------------------------------------------

/// Why a flit (or a whole source) failed to make progress this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Admission dropped: the faulted topology has no route for the pair.
    NoRoute,
    /// A routed head lost VC allocation (no free output VC in its class).
    VaLoss,
    /// An active VC lost switch allocation (its input port was taken).
    SaLoss,
    /// An active VC had zero downstream credits.
    CreditStarved,
    /// A closed-loop source was parked on a full NIC window.
    WindowClosed,
}

impl StallCause {
    /// All causes, in the order the sampler reports them.
    pub const ALL: [StallCause; 5] = [
        StallCause::NoRoute,
        StallCause::VaLoss,
        StallCause::SaLoss,
        StallCause::CreditStarved,
        StallCause::WindowClosed,
    ];

    /// Stable snake_case name (JSONL field suffix).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::NoRoute => "no_route",
            StallCause::VaLoss => "va_loss",
            StallCause::SaLoss => "sa_loss",
            StallCause::CreditStarved => "credit_starved",
            StallCause::WindowClosed => "window_closed",
        }
    }

    fn index(self) -> usize {
        match self {
            StallCause::NoRoute => 0,
            StallCause::VaLoss => 1,
            StallCause::SaLoss => 2,
            StallCause::CreditStarved => 3,
            StallCause::WindowClosed => 4,
        }
    }
}

// ---- packet identity ----------------------------------------------------

/// Best-effort global packet identity: the injecting node plus the
/// injection cycle. Engine-internal packet ids are shard-local handles
/// (re-minted at every shard boundary), so they cannot name a packet
/// across hops; `(src, inject_cycle)` can, because a NIC emits at most
/// one packet per cycle. Caveat: *unmeasured* warm-up packets all carry
/// `inject_cycle == u64::MAX` and therefore collide per source — trace
/// consumers should filter on `inject_cycle != u64::MAX` when they need
/// unique lifecycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketKey {
    /// Node that injected the packet.
    pub src: NodeId,
    /// Cycle the packet entered the network (`u64::MAX` = unmeasured).
    pub inject_cycle: u64,
}

impl PacketKey {
    /// Folds the key into one u64 for Chrome-trace async-event ids.
    pub fn id(self) -> u64 {
        (u64::from(self.src.0) << 48) | (self.inject_cycle & 0xFFFF_FFFF_FFFF)
    }
}

/// One packet lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEventKind {
    /// Head flit entered the network at its source NIC.
    Inject,
    /// Head flit won VC allocation at a router.
    VcAlloc,
    /// Head flit started traversing a link.
    Hop,
    /// Tail flit ejected — the packet is complete.
    Eject,
}

impl PacketEventKind {
    /// Stable snake_case name (JSONL `event` field).
    pub fn name(self) -> &'static str {
        match self {
            PacketEventKind::Inject => "inject",
            PacketEventKind::VcAlloc => "vc_alloc",
            PacketEventKind::Hop => "hop",
            PacketEventKind::Eject => "eject",
        }
    }
}

/// One recorded event of the packet tracer's ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketEvent {
    /// Lifecycle stage.
    pub kind: PacketEventKind,
    /// Packet identity.
    pub key: PacketKey,
    /// Packet destination.
    pub dst: NodeId,
    /// Cycle the event happened.
    pub cycle: u64,
    /// Global id of the router where it happened (`u16::MAX` = n/a).
    pub node: u16,
    /// Link being traversed (`Hop` only; `u32::MAX` otherwise).
    pub link: u32,
    /// Output VC granted (`VcAlloc` only; `u8::MAX` otherwise).
    pub vc: u8,
}

// ---- the probe trait ----------------------------------------------------

/// Compile-time engine hook. Implementations observe the active engine;
/// they must never mutate simulation state (they receive only shared
/// views of it), and the engine guarantees the hook *sites* cost nothing
/// when `ENABLED` is false — every call is guarded by
/// `if P::ENABLED { … }` on the monomorphized constant.
///
/// All hooks default to no-ops so a probe implements only what it needs.
pub trait Probe {
    /// Compile-time gate: `false` removes every hook site from the
    /// generated code. Leave at `true` for real probes.
    const ENABLED: bool = true;

    /// A packet's head flit entered the network at node `key.src`.
    fn on_inject(&mut self, _key: PacketKey, _dst: NodeId, _flits: u32, _now: u64) {}

    /// A packet's head won VC allocation at router `node`.
    fn on_vc_alloc(&mut self, _key: PacketKey, _node: NodeId, _out_vc: u8, _now: u64) {}

    /// A packet's head flit started traversing `link`.
    fn on_hop(&mut self, _key: PacketKey, _link: u32, _now: u64) {}

    /// A packet's tail flit ejected at router `node` (packet complete).
    fn on_eject(&mut self, _key: PacketKey, _node: NodeId, _now: u64) {}

    /// A progress attempt failed this cycle (see [`StallCause`]) at
    /// router / source `node` (global id).
    fn on_stall(&mut self, _cause: StallCause, _node: NodeId, _now: u64) {}

    /// One superstep mailbox bundle moved from shard `from` to shard
    /// `to` carrying `flits` boundary flits and `credits` credit returns.
    fn on_exchange(&mut self, _from: usize, _to: usize, _flits: usize, _credits: usize, _now: u64) {
    }

    /// A shard finished simulating cycle `now`. Called once per shard
    /// per stepped cycle (idle gaps are fast-forwarded, so consecutive
    /// calls may jump in `now`).
    fn on_cycle_end(&mut self, _view: EngineView<'_>, _now: u64) {}
}

/// The zero-cost default probe: `ENABLED = false`, so the engine's hook
/// sites compile away entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

// ---- engine view --------------------------------------------------------

/// Read-only window into one shard's engine state, handed to
/// [`Probe::on_cycle_end`]. Borrowed for the duration of the call only.
pub struct EngineView<'a> {
    pub(crate) state: &'a ShardState,
    pub(crate) plan: &'a EnginePlan<'a>,
}

impl EngineView<'_> {
    /// This shard's index.
    pub fn shard_id(&self) -> usize {
        self.state.id
    }

    /// Shard count of the run.
    pub fn num_shards(&self) -> usize {
        self.plan.partition.num_shards()
    }

    /// Virtual channels per port.
    pub fn vcs(&self) -> usize {
        self.plan.cfg.vcs
    }

    /// Links in the topology (global count; `stats().link_flits` only
    /// grows on the entries this shard owns).
    pub fn num_links(&self) -> usize {
        self.plan.topo.links().len()
    }

    /// This shard's cumulative statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.state.stats
    }

    /// Flits currently sitting in this shard's VC buffers.
    pub fn buffered_flits(&self) -> u64 {
        self.state.ctl.iter().map(|c| u64::from(c.buffered)).sum()
    }

    /// Flits currently traversing links into this shard (booked in the
    /// arrival calendar).
    pub fn calendar_flits(&self) -> u64 {
        self.state.inflight_arrivals
    }

    /// Non-empty buckets of this shard's arrival calendar wheel.
    pub fn calendar_buckets(&self) -> u64 {
        self.state.wheel.iter().filter(|b| !b.is_empty()).count() as u64
    }

    /// Buffered flits per VC index (summed over this shard's ports).
    pub fn vc_occupancy(&self) -> Vec<u64> {
        self.state.vc_occupancy(self.plan.cfg.vcs)
    }

    /// Closed-loop window occupancy: packets this shard's sources have
    /// emitted but not yet seen fully ejected (0 open-loop).
    pub fn window_outstanding(&self) -> u64 {
        self.state.outstanding.iter().map(|&o| u64::from(o)).sum()
    }
}

// ---- metrics sampler ----------------------------------------------------

/// One interval of the sampled time series. Counters are deltas over
/// `span` cycles; gauges are end-of-interval values summed over shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSample {
    /// Last cycle the sample covers (sampled at the end of this cycle).
    pub cycle: u64,
    /// Cycles since the previous sample. Idle fast-forward can skip
    /// whole intervals, so `span` may exceed the configured interval.
    pub span: u64,
    /// Flits injected during the interval.
    pub injected: u64,
    /// Flits delivered during the interval.
    pub delivered: u64,
    /// Stall events during the interval, indexed like [`StallCause::ALL`].
    pub stalls: [u64; 5],
    /// Mean per-link utilization over the interval (flits per cycle).
    pub link_util_mean: f64,
    /// Peak per-link utilization over the interval.
    pub link_util_max: f64,
    /// Link id attaining the peak (`u32::MAX` when idle).
    pub link_util_argmax: u32,
    /// End-of-interval buffered flits per VC index.
    pub vc_occupancy: Vec<u64>,
    /// End-of-interval flits in VC buffers (all shards).
    pub buffered_flits: u64,
    /// End-of-interval flits in flight on links.
    pub calendar_flits: u64,
    /// End-of-interval occupied calendar-wheel buckets.
    pub calendar_buckets: u64,
    /// End-of-interval closed-loop window occupancy (0 open-loop).
    pub window_outstanding: u64,
    /// Boundary flits exchanged through shard mailboxes in the interval.
    pub mailbox_flits: u64,
    /// Credit returns exchanged through shard mailboxes in the interval.
    pub mailbox_credits: u64,
    /// Per-shard-edge mailbox volume in the interval (only edges with
    /// traffic): `(from, to, flits, credits)`.
    pub mailbox_edges: Vec<(u16, u16, u64, u64)>,
    /// Per-tenant stall events during the interval, outer index = tenant,
    /// inner indexed like [`StallCause::ALL`]. Empty unless the sampler
    /// was built with [`MetricsSampler::with_tenants`].
    pub tenant_stalls: Vec<[u64; 5]>,
}

impl MetricsSample {
    fn to_json(&self) -> Json {
        let mut o = Obj::new()
            .field("cycle", self.cycle)
            .field("span", self.span)
            .field("injected", self.injected)
            .field("delivered", self.delivered);
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            o = o.field(&format!("stall_{}", cause.name()), self.stalls[i]);
        }
        o = o
            .field("link_util_mean", Json::fixed(self.link_util_mean, 6))
            .field("link_util_max", Json::fixed(self.link_util_max, 6))
            .field(
                "link_util_argmax",
                if self.link_util_argmax == u32::MAX {
                    Json::Null
                } else {
                    Json::UInt(u64::from(self.link_util_argmax))
                },
            )
            .field(
                "vc_occupancy",
                Json::Arr(self.vc_occupancy.iter().map(|&v| Json::UInt(v)).collect()),
            )
            .field("buffered_flits", self.buffered_flits)
            .field("calendar_flits", self.calendar_flits)
            .field("calendar_buckets", self.calendar_buckets)
            .field("window_outstanding", self.window_outstanding)
            .field("mailbox_flits", self.mailbox_flits)
            .field("mailbox_credits", self.mailbox_credits)
            .field(
                "mailbox_edges",
                Json::Arr(
                    self.mailbox_edges
                        .iter()
                        .map(|&(f, t, fl, cr)| {
                            Obj::new()
                                .field("from", f)
                                .field("to", t)
                                .field("flits", fl)
                                .field("credits", cr)
                                .build()
                        })
                        .collect(),
                ),
            );
        if !self.tenant_stalls.is_empty() {
            o = o.field(
                "tenant_stalls",
                Json::Arr(
                    self.tenant_stalls
                        .iter()
                        .map(|lane| Json::Arr(lane.iter().map(|&v| Json::UInt(v)).collect()))
                        .collect(),
                ),
            );
        }
        o.build()
    }
}

/// Gauges of one in-progress cycle, accumulated across the shards that
/// report it (the probed run is single-worker, so one sampler sees all
/// shards of every stepped cycle).
#[derive(Debug, Default, Clone)]
struct CycleGauges {
    cycle: u64,
    shards_seen: usize,
    injected: u64,
    delivered: u64,
    link_flits: Vec<u64>,
    buffered: u64,
    calendar_flits: u64,
    calendar_buckets: u64,
    window: u64,
    vc_occupancy: Vec<u64>,
}

/// Probe sampling per-interval time series — see the module docs for
/// the field list and [`MetricsSample`] for semantics.
#[derive(Debug, Clone)]
pub struct MetricsSampler {
    interval: u64,
    next_boundary: u64,
    // Cumulative counters fed by hooks (stall / exchange events).
    stalls: [u64; 5],
    // Tenant attribution for stall events: global node → tenant id.
    // Empty when the run is single-tenant (no per-tenant lanes).
    tenant_of_node: Vec<u16>,
    tenant_stalls: Vec<[u64; 5]>,
    mailbox_flits: u64,
    mailbox_credits: u64,
    mailbox_edges: Vec<(u16, u16, u64, u64)>,
    // Cumulative counters at the previous sample, for delta conversion.
    prev: Option<MetricsPrev>,
    cur: CycleGauges,
    samples: Vec<MetricsSample>,
}

#[derive(Debug, Clone)]
struct MetricsPrev {
    cycle_end: u64,
    injected: u64,
    delivered: u64,
    link_flits: Vec<u64>,
    stalls: [u64; 5],
    tenant_stalls: Vec<[u64; 5]>,
    mailbox_flits: u64,
    mailbox_credits: u64,
    mailbox_edges: Vec<(u16, u16, u64, u64)>,
}

impl MetricsSampler {
    /// A sampler recording one sample per `interval` cycles (≥ 1).
    pub fn new(interval: u64) -> Self {
        let interval = interval.max(1);
        MetricsSampler {
            interval,
            next_boundary: interval,
            stalls: [0; 5],
            tenant_of_node: Vec::new(),
            tenant_stalls: Vec::new(),
            mailbox_flits: 0,
            mailbox_credits: 0,
            mailbox_edges: Vec::new(),
            prev: None,
            cur: CycleGauges::default(),
            samples: Vec::new(),
        }
    }

    /// Attributes stall events to tenants: each sample gains a
    /// `tenant_stalls` lane per tenant, split by [`StallCause`]. The map
    /// must cover the run's topology (same map handed to the engine via
    /// `with_tenants`).
    pub fn with_tenants(mut self, map: &TenantMap) -> Self {
        self.tenant_of_node = map.tenant_of_node.clone();
        self.tenant_stalls = vec![[0; 5]; map.tenants];
        self
    }

    /// The recorded samples so far.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Serializes the samples as JSONL (one sample object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json().render_compact());
            out.push('\n');
        }
        out
    }

    fn record_sample(&mut self) {
        let cycle_end = self.cur.cycle + 1;
        let prev_cycle_end = self.prev.as_ref().map_or(0, |p| p.cycle_end);
        let span = cycle_end.saturating_sub(prev_cycle_end).max(1);
        let nlinks = self.cur.link_flits.len();
        let mut util_sum = 0.0;
        let mut util_max = 0.0f64;
        let mut argmax = u32::MAX;
        for (l, &cum) in self.cur.link_flits.iter().enumerate() {
            let before = self.prev.as_ref().map_or(0, |p| p.link_flits[l]);
            let util = (cum - before) as f64 / span as f64;
            util_sum += util;
            if util > util_max {
                util_max = util;
                argmax = l as u32;
            }
        }
        let delta = |cum: u64, prev: u64| cum - prev;
        let p = self.prev.as_ref();
        let mut stalls = [0u64; 5];
        for (i, s) in stalls.iter_mut().enumerate() {
            *s = delta(self.stalls[i], p.map_or(0, |p| p.stalls[i]));
        }
        let tenant_stalls: Vec<[u64; 5]> = self
            .tenant_stalls
            .iter()
            .enumerate()
            .map(|(t, lane)| {
                let mut d = [0u64; 5];
                for (i, v) in d.iter_mut().enumerate() {
                    *v = delta(lane[i], p.map_or(0, |p| p.tenant_stalls[t][i]));
                }
                d
            })
            .collect();
        let prev_edges = p.map_or(&[][..], |p| &p.mailbox_edges[..]);
        let mailbox_edges: Vec<(u16, u16, u64, u64)> = self
            .mailbox_edges
            .iter()
            .map(|&(f, t, fl, cr)| {
                let (pf, pc) = prev_edges
                    .iter()
                    .find(|&&(ef, et, _, _)| ef == f && et == t)
                    .map_or((0, 0), |&(_, _, fl, cr)| (fl, cr));
                (f, t, fl - pf, cr - pc)
            })
            .filter(|&(_, _, fl, cr)| fl > 0 || cr > 0)
            .collect();
        self.samples.push(MetricsSample {
            cycle: self.cur.cycle,
            span,
            injected: delta(self.cur.injected, p.map_or(0, |p| p.injected)),
            delivered: delta(self.cur.delivered, p.map_or(0, |p| p.delivered)),
            stalls,
            link_util_mean: if nlinks == 0 {
                0.0
            } else {
                util_sum / nlinks as f64
            },
            link_util_max: util_max,
            link_util_argmax: argmax,
            vc_occupancy: self.cur.vc_occupancy.clone(),
            buffered_flits: self.cur.buffered,
            calendar_flits: self.cur.calendar_flits,
            calendar_buckets: self.cur.calendar_buckets,
            window_outstanding: self.cur.window,
            mailbox_flits: delta(self.mailbox_flits, p.map_or(0, |p| p.mailbox_flits)),
            mailbox_credits: delta(self.mailbox_credits, p.map_or(0, |p| p.mailbox_credits)),
            mailbox_edges,
            tenant_stalls,
        });
        self.prev = Some(MetricsPrev {
            cycle_end,
            injected: self.cur.injected,
            delivered: self.cur.delivered,
            link_flits: self.cur.link_flits.clone(),
            stalls: self.stalls,
            tenant_stalls: self.tenant_stalls.clone(),
            mailbox_flits: self.mailbox_flits,
            mailbox_credits: self.mailbox_credits,
            mailbox_edges: self.mailbox_edges.clone(),
        });
        // Align the next boundary to the interval grid past this sample.
        self.next_boundary = (cycle_end / self.interval + 1) * self.interval;
    }
}

impl Probe for MetricsSampler {
    fn on_stall(&mut self, cause: StallCause, node: NodeId, _now: u64) {
        self.stalls[cause.index()] += 1;
        if let Some(&t) = self.tenant_of_node.get(usize::from(node.0)) {
            self.tenant_stalls[usize::from(t)][cause.index()] += 1;
        }
    }

    fn on_exchange(&mut self, from: usize, to: usize, flits: usize, credits: usize, _now: u64) {
        self.mailbox_flits += flits as u64;
        self.mailbox_credits += credits as u64;
        let (from, to) = (from as u16, to as u16);
        match self
            .mailbox_edges
            .iter_mut()
            .find(|e| e.0 == from && e.1 == to)
        {
            Some(e) => {
                e.2 += flits as u64;
                e.3 += credits as u64;
            }
            None => {
                self.mailbox_edges
                    .push((from, to, flits as u64, credits as u64));
                self.mailbox_edges.sort_unstable_by_key(|e| (e.0, e.1));
            }
        }
    }

    fn on_cycle_end(&mut self, view: EngineView<'_>, now: u64) {
        if self.cur.shards_seen == 0 || self.cur.cycle != now {
            // First shard of a fresh cycle (fast-forward may have skipped
            // many): reset the gauge accumulators.
            self.cur = CycleGauges {
                cycle: now,
                shards_seen: 0,
                link_flits: vec![0; view.num_links()],
                vc_occupancy: vec![0; view.vcs()],
                ..CycleGauges::default()
            };
        }
        let stats = view.stats();
        self.cur.injected += stats.flits_injected;
        self.cur.delivered += stats.flits_delivered;
        for (acc, &v) in self.cur.link_flits.iter_mut().zip(&stats.link_flits) {
            *acc += v;
        }
        self.cur.buffered += view.buffered_flits();
        self.cur.calendar_flits += view.calendar_flits();
        self.cur.calendar_buckets += view.calendar_buckets();
        self.cur.window += view.window_outstanding();
        for (acc, v) in self.cur.vc_occupancy.iter_mut().zip(view.vc_occupancy()) {
            *acc += v;
        }
        self.cur.shards_seen += 1;
        if self.cur.shards_seen == view.num_shards() && now + 1 >= self.next_boundary {
            self.record_sample();
        }
    }
}

// ---- packet tracer ------------------------------------------------------

/// Ring-buffered packet lifecycle tracer. Keeps the most recent
/// `capacity` events; older ones are dropped (and counted), so tracing
/// a long run keeps bounded memory and the *end* of the run — which is
/// where a stall or crash bisection usually needs to look.
#[derive(Debug, Clone)]
pub struct PacketTracer {
    capacity: usize,
    events: VecDeque<PacketEvent>,
    dropped: u64,
}

impl PacketTracer {
    /// A tracer retaining at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        PacketTracer {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &PacketEvent> {
        self.events.iter()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's capacity (events retained before eviction starts).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push(&mut self, ev: PacketEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn event_json(ev: &PacketEvent) -> Json {
        Obj::new()
            .field("event", ev.kind.name())
            .field("cycle", ev.cycle)
            .field("src", ev.key.src.0)
            .field("dst", ev.dst.0)
            .field(
                "inject_cycle",
                if ev.key.inject_cycle == u64::MAX {
                    Json::Null
                } else {
                    Json::UInt(ev.key.inject_cycle)
                },
            )
            .field(
                "node",
                if ev.node == u16::MAX {
                    Json::Null
                } else {
                    Json::UInt(u64::from(ev.node))
                },
            )
            .field(
                "link",
                if ev.link == u32::MAX {
                    Json::Null
                } else {
                    Json::UInt(u64::from(ev.link))
                },
            )
            .field(
                "vc",
                if ev.vc == u8::MAX {
                    Json::Null
                } else {
                    Json::UInt(u64::from(ev.vc))
                },
            )
            .build()
    }

    /// Serializes the retained events as JSONL, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&Self::event_json(ev).render_compact());
            out.push('\n');
        }
        out
    }

    /// Serializes the retained events in Chrome `trace_event` format
    /// (load in `about://tracing` or <https://ui.perfetto.dev>). Each
    /// packet is a nestable async span (`b`…`e`) on its source node's
    /// track, with VC-allocate and hop instants (`n`) riding the span;
    /// one simulated cycle maps to one microsecond.
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|ev| {
                let ph = match ev.kind {
                    PacketEventKind::Inject => "b",
                    PacketEventKind::Eject => "e",
                    PacketEventKind::VcAlloc | PacketEventKind::Hop => "n",
                };
                let mut args = Obj::new().field("dst", ev.dst.0);
                if ev.link != u32::MAX {
                    args = args.field("link", ev.link);
                }
                if ev.vc != u8::MAX {
                    args = args.field("vc", ev.vc);
                }
                if ev.node != u16::MAX {
                    args = args.field("node", ev.node);
                }
                Obj::new()
                    .field(
                        "name",
                        match ev.kind {
                            PacketEventKind::VcAlloc => "vc_alloc".to_string(),
                            PacketEventKind::Hop => "hop".to_string(),
                            _ => format!("pkt {}->{}", ev.key.src.0, ev.dst.0),
                        },
                    )
                    .field("cat", "packet")
                    .field("ph", ph)
                    .field("id", ev.key.id())
                    .field("ts", ev.cycle)
                    .field("pid", 0u64)
                    .field("tid", ev.key.src.0)
                    .field("args", args)
                    .build()
            })
            .collect();
        Obj::new()
            .field("traceEvents", Json::Arr(events))
            .field("displayTimeUnit", "ns")
            .field(
                "otherData",
                Obj::new()
                    .field("time_unit", "1 cycle = 1 us")
                    .field("dropped_events", self.dropped),
            )
            .build()
            .render()
    }
}

impl Probe for PacketTracer {
    fn on_inject(&mut self, key: PacketKey, dst: NodeId, _flits: u32, now: u64) {
        self.push(PacketEvent {
            kind: PacketEventKind::Inject,
            key,
            dst,
            cycle: now,
            node: key.src.0,
            link: u32::MAX,
            vc: u8::MAX,
        });
    }

    fn on_vc_alloc(&mut self, key: PacketKey, node: NodeId, out_vc: u8, now: u64) {
        self.push(PacketEvent {
            kind: PacketEventKind::VcAlloc,
            key,
            dst: NodeId(u16::MAX),
            cycle: now,
            node: node.0,
            link: u32::MAX,
            vc: out_vc,
        });
    }

    fn on_hop(&mut self, key: PacketKey, link: u32, now: u64) {
        self.push(PacketEvent {
            kind: PacketEventKind::Hop,
            key,
            dst: NodeId(u16::MAX),
            cycle: now,
            node: u16::MAX,
            link,
            vc: u8::MAX,
        });
    }

    fn on_eject(&mut self, key: PacketKey, node: NodeId, now: u64) {
        self.push(PacketEvent {
            kind: PacketEventKind::Eject,
            key,
            dst: NodeId(node.0),
            cycle: now,
            node: node.0,
            link: u32::MAX,
            vc: u8::MAX,
        });
    }
}

// ---- flight recorder ----------------------------------------------------

/// Composite probe bundling an optional [`MetricsSampler`] and an
/// optional [`PacketTracer`] — the one-stop probe the `--metrics` /
/// `--trace` driver flags attach.
#[derive(Debug, Default, Clone)]
pub struct FlightRecorder {
    /// Time-series sampler, when metrics were requested.
    pub sampler: Option<MetricsSampler>,
    /// Lifecycle tracer, when a packet trace was requested.
    pub tracer: Option<PacketTracer>,
}

impl FlightRecorder {
    /// Default sampling interval, cycles.
    pub const DEFAULT_INTERVAL: u64 = 100;
    /// Default trace ring capacity, events.
    pub const DEFAULT_TRACE_CAPACITY: usize = 200_000;

    /// A recorder with nothing attached (equivalent to an enabled probe
    /// that records nothing — use [`NoopProbe`] for zero cost instead).
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Attaches a metrics sampler with the given interval.
    #[must_use]
    pub fn with_metrics(mut self, interval: u64) -> Self {
        self.sampler = Some(MetricsSampler::new(interval));
        self
    }

    /// Attaches a packet tracer with the given ring capacity.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.tracer = Some(PacketTracer::new(capacity));
        self
    }
}

impl Probe for FlightRecorder {
    fn on_inject(&mut self, key: PacketKey, dst: NodeId, flits: u32, now: u64) {
        if let Some(t) = &mut self.tracer {
            t.on_inject(key, dst, flits, now);
        }
    }

    fn on_vc_alloc(&mut self, key: PacketKey, node: NodeId, out_vc: u8, now: u64) {
        if let Some(t) = &mut self.tracer {
            t.on_vc_alloc(key, node, out_vc, now);
        }
    }

    fn on_hop(&mut self, key: PacketKey, link: u32, now: u64) {
        if let Some(t) = &mut self.tracer {
            t.on_hop(key, link, now);
        }
    }

    fn on_eject(&mut self, key: PacketKey, node: NodeId, now: u64) {
        if let Some(t) = &mut self.tracer {
            t.on_eject(key, node, now);
        }
    }

    fn on_stall(&mut self, cause: StallCause, node: NodeId, now: u64) {
        if let Some(s) = &mut self.sampler {
            s.on_stall(cause, node, now);
        }
    }

    fn on_exchange(&mut self, from: usize, to: usize, flits: usize, credits: usize, now: u64) {
        if let Some(s) = &mut self.sampler {
            s.on_exchange(from, to, flits, credits, now);
        }
    }

    fn on_cycle_end(&mut self, view: EngineView<'_>, now: u64) {
        if let Some(s) = &mut self.sampler {
            s.on_cycle_end(view, now);
        }
    }
}

// ---- driver wiring ------------------------------------------------------

/// Parsed `--metrics PATH` / `--trace PATH` / `--trace-cap N` options,
/// threaded through the `repro` drivers and `perfcheck`.
#[derive(Debug, Default, Clone)]
pub struct TelemetryOpts {
    /// Metrics JSONL output path (`--metrics PATH`).
    pub metrics: Option<String>,
    /// Packet trace output path (`--trace PATH`). A `.jsonl` extension
    /// selects JSONL; anything else gets Chrome `trace_event` JSON.
    pub trace: Option<String>,
    /// Packet-trace ring capacity (`--trace-cap N`); 0 keeps
    /// [`FlightRecorder::DEFAULT_TRACE_CAPACITY`]. Long runs overflow
    /// the default ring by orders of magnitude — raise this (or expect
    /// the loud drop warning from [`TelemetryOpts::write`]).
    pub trace_cap: usize,
}

impl TelemetryOpts {
    /// True when any telemetry output was requested.
    pub fn enabled(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some()
    }

    /// Builds the recorder matching the requested outputs (default
    /// interval; `--trace-cap` or the default ring capacity).
    pub fn recorder(&self) -> FlightRecorder {
        let mut r = FlightRecorder::new();
        if self.metrics.is_some() {
            r = r.with_metrics(FlightRecorder::DEFAULT_INTERVAL);
        }
        if self.trace.is_some() {
            let cap = if self.trace_cap > 0 {
                self.trace_cap
            } else {
                FlightRecorder::DEFAULT_TRACE_CAPACITY
            };
            r = r.with_trace(cap);
        }
        r
    }

    /// Writes the recorder's artifacts to the requested paths. A trace
    /// ring that overflowed warns loudly on stderr with the drop ratio —
    /// a silently truncated trace reads as a complete one.
    pub fn write(&self, rec: &FlightRecorder) -> std::io::Result<Vec<String>> {
        let mut written = Vec::new();
        if let (Some(path), Some(s)) = (&self.metrics, &rec.sampler) {
            std::fs::write(path, s.to_jsonl())?;
            written.push(path.clone());
        }
        if let (Some(path), Some(t)) = (&self.trace, &rec.tracer) {
            if t.dropped() > 0 {
                let kept = t.events().count() as u64;
                eprintln!(
                    "WARNING: packet trace ring overflowed: {} events dropped, {} kept \
                     ({:.1}% of the run lost — only the run's tail was retained). \
                     Raise the ring with --trace-cap N (current: {}).",
                    t.dropped(),
                    kept,
                    100.0 * t.dropped() as f64 / (t.dropped() + kept) as f64,
                    kept,
                );
            }
            let body = if path.ends_with(".jsonl") {
                t.to_jsonl()
            } else {
                t.to_chrome_trace()
            };
            std::fs::write(path, body)?;
            written.push(path.clone());
        }
        Ok(written)
    }
}

// ---- engine self-profiling ----------------------------------------------

/// Per-superstep-phase wall time of a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineProfile {
    /// Nanoseconds in the step phase (the five pipeline stages), summed
    /// over workers.
    pub step_ns: u64,
    /// Nanoseconds posting/collecting mailboxes and publishing activity.
    pub exchange_ns: u64,
    /// Nanoseconds blocked in the superstep barriers.
    pub barrier_ns: u64,
    /// Supersteps (stepped cycles) executed, summed over workers — with
    /// W workers each stepped cycle counts W times.
    pub supersteps: u64,
    /// Worker threads that contributed.
    pub workers: usize,
}

impl EngineProfile {
    /// Total accounted nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.step_ns + self.exchange_ns + self.barrier_ns
    }

    /// Fraction of accounted time spent in `phase_ns`.
    pub fn fraction(&self, phase_ns: u64) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            phase_ns as f64 / total as f64
        }
    }
}

/// Thread-safe accumulator the workers of one sharded run flush their
/// phase timings into. Independent of the [`Probe`] machinery, so it
/// composes with multi-threaded runs.
#[derive(Debug, Default)]
pub struct ProfileSink {
    step_ns: AtomicU64,
    exchange_ns: AtomicU64,
    barrier_ns: AtomicU64,
    supersteps: AtomicU64,
}

impl ProfileSink {
    /// An empty sink.
    pub fn new() -> Self {
        ProfileSink::default()
    }

    /// Adds one worker's accumulated phase times.
    pub(crate) fn add(&self, step_ns: u64, exchange_ns: u64, barrier_ns: u64, supersteps: u64) {
        self.step_ns.fetch_add(step_ns, Ordering::Relaxed);
        self.exchange_ns.fetch_add(exchange_ns, Ordering::Relaxed);
        self.barrier_ns.fetch_add(barrier_ns, Ordering::Relaxed);
        self.supersteps.fetch_add(supersteps, Ordering::Relaxed);
    }

    /// The accumulated profile (call after the run joined its workers).
    pub fn profile(&self, workers: usize) -> EngineProfile {
        EngineProfile {
            step_ns: self.step_ns.load(Ordering::Relaxed),
            exchange_ns: self.exchange_ns.load(Ordering::Relaxed),
            barrier_ns: self.barrier_ns.load(Ordering::Relaxed),
            supersteps: self.supersteps.load(Ordering::Relaxed),
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_names_and_indices_are_stable() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(StallCause::CreditStarved.name(), "credit_starved");
    }

    #[test]
    fn packet_key_id_separates_sources_and_cycles() {
        let a = PacketKey {
            src: NodeId(1),
            inject_cycle: 100,
        };
        let b = PacketKey {
            src: NodeId(2),
            inject_cycle: 100,
        };
        let c = PacketKey {
            src: NodeId(1),
            inject_cycle: 101,
        };
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn tracer_ring_drops_oldest() {
        let mut t = PacketTracer::new(2);
        for cycle in 0..5u64 {
            t.on_inject(
                PacketKey {
                    src: NodeId(0),
                    inject_cycle: cycle,
                },
                NodeId(1),
                1,
                cycle,
            );
        }
        assert_eq!(t.dropped(), 3);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
        // Both exports stay well-formed on the partial ring.
        assert_eq!(t.to_jsonl().lines().count(), 2);
        let chrome = t.to_chrome_trace();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"dropped_events\": 3"));
    }

    #[test]
    fn trace_cap_sizes_the_ring_and_accounts_drops() {
        // `--trace-cap N` must actually size the recorder's ring…
        let opts = TelemetryOpts {
            trace: Some("unused.jsonl".into()),
            trace_cap: 3,
            ..TelemetryOpts::default()
        };
        let mut rec = opts.recorder();
        let t = rec.tracer.as_mut().expect("tracer attached");
        for cycle in 0..10u64 {
            t.on_inject(
                PacketKey {
                    src: NodeId(0),
                    inject_cycle: cycle,
                },
                NodeId(1),
                1,
                cycle,
            );
        }
        // …and kept + dropped must account for every event pushed, so
        // the overflow warning's drop ratio is exact.
        let t = rec.tracer.as_ref().expect("tracer attached");
        assert_eq!(t.events().count(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.events().count() as u64 + t.dropped(), 10);
        // trace_cap = 0 keeps the default capacity.
        let default_opts = TelemetryOpts {
            trace: Some("unused.jsonl".into()),
            ..TelemetryOpts::default()
        };
        let rec = default_opts.recorder();
        assert_eq!(
            rec.tracer.expect("tracer attached").capacity(),
            FlightRecorder::DEFAULT_TRACE_CAPACITY
        );
    }

    #[test]
    fn chrome_trace_pairs_async_begin_end() {
        let mut t = PacketTracer::new(16);
        let key = PacketKey {
            src: NodeId(3),
            inject_cycle: 10,
        };
        t.on_inject(key, NodeId(7), 1, 10);
        t.on_hop(key, 42, 12);
        t.on_eject(key, NodeId(7), 20);
        let chrome = t.to_chrome_trace();
        assert!(chrome.contains("\"ph\": \"b\""));
        assert!(chrome.contains("\"ph\": \"n\""));
        assert!(chrome.contains("\"ph\": \"e\""));
        assert!(chrome.contains("\"link\": 42"));
        // The async span id ties begin to end.
        assert_eq!(chrome.matches(&format!("\"id\": {}", key.id())).count(), 3);
    }

    #[test]
    fn sampler_delta_conversion() {
        let mut s = MetricsSampler::new(10);
        s.on_stall(StallCause::VaLoss, NodeId(0), 3);
        s.on_stall(StallCause::VaLoss, NodeId(1), 4);
        s.on_exchange(0, 1, 5, 2, 4);
        // Drive record_sample directly (the engine path is covered by
        // tests/telemetry_parity.rs): two intervals of fake gauges.
        s.cur = CycleGauges {
            cycle: 9,
            shards_seen: 1,
            injected: 100,
            delivered: 60,
            link_flits: vec![40, 0],
            buffered: 7,
            calendar_flits: 3,
            calendar_buckets: 2,
            window: 0,
            vc_occupancy: vec![4, 3],
        };
        s.record_sample();
        s.on_stall(StallCause::SaLoss, NodeId(2), 15);
        s.on_exchange(0, 1, 1, 0, 15);
        s.cur = CycleGauges {
            cycle: 19,
            shards_seen: 1,
            injected: 150,
            delivered: 140,
            link_flits: vec![60, 10],
            buffered: 1,
            calendar_flits: 0,
            calendar_buckets: 0,
            window: 0,
            vc_occupancy: vec![1, 0],
        };
        s.record_sample();
        let [a, b] = s.samples() else {
            panic!("two samples expected");
        };
        assert_eq!((a.cycle, a.span), (9, 10));
        assert_eq!((a.injected, a.delivered), (100, 60));
        assert_eq!(a.stalls[StallCause::VaLoss.index()], 2);
        assert_eq!(a.mailbox_flits, 5);
        assert_eq!(a.mailbox_edges, vec![(0, 1, 5, 2)]);
        assert!((a.link_util_max - 4.0).abs() < 1e-9);
        assert_eq!(a.link_util_argmax, 0);
        // Second sample reports deltas, not cumulative values.
        assert_eq!((b.injected, b.delivered), (50, 80));
        assert_eq!(b.stalls[StallCause::VaLoss.index()], 0);
        assert_eq!(b.stalls[StallCause::SaLoss.index()], 1);
        assert_eq!(b.mailbox_flits, 1);
        assert_eq!(b.mailbox_edges, vec![(0, 1, 1, 0)]);
        assert_eq!(b.vc_occupancy, vec![1, 0]);
        // JSONL export: one line per sample, parseable keys present.
        let jsonl = s.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"stall_va_loss\": 2"));
        assert!(jsonl.contains("\"mailbox_edges\""));
    }

    #[test]
    fn profile_sink_accumulates_and_fractions() {
        let sink = ProfileSink::new();
        sink.add(600, 300, 100, 50);
        sink.add(400, 200, 400, 50);
        let p = sink.profile(2);
        assert_eq!(p.step_ns, 1000);
        assert_eq!(p.exchange_ns, 500);
        assert_eq!(p.barrier_ns, 500);
        assert_eq!(p.supersteps, 100);
        assert_eq!(p.total_ns(), 2000);
        assert!((p.fraction(p.step_ns) - 0.5).abs() < 1e-12);
        let empty = ProfileSink::new().profile(1);
        assert_eq!(empty.fraction(0), 0.0);
    }

    #[test]
    fn telemetry_opts_build_matching_recorder() {
        let none = TelemetryOpts::default();
        assert!(!none.enabled());
        let r = none.recorder();
        assert!(r.sampler.is_none() && r.tracer.is_none());
        let both = TelemetryOpts {
            metrics: Some("m.jsonl".into()),
            trace: Some("t.json".into()),
            trace_cap: 0,
        };
        assert!(both.enabled());
        let r = both.recorder();
        assert!(r.sampler.is_some() && r.tracer.is_some());
    }
}
