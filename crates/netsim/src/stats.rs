//! Simulation statistics.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: every power-of-two octave of the latency
/// histogram is split into `2^HISTOGRAM_SUB_BITS` linear sub-buckets, so
/// a bucket's relative width — and hence the worst-case percentile error —
/// is `2^-HISTOGRAM_SUB_BITS` (12.5%).
pub const HISTOGRAM_SUB_BITS: u32 = 3;

/// Sub-buckets per octave.
const SUBS: usize = 1 << HISTOGRAM_SUB_BITS;

/// Number of log-linear histogram buckets. Buckets `0..8` hold the exact
/// values 0–7; above that, each octave `[2^k, 2^(k+1))` is split into 8
/// linear sub-buckets. 28 octaves cover latencies below 2^30 cycles;
/// anything larger lands in the open-ended last bucket (resolved against
/// `max` when reporting percentiles).
pub const HISTOGRAM_BUCKETS: usize = 28 * SUBS;

/// Bucket index of a latency value (HDR-style log-linear indexing).
#[inline]
fn bucket_of(latency: u64) -> usize {
    if latency < SUBS as u64 {
        return latency as usize;
    }
    let msb = 63 - latency.leading_zeros() as usize;
    let shift = msb - HISTOGRAM_SUB_BITS as usize;
    let octave = shift + 1;
    let sub = ((latency >> shift) & (SUBS as u64 - 1)) as usize;
    (octave * SUBS + sub).min(HISTOGRAM_BUCKETS - 1)
}

/// Largest latency value that falls into bucket `k`.
#[inline]
fn bucket_upper(k: usize) -> u64 {
    if k < SUBS {
        return k as u64;
    }
    let octave = k / SUBS;
    let sub = (k % SUBS) as u64;
    let width = 1u64 << (octave - 1);
    (SUBS as u64 + sub) * width + width - 1
}

/// Latency accumulator for one packet class, with a log-linear histogram
/// for percentile estimation (p50/p95/p99 within 12.5% without per-packet
/// storage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Packets completed.
    pub count: u64,
    /// Sum of packet latencies (injection request → tail ejection), cycles.
    pub sum: u64,
    /// Worst latency observed.
    pub max: u64,
    /// Log-linear bucket counts, always [`HISTOGRAM_BUCKETS`] long. A
    /// `Vec` rather than an array because the real `serde` only derives
    /// for arrays up to 32 elements — the planned vendor-swap must not
    /// break on this field.
    pub histogram: Vec<u64>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            max: 0,
            histogram: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl LatencyStats {
    /// Records one completed packet.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
        self.histogram[bucket_of(latency)] += 1;
    }

    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket index holding the q-quantile sample (rank `ceil(q·count)`,
    /// at least 1). `None` when empty.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(k);
            }
        }
        Some(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper bound of the bucket containing the q-quantile (q in 0..=1).
    /// The log-linear buckets bound the true quantile within 12.5%; use
    /// [`percentile`](Self::percentile) for a value clamped to the observed
    /// maximum. The last bucket is open-ended, so its only usable upper
    /// bound is the observed maximum.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        match self.quantile_bucket(q) {
            None => 0,
            Some(k) if k == HISTOGRAM_BUCKETS - 1 => self.max,
            Some(k) => bucket_upper(k),
        }
    }

    /// The q-quantile latency estimate: the containing bucket's upper
    /// bound, clamped to the observed maximum (so `percentile(1.0) == max`
    /// and a single-sample distribution reports that sample exactly).
    pub fn percentile(&self, q: f64) -> u64 {
        self.quantile_upper_bound(q).min(self.max)
    }

    /// Median latency estimate, cycles.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile latency estimate, cycles.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile latency estimate, cycles.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency estimate, cycles — the bursty-tail
    /// metric the sweep tables report alongside p99. Below 1000 samples
    /// the 99.9 rank rounds up to the last sample, so `p999() == max`.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
    }
}

/// Per-tenant slice of a multi-tenant run's statistics. Tenant traffic
/// is tile-internal by construction ([`hyppi_traffic::TenantSpec`]), so
/// every packet's source and destination share a tenant and each counter
/// below is attributed at the node where the aggregate counter grows —
/// the per-tenant lanes partition the aggregate exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Latency over this tenant's completed packets (own histogram, so
    /// per-tenant p99/p99.9 interference curves come for free).
    pub latency: LatencyStats,
    /// Flits this tenant's NICs pushed into the network.
    pub flits_injected: u64,
    /// Flits delivered to this tenant's destinations.
    pub flits_delivered: u64,
    /// Flits ejected inside the acceptance window.
    pub accepted_flits: u64,
}

impl TenantStats {
    /// Merges another run's (or shard's) lane into this one.
    pub fn merge(&mut self, other: &TenantStats) {
        self.latency.merge(&other.latency);
        self.flits_injected += other.flits_injected;
        self.flits_delivered += other.flits_delivered;
        self.accepted_flits += other.accepted_flits;
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Latency over all packets.
    pub all: LatencyStats,
    /// Latency of 1-flit control packets.
    pub control: LatencyStats,
    /// Latency of multi-flit data packets.
    pub data: LatencyStats,
    /// Cycles simulated.
    pub cycles: u64,
    /// Total flits delivered to their destinations.
    pub flits_delivered: u64,
    /// Total flits pushed into the network by the NICs (emission counter;
    /// with the in-network gauges this gives an independently checkable
    /// flit-conservation ledger: injected = delivered + in-network).
    pub flits_injected: u64,
    /// Flits ejected inside the acceptance window (the measurement window
    /// of a synthetic run; the whole run for traces). Divided by the
    /// window length and the node count this is the *accepted throughput*
    /// — the load the network actually sustained, which under closed-loop
    /// injection flattens at saturation instead of tracking offered load.
    pub accepted_flits: u64,
    /// Peak NIC backlog per source node (packets admitted but not yet
    /// fully emitted), node-id indexed. Under closed-loop injection this
    /// is where overload shows up: the window parks the source and the
    /// backlog grows instead of the network latency.
    pub peak_backlog: Vec<u32>,
    /// Peak closed-loop window occupancy per source node (packets emitted
    /// but not yet fully ejected), node-id indexed. Always bounded by
    /// [`crate::SimConfig::max_outstanding`]; all-zero on open-loop runs
    /// (the window is not tracked there).
    pub peak_outstanding: Vec<u32>,
    /// Flit traversals per link (energy accounting), link-id indexed.
    pub link_flits: Vec<u64>,
    /// Switch traversals per router (energy accounting), node-id indexed.
    pub router_flits: Vec<u64>,
    /// Extra hops taken versus the healthy-mesh route, summed over admitted
    /// packets (clamped at zero per packet). Only counted on fault-aware
    /// runs, where the engine is given the healthy baseline table; always
    /// zero otherwise.
    pub rerouted_hops: u64,
    /// Packets dropped at admission because the routing table has no path
    /// for their (src, dst) pair — traffic to or from dead routers.
    pub unreachable_pairs: u64,
    /// Per-tenant statistic lanes, tenant-id indexed. Empty on
    /// single-tenant runs (the common case); sized by
    /// [`init_tenants`](Self::init_tenants) when the engine is given a
    /// tenant map. The lanes partition the aggregate: summed over tenants
    /// they reproduce `flits_injected` / `flits_delivered` /
    /// `accepted_flits` and the `all` latency class exactly.
    pub tenants: Vec<TenantStats>,
}

impl SimStats {
    /// Creates zeroed stats for a topology of `links` links and `nodes` nodes.
    pub fn new(links: usize, nodes: usize) -> Self {
        SimStats {
            link_flits: vec![0; links],
            router_flits: vec![0; nodes],
            peak_backlog: vec![0; nodes],
            peak_outstanding: vec![0; nodes],
            ..Default::default()
        }
    }

    /// Sizes the per-tenant lanes for a `count`-tenant run (zeroed).
    pub fn init_tenants(&mut self, count: usize) {
        self.tenants = vec![TenantStats::default(); count];
    }

    /// Records one completed packet.
    pub fn record_packet(&mut self, flits: u32, latency: u64) {
        self.all.record(latency);
        if flits == 1 {
            self.control.record(latency);
        } else {
            self.data.record(latency);
        }
    }

    /// Mean packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.all.mean()
    }

    /// Merges another run's (or shard's) counters into this one: latency
    /// classes, delivered flits, and the per-link / per-router traversal
    /// arrays (which must be same-topology sized). `cycles` is *not*
    /// summed — shards advance in lockstep, so the caller sets the shared
    /// cycle count once.
    pub fn absorb(&mut self, other: &SimStats) {
        assert_eq!(self.link_flits.len(), other.link_flits.len());
        assert_eq!(self.router_flits.len(), other.router_flits.len());
        assert_eq!(self.peak_backlog.len(), other.peak_backlog.len());
        self.all.merge(&other.all);
        self.control.merge(&other.control);
        self.data.merge(&other.data);
        self.flits_delivered += other.flits_delivered;
        self.flits_injected += other.flits_injected;
        self.accepted_flits += other.accepted_flits;
        self.rerouted_hops += other.rerouted_hops;
        self.unreachable_pairs += other.unreachable_pairs;
        for (a, b) in self.link_flits.iter_mut().zip(&other.link_flits) {
            *a += b;
        }
        for (a, b) in self.router_flits.iter_mut().zip(&other.router_flits) {
            *a += b;
        }
        // Each node is owned by exactly one shard, so the elementwise max
        // just picks the owner's observation.
        for (a, b) in self.peak_backlog.iter_mut().zip(&other.peak_backlog) {
            *a = (*a).max(*b);
        }
        for (a, b) in self
            .peak_outstanding
            .iter_mut()
            .zip(&other.peak_outstanding)
        {
            *a = (*a).max(*b);
        }
        // Tenant lanes merge elementwise. A side without lanes (empty) is
        // a zero contribution; with lanes on both sides the tenant counts
        // must agree.
        if self.tenants.is_empty() {
            self.tenants = other.tenants.clone();
        } else if !other.tenants.is_empty() {
            assert_eq!(self.tenants.len(), other.tenants.len());
            for (a, b) in self.tenants.iter_mut().zip(&other.tenants) {
                a.merge(b);
            }
        }
    }

    /// Total flit-link-traversals (flit-hops) — the physical work the
    /// network performed; the simulation-throughput unit reported by
    /// `perfcheck` (Mflit-hops/s).
    pub fn total_flit_hops(&self) -> u64 {
        self.link_flits.iter().sum()
    }

    /// Total switch traversals across all routers.
    pub fn total_router_traversals(&self) -> u64 {
        self.router_flits.iter().sum()
    }

    /// Accepted throughput: flits ejected inside the acceptance window,
    /// per node per window cycle. This is the quantity that flattens at
    /// the saturation point under closed-loop injection.
    pub fn accepted_throughput(&self, nodes: usize, window_cycles: u64) -> f64 {
        if window_cycles == 0 {
            0.0
        } else {
            self.accepted_flits as f64 / window_cycles as f64 / nodes as f64
        }
    }

    /// Delivered throughput in flits per cycle per node.
    pub fn throughput_per_node(&self, nodes: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / self.cycles as f64 / nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_accumulate() {
        let mut l = LatencyStats::default();
        l.record(10);
        l.record(20);
        assert_eq!(l.count, 2);
        assert_eq!(l.mean(), 15.0);
        assert_eq!(l.max, 20);
    }

    #[test]
    fn packet_classes_split() {
        let mut s = SimStats::new(4, 2);
        s.record_packet(1, 8);
        s.record_packet(32, 40);
        s.record_packet(32, 60);
        assert_eq!(s.control.count, 1);
        assert_eq!(s.data.count, 2);
        assert_eq!(s.all.count, 3);
        assert_eq!(s.data.mean(), 50.0);
    }

    #[test]
    fn absorb_sums_disjoint_shards() {
        // Two shards of the same 4-link / 2-node topology: absorbing one
        // into the other must reproduce a single-engine accumulation.
        let mut a = SimStats::new(4, 2);
        a.record_packet(1, 8);
        a.flits_delivered = 1;
        a.link_flits[0] = 3;
        a.router_flits[0] = 5;
        let mut b = SimStats::new(4, 2);
        b.record_packet(32, 40);
        b.flits_delivered = 32;
        b.link_flits[2] = 7;
        b.router_flits[1] = 9;
        a.absorb(&b);
        assert_eq!(a.all.count, 2);
        assert_eq!(a.control.count, 1);
        assert_eq!(a.data.count, 1);
        assert_eq!(a.flits_delivered, 33);
        assert_eq!(a.link_flits, vec![3, 0, 7, 0]);
        assert_eq!(a.router_flits, vec![5, 9]);
    }

    #[test]
    fn absorb_merges_closed_loop_fields() {
        // Counters sum; per-node peaks take the owning shard's value
        // (disjoint ownership means the other shard reports zero).
        let mut a = SimStats::new(1, 3);
        a.flits_injected = 10;
        a.accepted_flits = 6;
        a.peak_backlog[0] = 4;
        a.peak_outstanding[0] = 2;
        let mut b = SimStats::new(1, 3);
        b.flits_injected = 5;
        b.accepted_flits = 3;
        b.peak_backlog[2] = 7;
        b.peak_outstanding[2] = 1;
        a.rerouted_hops = 2;
        a.unreachable_pairs = 1;
        b.rerouted_hops = 3;
        b.unreachable_pairs = 4;
        a.absorb(&b);
        assert_eq!(a.flits_injected, 15);
        assert_eq!(a.accepted_flits, 9);
        assert_eq!(a.rerouted_hops, 5);
        assert_eq!(a.unreachable_pairs, 5);
        assert_eq!(a.peak_backlog, vec![4, 0, 7]);
        assert_eq!(a.peak_outstanding, vec![2, 0, 1]);
        assert_eq!(a.accepted_throughput(3, 3), 1.0);
        assert_eq!(SimStats::new(1, 1).accepted_throughput(1, 0), 0.0);
    }

    #[test]
    fn absorb_merges_tenant_lanes() {
        let mut a = SimStats::new(1, 2);
        a.init_tenants(2);
        a.tenants[0].latency.record(10);
        a.tenants[0].flits_injected = 4;
        a.tenants[0].flits_delivered = 3;
        a.tenants[1].accepted_flits = 2;
        let mut b = SimStats::new(1, 2);
        b.init_tenants(2);
        b.tenants[0].latency.record(30);
        b.tenants[0].flits_injected = 1;
        b.tenants[1].flits_delivered = 5;
        b.tenants[1].accepted_flits = 6;
        a.absorb(&b);
        assert_eq!(a.tenants[0].latency.count, 2);
        assert_eq!(a.tenants[0].latency.max, 30);
        assert_eq!(a.tenants[0].flits_injected, 5);
        assert_eq!(a.tenants[0].flits_delivered, 3);
        assert_eq!(a.tenants[1].flits_delivered, 5);
        assert_eq!(a.tenants[1].accepted_flits, 8);
        // Absorbing a lane-less run leaves the lanes untouched; absorbing
        // lanes into a lane-less run adopts them.
        let before = a.tenants.clone();
        a.absorb(&SimStats::new(1, 2));
        assert_eq!(a.tenants, before);
        let mut fresh = SimStats::new(1, 2);
        fresh.absorb(&a);
        assert_eq!(fresh.tenants, before);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::default();
        a.record(10);
        let mut b = LatencyStats::default();
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.mean(), 20.0);
        assert_eq!(a.max, 30);
        assert_eq!(a.histogram.iter().sum::<u64>(), 2);
        // Merged percentiles see both samples.
        assert_eq!(a.percentile(1.0), 30);
    }

    #[test]
    fn buckets_are_exact_below_eight() {
        let mut l = LatencyStats::default();
        for v in 1..8u64 {
            l.record(v);
        }
        for v in 1..8usize {
            assert_eq!(l.histogram[v], 1);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's upper bound maps back into that bucket, and the
        // value one above it maps into the next.
        for k in 1..HISTOGRAM_BUCKETS - 1 {
            let hi = bucket_upper(k);
            assert_eq!(bucket_of(hi), k, "upper({k}) = {hi}");
            assert_eq!(bucket_of(hi + 1), k + 1, "upper({k})+1 = {}", hi + 1);
        }
        // The last bucket is open-ended.
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn log_linear_resolution_bounds_error() {
        // The bucket containing v is never wider than v/8 (12.5%).
        for v in [9u64, 100, 1000, 12345, 1 << 20] {
            let k = bucket_of(v);
            let hi = bucket_upper(k);
            let lo = if k == 0 { 0 } else { bucket_upper(k - 1) + 1 };
            assert!(lo <= v && v <= hi, "{v} in [{lo}, {hi}]");
            assert!(
                (hi - lo + 1) as f64 <= v as f64 / 8.0 + 1.0,
                "{v}: width {}",
                hi - lo + 1
            );
        }
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut l = LatencyStats::default();
        for v in [4u64, 5, 6, 7, 100] {
            l.record(v);
        }
        // 80% of packets are ≤ 7; values below 8 are bucketed exactly.
        assert_eq!(l.quantile_upper_bound(0.8), 7);
        // p100 covers the 100-cycle straggler: bucket [96, 103] clamps to
        // the observed max.
        assert_eq!(l.quantile_upper_bound(1.0), 103);
        assert_eq!(l.percentile(1.0), 100);
        assert_eq!(LatencyStats::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut l = LatencyStats::default();
        for v in 1..=1000u64 {
            l.record(v);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let p = l.percentile(q);
            assert!(p >= prev, "percentile({q}) = {p} < {prev}");
            prev = p;
        }
        assert_eq!(l.percentile(1.0), 1000);
        // p50 of 1..=1000 is ~500; log-linear error is bounded by 12.5%.
        let p50 = l.p50() as f64;
        assert!((500.0..=570.0).contains(&p50), "p50 {p50}");
        let p99 = l.p99() as f64;
        assert!((990.0..=1000.0 * 1.125).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn open_ended_last_bucket_reports_max() {
        // Values past the covered range land in the clamped last bucket;
        // its only honest upper bound is the observed maximum.
        let mut l = LatencyStats::default();
        l.record(1 << 31);
        assert_eq!(l.histogram[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(l.percentile(1.0), 1 << 31);
        assert_eq!(l.quantile_upper_bound(0.5), 1 << 31);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: every quantile is 0.
        let empty = LatencyStats::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.percentile(q), 0);
        }
        // Single sample: every quantile is that sample, exactly.
        let mut one = LatencyStats::default();
        one.record(37);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(q), 37, "q={q}");
        }
        assert_eq!(one.p50(), 37);
        assert_eq!(one.p99(), 37);
        assert_eq!(one.p999(), 37);
    }

    #[test]
    fn p999_tracks_the_extreme_tail() {
        // Below 1000 samples the 99.9 rank rounds up to the last sample.
        let mut small = LatencyStats::default();
        for v in [5u64, 6, 7, 500] {
            small.record(v);
        }
        assert_eq!(small.p999(), 500);
        assert!(small.p999() >= small.p99());
        // 10_000 samples with a just-over-1-per-mille straggler
        // population (rank 9990 of 10_000 must fall *inside* the
        // stragglers): p99 stays in the bulk, p999 reaches them.
        let mut l = LatencyStats::default();
        for _ in 0..9989 {
            l.record(10);
        }
        for _ in 0..11 {
            l.record(5000);
        }
        assert_eq!(l.p99(), 10);
        assert_eq!(l.p999(), 5000);
        assert!(l.p999() <= l.max);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_bad_quantile() {
        LatencyStats::default().quantile_upper_bound(1.5);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(LatencyStats::default().mean(), 0.0);
        assert_eq!(SimStats::new(1, 1).throughput_per_node(1), 0.0);
    }
}
