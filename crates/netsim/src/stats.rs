//! Simulation statistics.

use serde::{Deserialize, Serialize};

/// Number of logarithmic histogram buckets (bucket k holds latencies in
/// `[2^k, 2^(k+1))`; the last bucket is open-ended).
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Latency accumulator for one packet class, with a log₂ histogram for
/// percentile estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Packets completed.
    pub count: u64,
    /// Sum of packet latencies (injection request → tail ejection), cycles.
    pub sum: u64,
    /// Worst latency observed.
    pub max: u64,
    /// Log₂ bucket counts.
    pub histogram: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            max: 0,
            histogram: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl LatencyStats {
    /// Records one completed packet.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.histogram[bucket] += 1;
    }

    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile (q in 0..=1).
    /// Coarse by design (power-of-two buckets); useful for tail latency
    /// ("p99 is below N cycles") without per-packet storage.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (k + 1);
            }
        }
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Latency over all packets.
    pub all: LatencyStats,
    /// Latency of 1-flit control packets.
    pub control: LatencyStats,
    /// Latency of multi-flit data packets.
    pub data: LatencyStats,
    /// Cycles simulated.
    pub cycles: u64,
    /// Total flits delivered to their destinations.
    pub flits_delivered: u64,
    /// Flit traversals per link (energy accounting), link-id indexed.
    pub link_flits: Vec<u64>,
    /// Switch traversals per router (energy accounting), node-id indexed.
    pub router_flits: Vec<u64>,
}

impl SimStats {
    /// Creates zeroed stats for a topology of `links` links and `nodes` nodes.
    pub fn new(links: usize, nodes: usize) -> Self {
        SimStats {
            link_flits: vec![0; links],
            router_flits: vec![0; nodes],
            ..Default::default()
        }
    }

    /// Records one completed packet.
    pub fn record_packet(&mut self, flits: u32, latency: u64) {
        self.all.record(latency);
        if flits == 1 {
            self.control.record(latency);
        } else {
            self.data.record(latency);
        }
    }

    /// Mean packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.all.mean()
    }

    /// Total flit-link-traversals (flit-hops) — the physical work the
    /// network performed; the simulation-throughput unit reported by
    /// `perfcheck` (Mflit-hops/s).
    pub fn total_flit_hops(&self) -> u64 {
        self.link_flits.iter().sum()
    }

    /// Total switch traversals across all routers.
    pub fn total_router_traversals(&self) -> u64 {
        self.router_flits.iter().sum()
    }

    /// Delivered throughput in flits per cycle per node.
    pub fn throughput_per_node(&self, nodes: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / self.cycles as f64 / nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_accumulate() {
        let mut l = LatencyStats::default();
        l.record(10);
        l.record(20);
        assert_eq!(l.count, 2);
        assert_eq!(l.mean(), 15.0);
        assert_eq!(l.max, 20);
    }

    #[test]
    fn packet_classes_split() {
        let mut s = SimStats::new(4, 2);
        s.record_packet(1, 8);
        s.record_packet(32, 40);
        s.record_packet(32, 60);
        assert_eq!(s.control.count, 1);
        assert_eq!(s.data.count, 2);
        assert_eq!(s.all.count, 3);
        assert_eq!(s.data.mean(), 50.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::default();
        a.record(10);
        let mut b = LatencyStats::default();
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.mean(), 20.0);
        assert_eq!(a.max, 30);
        assert_eq!(a.histogram.iter().sum::<u64>(), 2);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut l = LatencyStats::default();
        l.record(1); // bucket 0
        l.record(2); // bucket 1
        l.record(3); // bucket 1
        l.record(1000); // bucket 9
        assert_eq!(l.histogram[0], 1);
        assert_eq!(l.histogram[1], 2);
        assert_eq!(l.histogram[9], 1);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut l = LatencyStats::default();
        for v in [4u64, 5, 6, 7, 100] {
            l.record(v);
        }
        // 80% of packets are ≤ 7 → p80 bound is the bucket above 4..8.
        assert_eq!(l.quantile_upper_bound(0.8), 8);
        // p100 covers the 100-cycle straggler (bucket 64..128).
        assert_eq!(l.quantile_upper_bound(1.0), 128);
        assert_eq!(LatencyStats::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_bad_quantile() {
        LatencyStats::default().quantile_upper_bound(1.5);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(LatencyStats::default().mean(), 0.0);
        assert_eq!(SimStats::new(1, 1).throughput_per_node(1), 0.0);
    }
}
