//! Per-node router control state.
//!
//! Each node is an input-buffered virtual-channel router:
//!
//! * in-port 0 is packet injection from the local core; in-port `i ≥ 1`
//!   receives the topology's `incoming(node)[i-1]` link;
//! * out-port 0 is ejection to the local core; out-port `i ≥ 1` drives
//!   `outgoing(node)[i-1]`;
//! * every in-port holds `vcs` buffered virtual channels with a three-state
//!   machine (idle → routed → active) mirroring the RC / VA / SA+ST
//!   pipeline of the paper's Fig. 4 router.
//!
//! Since the active-set engine rewrite, [`NodeState`] carries only the
//! *cold* control state of a router: port wiring, the pre-resolved
//! routing column, and the NIC source queue. Everything the arbitration
//! hot path touches — VC flit rings, per-VC state machines (packed
//! metadata words, `crate::flit::meta`), round-robin pointers,
//! output-VC holder bitmasks, routed/active bitmasks, per-node control
//! records, double-buffered credit cells — lives in flat
//! structure-of-arrays storage owned by the engine core
//! (`crate::shard::ShardState`, of which [`crate::Simulator`] is the
//! single-shard case), indexed by shard-local VC slot or (node,
//! out-port) entry; see the `shard` module docs (and the workspace's
//! `docs/ARCHITECTURE.md`) for the layout and the superstep exchange
//! protocol.
//!
//! ## Deadlock freedom (express dateline classes)
//!
//! Routing is X-then-Y (`RoutingTable::compute_xy`), which eliminates all
//! turn cycles of the base mesh. Express links can still create horizontal
//! cycles (a packet may walk *away* from its destination to reach an
//! express endpoint — e.g. the span-15 "ring wrap"). We break these with a
//! dateline discipline: VCs are split into class A = `{0, 1}` and class
//! B = `{2, 3}`; a packet starts in class A and moves permanently to class
//! B after its first express traversal. Post-express walks never re-enter
//! an express link on a minimal route, so class-B dependencies are acyclic,
//! and class transitions only go A → B. Topologies without express links
//! use all VCs as one class (X-then-Y alone is acyclic there).

use hyppi_topology::{LinkId, NodeId, RoutingTable, Topology};
use std::collections::VecDeque;

/// State machine of one input VC, applying to the packet at its queue head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet being processed.
    Idle,
    /// Route computed; awaiting an output VC.
    Routed {
        /// Output port the head packet must leave through.
        out_port: u8,
    },
    /// Output VC held; flits may traverse the switch.
    Active {
        /// Output port the packet is using.
        out_port: u8,
        /// Output VC held on that port.
        out_vc: u8,
    },
}

/// In-progress packet emission from the local core.
#[derive(Debug, Clone, Copy)]
pub struct Emission {
    /// Packet being emitted.
    pub packet: u32,
    /// Flits already pushed into the injection VC.
    pub emitted: u32,
    /// Total flits of the packet.
    pub total: u32,
    /// Injection VC in use.
    pub vc: u8,
    /// Destination (copied into each flit).
    pub dst: NodeId,
    /// Original injection timestamp.
    pub inject_cycle: u64,
}

/// Router + NIC control state of one node (flit buffers live in the
/// simulator's SoA arrays).
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's id.
    pub node: NodeId,
    /// Incoming links, in in-port order (port `i+1`).
    pub in_links: Vec<LinkId>,
    /// Outgoing links, in out-port order (port `i+1`).
    pub out_links: Vec<LinkId>,
    /// Out-port index (0 = eject) for every destination node.
    pub route_port: Vec<u8>,
    /// Packets waiting in the local source queue (unbounded NIC queue).
    pub src_queue: VecDeque<u32>,
    /// Packet currently being emitted into the injection port, if any.
    pub emitting: Option<Emission>,
}

impl NodeState {
    /// Builds the control state for one node, pre-resolving its routing
    /// column.
    pub fn new(topo: &Topology, routes: &RoutingTable, node: NodeId) -> Self {
        let in_links = topo.incoming(node).to_vec();
        let out_links = topo.outgoing(node).to_vec();
        // Map "next link" to this node's out-port index for every dest.
        let mut route_port = vec![0u8; topo.num_nodes()];
        for dst in topo.nodes() {
            route_port[dst.index()] = match routes.next_link(node, dst) {
                None => 0,
                Some(lid) => {
                    let pos = out_links
                        .iter()
                        .position(|&l| l == lid)
                        .expect("routing table uses this node's own out links");
                    (pos + 1) as u8
                }
            };
        }
        NodeState {
            node,
            in_links,
            out_links,
            route_port,
            src_queue: VecDeque::new(),
            emitting: None,
        }
    }

    /// Number of in-ports (injection + links).
    #[inline]
    pub fn in_ports(&self) -> usize {
        1 + self.in_links.len()
    }

    /// Number of out-ports (ejection + links).
    #[inline]
    pub fn out_ports(&self) -> usize {
        1 + self.out_links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::LinkTechnology;
    use hyppi_topology::{mesh, MeshSpec};

    #[test]
    fn node_state_ports_match_topology() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let r = RoutingTable::compute_xy(&t);
        // Interior node: 4 neighbours.
        let n = NodeState::new(&t, &r, NodeId(17));
        assert_eq!(n.in_ports(), 5);
        assert_eq!(n.out_ports(), 5);
        // Corner node: 2 neighbours.
        let c = NodeState::new(&t, &r, NodeId(0));
        assert_eq!(c.in_ports(), 3);
    }

    #[test]
    fn route_ports_point_at_real_links() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let r = RoutingTable::compute_xy(&t);
        let n = NodeState::new(&t, &r, NodeId(0));
        // Destination = self: ejection port.
        assert_eq!(n.route_port[0], 0);
        for dst in t.nodes().skip(1) {
            let port = n.route_port[dst.index()];
            assert!(port >= 1);
            let lid = n.out_links[usize::from(port) - 1];
            assert_eq!(t.link(lid).src, NodeId(0));
        }
    }

    #[test]
    fn fresh_state_is_quiescent() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let r = RoutingTable::compute_xy(&t);
        let n = NodeState::new(&t, &r, NodeId(5));
        assert!(n.src_queue.is_empty());
        assert!(n.emitting.is_none());
    }
}
