//! Per-node router state.
//!
//! Each node is an input-buffered virtual-channel router:
//!
//! * in-port 0 is packet injection from the local core; in-port `i ≥ 1`
//!   receives the topology's `incoming(node)[i-1]` link;
//! * out-port 0 is ejection to the local core; out-port `i ≥ 1` drives
//!   `outgoing(node)[i-1]`;
//! * every in-port holds `vcs` buffered virtual channels with a three-state
//!   machine (idle → routed → active) mirroring the RC / VA / SA+ST
//!   pipeline of the paper's Fig. 4 router.
//!
//! ## Deadlock freedom (express dateline classes)
//!
//! Routing is X-then-Y (`RoutingTable::compute_xy`), which eliminates all
//! turn cycles of the base mesh. Express links can still create horizontal
//! cycles (a packet may walk *away* from its destination to reach an
//! express endpoint — e.g. the span-15 "ring wrap"). We break these with a
//! dateline discipline: VCs are split into class A = `{0, 1}` and class
//! B = `{2, 3}`; a packet starts in class A and moves permanently to class
//! B after its first express traversal. Post-express walks never re-enter
//! an express link on a minimal route, so class-B dependencies are acyclic,
//! and class transitions only go A → B. Topologies without express links
//! use all VCs as one class (X-then-Y alone is acyclic there).

use crate::flit::Flit;
use hyppi_topology::{LinkId, NodeId, RoutingTable, Topology};
use std::collections::VecDeque;

/// State machine of one input VC, applying to the packet at its queue head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet being processed.
    Idle,
    /// Route computed; awaiting an output VC.
    Routed {
        /// Output port the head packet must leave through.
        out_port: u8,
    },
    /// Output VC held; flits may traverse the switch.
    Active {
        /// Output port the packet is using.
        out_port: u8,
        /// Output VC held on that port.
        out_vc: u8,
    },
}

/// One buffered input virtual channel.
#[derive(Debug, Clone)]
pub struct InputVc {
    /// Buffered flits, head at the front.
    pub queue: VecDeque<Flit>,
    /// Head-packet processing state.
    pub state: VcState,
}

impl InputVc {
    fn new(depth: usize) -> Self {
        InputVc {
            queue: VecDeque::with_capacity(depth),
            state: VcState::Idle,
        }
    }
}

/// In-progress packet emission from the local core.
#[derive(Debug, Clone, Copy)]
pub struct Emission {
    /// Packet being emitted.
    pub packet: u32,
    /// Flits already pushed into the injection VC.
    pub emitted: u32,
    /// Total flits of the packet.
    pub total: u32,
    /// Injection VC in use.
    pub vc: u8,
    /// Destination (copied into each flit).
    pub dst: NodeId,
    /// Original injection timestamp.
    pub inject_cycle: u64,
}

/// Full router + NIC state of one node.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's id.
    pub node: NodeId,
    /// Incoming links, in in-port order (port `i+1`).
    pub in_links: Vec<LinkId>,
    /// Outgoing links, in out-port order (port `i+1`).
    pub out_links: Vec<LinkId>,
    /// Out-port index (0 = eject) for every destination node.
    pub route_port: Vec<u8>,
    /// Input VCs, indexed `in_port * vcs + vc`.
    pub vcs: Vec<InputVc>,
    /// Output VC holders, indexed `out_port * vcs + vc`:
    /// `Some((in_port, in_vc))` while a packet owns the VC.
    pub out_holder: Vec<Option<(u8, u8)>>,
    /// Switch-allocation round-robin pointer per out-port.
    pub sa_rr: Vec<u32>,
    /// VC-allocation round-robin pointer per out-port.
    pub va_rr: Vec<u32>,
    /// Packets waiting in the local source queue (unbounded NIC queue).
    pub src_queue: VecDeque<u32>,
    /// Packet currently being emitted into the injection port, if any.
    pub emitting: Option<Emission>,
    /// Bitmask of in-ports that already sent a flit this cycle.
    pub in_port_used: u32,
    /// Input VCs currently in `Routed` state (VA fast path).
    pub routed_count: u16,
    /// Input VCs in `Active` state per out-port (SA fast path).
    pub active_for_out: Vec<u16>,
}

impl NodeState {
    /// Builds the state for one node, pre-resolving its routing column.
    pub fn new(topo: &Topology, routes: &RoutingTable, node: NodeId, vcs: usize) -> Self {
        let in_links = topo.incoming(node).to_vec();
        let out_links = topo.outgoing(node).to_vec();
        // Map "next link" to this node's out-port index for every dest.
        let mut route_port = vec![0u8; topo.num_nodes()];
        for dst in topo.nodes() {
            route_port[dst.index()] = match routes.next_link(node, dst) {
                None => 0,
                Some(lid) => {
                    let pos = out_links
                        .iter()
                        .position(|&l| l == lid)
                        .expect("routing table uses this node's own out links");
                    (pos + 1) as u8
                }
            };
        }
        let in_ports = 1 + in_links.len();
        let out_ports = 1 + out_links.len();
        NodeState {
            node,
            in_links,
            out_links,
            route_port,
            vcs: (0..in_ports * vcs).map(|_| InputVc::new(8)).collect(),
            out_holder: vec![None; out_ports * vcs],
            sa_rr: vec![0; out_ports],
            va_rr: vec![0; out_ports],
            src_queue: VecDeque::new(),
            emitting: None,
            in_port_used: 0,
            routed_count: 0,
            active_for_out: vec![0; out_ports],
        }
    }

    /// Number of in-ports (injection + links).
    #[inline]
    pub fn in_ports(&self) -> usize {
        1 + self.in_links.len()
    }

    /// Number of out-ports (ejection + links).
    #[inline]
    pub fn out_ports(&self) -> usize {
        1 + self.out_links.len()
    }

    /// Whether any flit is buffered anywhere in this node.
    pub fn has_buffered_flits(&self) -> bool {
        self.vcs.iter().any(|v| !v.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::LinkTechnology;
    use hyppi_topology::{mesh, MeshSpec};

    #[test]
    fn node_state_ports_match_topology() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let r = RoutingTable::compute_xy(&t);
        // Interior node: 4 neighbours.
        let n = NodeState::new(&t, &r, NodeId(17), 4);
        assert_eq!(n.in_ports(), 5);
        assert_eq!(n.out_ports(), 5);
        assert_eq!(n.vcs.len(), 5 * 4);
        assert_eq!(n.out_holder.len(), 5 * 4);
        // Corner node: 2 neighbours.
        let c = NodeState::new(&t, &r, NodeId(0), 4);
        assert_eq!(c.in_ports(), 3);
    }

    #[test]
    fn route_ports_point_at_real_links() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let r = RoutingTable::compute_xy(&t);
        let n = NodeState::new(&t, &r, NodeId(0), 4);
        // Destination = self: ejection port.
        assert_eq!(n.route_port[0], 0);
        for dst in t.nodes().skip(1) {
            let port = n.route_port[dst.index()];
            assert!(port >= 1);
            let lid = n.out_links[usize::from(port) - 1];
            assert_eq!(t.link(lid).src, NodeId(0));
        }
    }

    #[test]
    fn fresh_state_is_quiescent() {
        let t = mesh(MeshSpec::paper(LinkTechnology::Electronic));
        let r = RoutingTable::compute_xy(&t);
        let n = NodeState::new(&t, &r, NodeId(5), 4);
        assert!(!n.has_buffered_flits());
        assert!(n.vcs.iter().all(|v| v.state == VcState::Idle));
        let _ = Flit {
            packet: 0,
            dst: NodeId(0),
            is_head: true,
            is_tail: true,
            ready: 0,
        };
    }
}
