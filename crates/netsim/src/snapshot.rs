//! Versioned, std-only checkpoint format for simulator state.
//!
//! A [`Snapshot`] captures the complete *logical* state of a simulation at
//! a cycle boundary — everything needed so that `run N cycles` equals
//! `snapshot at N + restore + run remainder`, bit-for-bit in [`SimStats`]
//! including the latency histograms. The format is deliberately
//! **partition-independent**: it describes the network the way the
//! reference engine does (per-node input VCs, per-link in-flight flits, a
//! global packet table), so a snapshot taken from a P-shard
//! [`crate::ShardedSimulator`] restores into a P'=1 [`crate::Simulator`]
//! (or any other shard count) and vice versa, and the same bytes restore
//! into [`crate::ReferenceSimulator`] for parity checks.
//!
//! The byte-level layout, the canonicalization rules (credit derivation,
//! latency-1 bypass stripping, per-link event ordering), and the
//! restore-equals-continue argument are documented in
//! `docs/SNAPSHOT_FORMAT.md` at the workspace root — that document is the
//! contract; this module is its implementation.
//!
//! ## Header and mismatch rules
//!
//! Every snapshot starts with a fixed 120-byte header:
//!
//! * magic `b"HYPSNAP1"` — rejects non-snapshots ([`SnapshotError::BadMagic`]);
//! * format version (currently 2) — rejects other formats
//!   ([`SnapshotError::BadVersion`]);
//! * a **plan fingerprint** (FNV-1a 64 over topology links, routing table,
//!   the behavior-relevant [`crate::SimConfig`] fields, and the fault
//!   baseline) — restoring under a different plan is
//!   [`SnapshotError::PlanMismatch`]. The shard layout and `max_cycles`
//!   are deliberately *excluded*: re-partitioning and extending the cycle
//!   budget are supported on resume;
//! * a **workload fingerprint** — trace content, or `(warmup, measure,
//!   seed)` for synthetic runs. The traffic matrix is deliberately
//!   excluded from the synthetic fingerprint so warm-start sweeps can
//!   resume one warmed state under many injection rates. A zero
//!   fingerprint means "unconstrained" (manual-stepping snapshots).
//!
//! Truncated or internally inconsistent bytes decode to
//! [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`]; decoding
//! never panics on untrusted input.

use crate::config::SimConfig;
use crate::stats::{LatencyStats, SimStats, TenantStats, HISTOGRAM_BUCKETS};
use hyppi_topology::{LinkClass, RoutingTable, Topology};
use hyppi_traffic::{TenantMap, Trace};

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"HYPSNAP1";

/// Current snapshot format version. Version 2 added the per-tenant
/// statistic lanes to the stats section (see `docs/SNAPSHOT_FORMAT.md`);
/// version-1 bytes are rejected with [`SnapshotError::BadVersion`].
pub const SNAPSHOT_VERSION: u32 = 2;

/// Fixed header length in bytes.
const HEADER_LEN: usize = 120;

/// Why a snapshot failed to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is not one this build can read.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The snapshot was taken under a different (topology, routing,
    /// config, baseline) plan.
    PlanMismatch,
    /// The snapshot was taken under a different workload (trace content
    /// or synthetic `(warmup, measure, seed)`).
    WorkloadMismatch,
    /// The byte stream ended before the encoded state did.
    Truncated,
    /// The bytes decode to an internally inconsistent state.
    Corrupt,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a hyppi snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
            ),
            SnapshotError::PlanMismatch => write!(
                f,
                "snapshot was taken under a different topology/routing/config plan"
            ),
            SnapshotError::WorkloadMismatch => {
                write!(f, "snapshot was taken under a different workload")
            }
            SnapshotError::Truncated => write!(f, "snapshot bytes are truncated"),
            SnapshotError::Corrupt => write!(f, "snapshot bytes are corrupt"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// An opaque, versioned checkpoint of simulator state.
///
/// Produced by `Simulator::snapshot` / the `run_*_until` entry points;
/// consumed by `restore` / `resume_*` on any of the three engines. The
/// raw bytes are stable across processes and suitable for writing to disk
/// (`repro npb32 --save/--resume` does exactly that).
#[derive(Debug, Clone)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps raw bytes read back from disk, validating the header (magic,
    /// version, length). Plan/workload fingerprints are checked later, at
    /// restore time, against the engine they are restored into.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[0..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32(&bytes, 8);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        Ok(Snapshot { bytes })
    }

    /// The serialized snapshot bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The cycle boundary this snapshot was taken at; restored engines
    /// resume at exactly this cycle.
    pub fn now(&self) -> u64 {
        read_u64(&self.bytes, 40)
    }

    /// Number of nodes in the snapshotted topology.
    pub fn num_nodes(&self) -> u32 {
        read_u32(&self.bytes, 12)
    }

    /// Number of links in the snapshotted topology.
    pub fn num_links(&self) -> u32 {
        read_u32(&self.bytes, 16)
    }

    pub(crate) fn plan_hash(&self) -> u64 {
        read_u64(&self.bytes, 24)
    }

    pub(crate) fn workload_hash(&self) -> u64 {
        read_u64(&self.bytes, 32)
    }

    /// Serializes a decoded global state under the given fingerprints.
    pub(crate) fn encode(gs: &GlobalState, plan_hash: u64, workload_hash: u64) -> Snapshot {
        let mut e = Enc {
            buf: Vec::with_capacity(HEADER_LEN + 64 * gs.nodes.len()),
        };
        e.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        e.u32(SNAPSHOT_VERSION);
        e.u32(gs.nodes.len() as u32);
        e.u32(gs.links.len() as u32);
        e.u32(gs.vcs);
        e.u64(plan_hash);
        e.u64(workload_hash);
        e.u64(gs.now);
        e.u64(gs.next_event);
        for w in gs.rng {
            e.u64(w);
        }
        e.u64(gs.accept_from);
        e.u64(gs.accept_until);
        e.u64(gs.origin_packets);
        e.u64(gs.completed_packets);
        debug_assert_eq!(e.buf.len(), HEADER_LEN);

        e.stats(&gs.stats);

        e.u32(gs.packets.len() as u32);
        for p in &gs.packets {
            e.u16(p.src);
            e.u16(p.dst);
            e.u64(p.inject_cycle);
            e.u32(p.flits);
            e.u32(p.ejected);
            e.u8(p.class);
        }

        for n in &gs.nodes {
            let in_ports = n.slots.len() / gs.vcs as usize;
            e.u8(in_ports as u8);
            e.u8(n.va_rr.len() as u8);
            for s in &n.slots {
                e.u8(s.tag);
                e.u8(s.out_port);
                e.u8(s.out_vc);
                e.u32(s.active_pid);
                e.u8(s.queue.len() as u8);
                for f in &s.queue {
                    e.flit(f, true);
                }
            }
            e.u32(n.src_queue.len() as u32);
            for &pid in &n.src_queue {
                e.u32(pid);
            }
            match &n.emitting {
                None => e.u8(0),
                Some(em) => {
                    e.u8(1);
                    e.u32(em.packet);
                    e.u32(em.emitted);
                    e.u32(em.total);
                    e.u8(em.vc);
                    e.u16(em.dst);
                    e.u64(em.inject_cycle);
                }
            }
            e.u32(n.outstanding);
            for &v in &n.va_rr {
                e.u16(v);
            }
            for &v in &n.sa_rr {
                e.u16(v);
            }
        }

        for evs in &gs.links {
            e.u32(evs.len() as u32);
            for ev in evs {
                e.u64(ev.arrive);
                e.u8(ev.vc);
                e.flit(&ev.flit, false);
            }
        }

        Snapshot { bytes: e.buf }
    }

    /// Decodes the full state, verifying the plan fingerprint first.
    pub(crate) fn decode_for(&self, expect_plan: u64) -> Result<GlobalState, SnapshotError> {
        if self.plan_hash() != expect_plan {
            return Err(SnapshotError::PlanMismatch);
        }
        let num_nodes = self.num_nodes() as usize;
        let num_links = self.num_links() as usize;
        let vcs = read_u32(&self.bytes, 20);
        if vcs == 0 || vcs > 32 {
            return Err(SnapshotError::Corrupt);
        }
        let mut rng = [0u64; 4];
        for (i, w) in rng.iter_mut().enumerate() {
            *w = read_u64(&self.bytes, 56 + 8 * i);
        }
        let mut d = Dec {
            b: &self.bytes,
            pos: HEADER_LEN,
        };

        let stats = d.stats(num_links, num_nodes)?;

        let npackets = d.u32()? as usize;
        if npackets > d.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let mut packets = Vec::with_capacity(npackets);
        for _ in 0..npackets {
            let p = PacketImage {
                src: d.u16()?,
                dst: d.u16()?,
                inject_cycle: d.u64()?,
                flits: d.u32()?,
                ejected: d.u32()?,
                class: d.u8()?,
            };
            if p.src as usize >= num_nodes
                || p.dst as usize >= num_nodes
                || p.class > 2
                || p.flits == 0
                || p.ejected >= p.flits
            {
                return Err(SnapshotError::Corrupt);
            }
            packets.push(p);
        }
        let check_pid = |pid: u32| -> Result<u32, SnapshotError> {
            if (pid as usize) < npackets {
                Ok(pid)
            } else {
                Err(SnapshotError::Corrupt)
            }
        };

        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let in_ports = d.u8()? as usize;
            let out_ports = d.u8()? as usize;
            if in_ports == 0 || out_ports == 0 || out_ports > 15 {
                return Err(SnapshotError::Corrupt);
            }
            let mut slots = Vec::with_capacity(in_ports * vcs as usize);
            for _ in 0..in_ports * vcs as usize {
                let tag = d.u8()?;
                let out_port = d.u8()?;
                let out_vc = d.u8()?;
                let active_pid = d.u32()?;
                if tag > 2 || out_port as usize >= out_ports || out_vc >= vcs as u8 {
                    return Err(SnapshotError::Corrupt);
                }
                if tag == 2 {
                    check_pid(active_pid)?;
                }
                let qlen = d.u8()? as usize;
                let mut queue = Vec::with_capacity(qlen);
                for _ in 0..qlen {
                    let f = d.flit(true)?;
                    check_pid(f.packet)?;
                    if f.dst as usize >= num_nodes {
                        return Err(SnapshotError::Corrupt);
                    }
                    queue.push(f);
                }
                slots.push(SlotImage {
                    tag,
                    out_port,
                    out_vc,
                    active_pid,
                    queue,
                });
            }
            let qn = d.u32()? as usize;
            if qn > d.remaining() {
                return Err(SnapshotError::Truncated);
            }
            let mut src_queue = Vec::with_capacity(qn);
            for _ in 0..qn {
                src_queue.push(check_pid(d.u32()?)?);
            }
            let emitting = match d.u8()? {
                0 => None,
                1 => Some(EmissionImage {
                    packet: check_pid(d.u32()?)?,
                    emitted: d.u32()?,
                    total: d.u32()?,
                    vc: d.u8()?,
                    dst: d.u16()?,
                    inject_cycle: d.u64()?,
                }),
                _ => return Err(SnapshotError::Corrupt),
            };
            if let Some(em) = &emitting {
                if em.emitted == 0 || em.emitted >= em.total || em.vc >= vcs as u8 {
                    return Err(SnapshotError::Corrupt);
                }
            }
            let outstanding = d.u32()?;
            let mut va_rr = Vec::with_capacity(out_ports);
            for _ in 0..out_ports {
                va_rr.push(d.u16()?);
            }
            let mut sa_rr = Vec::with_capacity(out_ports);
            for _ in 0..out_ports {
                sa_rr.push(d.u16()?);
            }
            nodes.push(NodeImage {
                slots,
                src_queue,
                emitting,
                outstanding,
                va_rr,
                sa_rr,
            });
        }

        let now = self.now();
        let mut links = Vec::with_capacity(num_links);
        for _ in 0..num_links {
            let n = d.u32()? as usize;
            if n > d.remaining() {
                return Err(SnapshotError::Truncated);
            }
            let mut evs: Vec<EventImage> = Vec::with_capacity(n);
            for _ in 0..n {
                let ev = EventImage {
                    arrive: d.u64()?,
                    vc: d.u8()?,
                    flit: d.flit(false)?,
                };
                check_pid(ev.flit.packet)?;
                // Per-link events are strictly ordered: one flit crosses a
                // link per cycle, and nothing in flight predates the
                // snapshot boundary.
                if ev.arrive < now || ev.vc >= vcs as u8 {
                    return Err(SnapshotError::Corrupt);
                }
                if let Some(prev) = evs.last() {
                    if ev.arrive <= prev.arrive {
                        return Err(SnapshotError::Corrupt);
                    }
                }
                evs.push(ev);
            }
            links.push(evs);
        }

        if d.remaining() != 0 {
            return Err(SnapshotError::Corrupt);
        }

        Ok(GlobalState {
            now,
            next_event: read_u64(&self.bytes, 48),
            rng,
            accept_from: read_u64(&self.bytes, 88),
            accept_until: read_u64(&self.bytes, 96),
            origin_packets: read_u64(&self.bytes, 104),
            completed_packets: read_u64(&self.bytes, 112),
            vcs,
            stats,
            packets,
            nodes,
            links,
        })
    }
}

/// One buffered or in-flight flit, with packet ids rewritten to global
/// (snapshot-local) packet-table indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FlitImage {
    pub packet: u32,
    pub dst: u16,
    pub is_head: bool,
    pub is_tail: bool,
    /// Earliest switch-traversal cycle, absolute. Canonically zero for
    /// in-flight flits (the delivering engine overwrites it on arrival).
    pub ready: u64,
}

/// One input VC: state-machine tag plus the buffered flit queue,
/// head-to-tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SlotImage {
    /// 0 = idle, 1 = routed, 2 = active.
    pub tag: u8,
    pub out_port: u8,
    pub out_vc: u8,
    /// Packet holding the output VC when `tag == 2`; `u32::MAX` otherwise.
    pub active_pid: u32,
    pub queue: Vec<FlitImage>,
}

/// An in-progress NIC emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EmissionImage {
    pub packet: u32,
    pub emitted: u32,
    pub total: u32,
    pub vc: u8,
    pub dst: u16,
    pub inject_cycle: u64,
}

/// One node: its input VC slots plus NIC state and round-robin pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeImage {
    /// `in_ports × vcs` slots, port-major.
    pub slots: Vec<SlotImage>,
    pub src_queue: Vec<u32>,
    pub emitting: Option<EmissionImage>,
    /// Closed-loop window occupancy.
    pub outstanding: u32,
    /// Per out-port VA round-robin start index (next slot to scan first).
    pub va_rr: Vec<u16>,
    /// Per out-port SA round-robin start index.
    pub sa_rr: Vec<u16>,
}

/// One flit in flight on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventImage {
    /// Absolute arrival cycle at the link's destination router.
    pub arrive: u64,
    /// Destination input VC.
    pub vc: u8,
    pub flit: FlitImage,
}

/// One live packet: the canonical, engine-independent record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PacketImage {
    /// Origin node.
    pub src: u16,
    pub dst: u16,
    pub inject_cycle: u64,
    pub flits: u32,
    /// Flits already consumed at the destination.
    pub ejected: u32,
    /// Dateline class: 0 = free, 1 = pre-express, 2 = post-express.
    pub class: u8,
}

/// The decoded, partition-independent simulation state. Engines export
/// into / import from this; [`Snapshot`] is its serialized form.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GlobalState {
    pub now: u64,
    /// Trace cursor: next unadmitted event index.
    pub next_event: u64,
    /// Synthetic-injection RNG state (xoshiro256**).
    pub rng: [u64; 4],
    pub accept_from: u64,
    pub accept_until: u64,
    /// Total packets ever admitted (live + completed).
    pub origin_packets: u64,
    /// Total packets fully ejected.
    pub completed_packets: u64,
    pub vcs: u32,
    /// Merged statistics at the snapshot boundary.
    pub stats: SimStats,
    /// Live (incomplete) packets only; completed packets survive through
    /// `stats` and the counters above.
    pub packets: Vec<PacketImage>,
    pub nodes: Vec<NodeImage>,
    /// Per-link in-flight flits, sorted by strictly increasing arrival.
    pub links: Vec<Vec<EventImage>>,
}

// ---------------------------------------------------------------------------
// Little-endian codec helpers (std-only).

fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn flit(&mut self, f: &FlitImage, with_ready: bool) {
        self.u32(f.packet);
        self.u16(f.dst);
        self.u8(u8::from(f.is_head) | (u8::from(f.is_tail) << 1));
        if with_ready {
            self.u64(f.ready);
        }
    }
    fn latency(&mut self, l: &LatencyStats) {
        self.u64(l.count);
        self.u64(l.sum);
        self.u64(l.max);
        debug_assert_eq!(l.histogram.len(), HISTOGRAM_BUCKETS);
        for &c in &l.histogram {
            self.u64(c);
        }
    }
    fn stats(&mut self, s: &SimStats) {
        self.latency(&s.all);
        self.latency(&s.control);
        self.latency(&s.data);
        self.u64(s.cycles);
        self.u64(s.flits_delivered);
        self.u64(s.flits_injected);
        self.u64(s.accepted_flits);
        for &v in &s.peak_backlog {
            self.u32(v);
        }
        for &v in &s.peak_outstanding {
            self.u32(v);
        }
        for &v in &s.link_flits {
            self.u64(v);
        }
        for &v in &s.router_flits {
            self.u64(v);
        }
        self.u64(s.rerouted_hops);
        self.u64(s.unreachable_pairs);
        // v2: per-tenant lanes (count 0 on single-tenant runs).
        self.u32(s.tenants.len() as u32);
        for t in &s.tenants {
            self.latency(&t.latency);
            self.u64(t.flits_injected);
            self.u64(t.flits_delivered);
            self.u64(t.accepted_flits);
        }
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn flit(&mut self, with_ready: bool) -> Result<FlitImage, SnapshotError> {
        let packet = self.u32()?;
        let dst = self.u16()?;
        let flags = self.u8()?;
        if flags > 3 {
            return Err(SnapshotError::Corrupt);
        }
        let ready = if with_ready { self.u64()? } else { 0 };
        Ok(FlitImage {
            packet,
            dst,
            is_head: flags & 1 != 0,
            is_tail: flags & 2 != 0,
            ready,
        })
    }
    fn latency(&mut self) -> Result<LatencyStats, SnapshotError> {
        let mut l = LatencyStats {
            count: self.u64()?,
            sum: self.u64()?,
            max: self.u64()?,
            histogram: Vec::with_capacity(HISTOGRAM_BUCKETS),
        };
        for _ in 0..HISTOGRAM_BUCKETS {
            l.histogram.push(self.u64()?);
        }
        Ok(l)
    }
    fn stats(&mut self, links: usize, nodes: usize) -> Result<SimStats, SnapshotError> {
        let mut s = SimStats::new(links, nodes);
        s.all = self.latency()?;
        s.control = self.latency()?;
        s.data = self.latency()?;
        s.cycles = self.u64()?;
        s.flits_delivered = self.u64()?;
        s.flits_injected = self.u64()?;
        s.accepted_flits = self.u64()?;
        for v in s.peak_backlog.iter_mut() {
            *v = self.u32()?;
        }
        for v in s.peak_outstanding.iter_mut() {
            *v = self.u32()?;
        }
        for v in s.link_flits.iter_mut() {
            *v = self.u64()?;
        }
        for v in s.router_flits.iter_mut() {
            *v = self.u64()?;
        }
        s.rerouted_hops = self.u64()?;
        s.unreachable_pairs = self.u64()?;
        // v2: per-tenant lanes. Tenants tile the node grid, so a lane
        // count beyond the node count is nonsense.
        let ntenants = self.u32()? as usize;
        if ntenants > nodes {
            return Err(SnapshotError::Corrupt);
        }
        s.tenants = Vec::with_capacity(ntenants);
        for _ in 0..ntenants {
            s.tenants.push(TenantStats {
                latency: self.latency()?,
                flits_injected: self.u64()?,
                flits_delivered: self.u64()?,
                accepted_flits: self.u64()?,
            });
        }
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// Content fingerprints (FNV-1a 64).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fold_u64(h: &mut u64, v: u64) {
    fold(h, &v.to_le_bytes());
}

fn fold_topo_routes(h: &mut u64, topo: &Topology, routes: &RoutingTable) {
    fold_u64(h, topo.num_nodes() as u64);
    fold_u64(h, topo.links().len() as u64);
    for l in topo.links() {
        fold_u64(h, l.src.0 as u64);
        fold_u64(h, l.dst.0 as u64);
        fold_u64(h, u64::from(l.latency_cycles));
        let (class, span) = match l.class {
            LinkClass::Regular => (0u64, 0u64),
            LinkClass::Express { span } => (1, u64::from(span)),
            LinkClass::Wraparound => (2, 0),
        };
        fold_u64(h, class);
        fold_u64(h, span);
        fold_u64(h, u64::from(l.degraded));
    }
    for node in topo.nodes() {
        for dst in topo.nodes() {
            let next = match routes.next_link(node, dst) {
                Some(lid) => lid.0 as u64,
                None => u64::MAX,
            };
            fold_u64(h, next);
        }
    }
}

/// Fingerprint of everything that determines engine behavior from a given
/// state onward: topology links, routing table, the behavior-relevant
/// config fields, and the fault-aware baseline (if any). `max_cycles` and
/// the shard layout are excluded — a snapshot may be resumed with a
/// different cycle budget and a different partition.
pub(crate) fn plan_fingerprint(
    topo: &Topology,
    routes: &RoutingTable,
    cfg: &SimConfig,
    baseline: Option<(&Topology, &RoutingTable)>,
    tenants: Option<&TenantMap>,
) -> u64 {
    let mut h = FNV_OFFSET;
    fold(&mut h, b"hyppi-plan-v1");
    fold_u64(&mut h, cfg.vcs as u64);
    fold_u64(&mut h, cfg.buffer_depth as u64);
    fold_u64(&mut h, cfg.pipeline_stages);
    fold_u64(&mut h, cfg.max_outstanding as u64);
    // The burst process changes the injection stream from the snapshot
    // boundary onward, exactly like the config fields above.
    for w in cfg.burst.fingerprint_words() {
        fold_u64(&mut h, w);
    }
    fold_topo_routes(&mut h, topo, routes);
    match baseline {
        None => fold_u64(&mut h, 0),
        Some((bt, br)) => {
            fold_u64(&mut h, 1);
            fold_topo_routes(&mut h, bt, br);
        }
    }
    // Tenant layout: the stats section's lane shape (and the meaning of
    // each lane) must agree between saver and restorer.
    match tenants {
        None => fold_u64(&mut h, 0),
        Some(tm) => {
            fold_u64(&mut h, 1);
            fold_u64(&mut h, tm.tenants as u64);
            for &t in &tm.tenant_of_node {
                fold_u64(&mut h, u64::from(t));
            }
        }
    }
    h
}

/// Fingerprint of a trace workload's content (events; name and wall-clock
/// metadata excluded — they do not affect the simulation).
pub(crate) fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h = FNV_OFFSET;
    fold(&mut h, b"hyppi-trace-v1");
    fold_u64(&mut h, u64::from(trace.num_nodes));
    fold_u64(&mut h, trace.events.len() as u64);
    for ev in &trace.events {
        fold_u64(&mut h, ev.cycle);
        fold_u64(&mut h, ev.src.0 as u64);
        fold_u64(&mut h, ev.dst.0 as u64);
        fold_u64(&mut h, u64::from(ev.flits));
    }
    h
}

/// Fingerprint of a synthetic workload: `(warmup, measure, seed)`. The
/// traffic matrix is deliberately excluded so a warmed-up state can be
/// resumed under a different injection-rate matrix (warm-start sweeps).
pub(crate) fn synthetic_fingerprint(warmup: u64, measure: u64, seed: u64) -> u64 {
    let mut h = FNV_OFFSET;
    fold(&mut h, b"hyppi-synthetic-v1");
    fold_u64(&mut h, warmup);
    fold_u64(&mut h, measure);
    fold_u64(&mut h, seed);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> GlobalState {
        let mut stats = SimStats::new(2, 2);
        stats.record_packet(1, 7);
        stats.flits_delivered = 1;
        stats.link_flits[1] = 3;
        GlobalState {
            now: 42,
            next_event: 5,
            rng: [1, 2, 3, 4],
            accept_from: 0,
            accept_until: u64::MAX,
            origin_packets: 2,
            completed_packets: 1,
            vcs: 2,
            stats,
            packets: vec![PacketImage {
                src: 0,
                dst: 1,
                inject_cycle: 40,
                flits: 4,
                ejected: 1,
                class: 0,
            }],
            nodes: vec![
                NodeImage {
                    slots: vec![
                        SlotImage {
                            tag: 2,
                            out_port: 1,
                            out_vc: 0,
                            active_pid: 0,
                            queue: vec![FlitImage {
                                packet: 0,
                                dst: 1,
                                is_head: false,
                                is_tail: true,
                                ready: 43,
                            }],
                        },
                        SlotImage {
                            tag: 0,
                            out_port: 0,
                            out_vc: 0,
                            active_pid: u32::MAX,
                            queue: vec![],
                        },
                    ],
                    src_queue: vec![0],
                    emitting: None,
                    outstanding: 1,
                    va_rr: vec![0, 1],
                    sa_rr: vec![1, 0],
                },
                NodeImage {
                    slots: vec![
                        SlotImage {
                            tag: 0,
                            out_port: 0,
                            out_vc: 0,
                            active_pid: u32::MAX,
                            queue: vec![],
                        },
                        SlotImage {
                            tag: 0,
                            out_port: 0,
                            out_vc: 0,
                            active_pid: u32::MAX,
                            queue: vec![],
                        },
                    ],
                    src_queue: vec![],
                    emitting: None,
                    outstanding: 0,
                    va_rr: vec![0, 0],
                    sa_rr: vec![0, 0],
                },
            ],
            links: vec![
                vec![EventImage {
                    arrive: 44,
                    vc: 1,
                    flit: FlitImage {
                        packet: 0,
                        dst: 1,
                        is_head: true,
                        is_tail: false,
                        ready: 0,
                    },
                }],
                vec![],
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let gs = tiny_state();
        let snap = Snapshot::encode(&gs, 0xABCD, 0x1234);
        assert_eq!(snap.now(), 42);
        assert_eq!(snap.num_nodes(), 2);
        assert_eq!(snap.num_links(), 2);
        assert_eq!(snap.workload_hash(), 0x1234);
        let back = snap.decode_for(0xABCD).unwrap();
        assert_eq!(back, gs);
    }

    #[test]
    fn from_bytes_validates_header() {
        let gs = tiny_state();
        let snap = Snapshot::encode(&gs, 1, 0);
        let bytes = snap.into_bytes();
        let re = Snapshot::from_bytes(bytes.clone()).unwrap();
        assert_eq!(re.now(), 42);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Snapshot::from_bytes(bad_magic).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert_eq!(
            Snapshot::from_bytes(bad_version).unwrap_err(),
            SnapshotError::BadVersion { found: 99 }
        );

        assert_eq!(
            Snapshot::from_bytes(bytes[..50].to_vec()).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn decode_rejects_mismatch_and_damage() {
        let gs = tiny_state();
        let snap = Snapshot::encode(&gs, 7, 0);
        assert_eq!(snap.decode_for(8).unwrap_err(), SnapshotError::PlanMismatch);

        // Truncating the body (but not the header) is caught.
        let bytes = snap.bytes().to_vec();
        let cut = Snapshot::from_bytes(bytes[..bytes.len() - 4].to_vec()).unwrap();
        assert!(matches!(
            cut.decode_for(7).unwrap_err(),
            SnapshotError::Truncated | SnapshotError::Corrupt
        ));

        // Trailing garbage is caught.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0; 3]);
        let padded = Snapshot::from_bytes(padded).unwrap();
        assert!(matches!(
            padded.decode_for(7).unwrap_err(),
            SnapshotError::Truncated | SnapshotError::Corrupt
        ));
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let a = synthetic_fingerprint(500, 2000, 1);
        assert_eq!(a, synthetic_fingerprint(500, 2000, 1));
        assert_ne!(a, synthetic_fingerprint(500, 2000, 2));
        assert_ne!(a, synthetic_fingerprint(501, 2000, 1));

        let t = Trace::new(
            String::from("t"),
            4,
            0.0,
            vec![hyppi_traffic::TraceEvent {
                cycle: 3,
                src: hyppi_topology::NodeId(0),
                dst: hyppi_topology::NodeId(1),
                flits: 32,
            }],
        );
        let th = trace_fingerprint(&t);
        assert_eq!(th, trace_fingerprint(&t.clone()));
        let mut t2 = t.clone();
        t2.events[0].flits = 1;
        assert_ne!(th, trace_fingerprint(&t2));
        // Name/metadata changes do not invalidate snapshots.
        let mut t3 = t.clone();
        t3.name = "renamed".into();
        assert_eq!(th, trace_fingerprint(&t3));
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            SnapshotError::BadMagic.to_string(),
            SnapshotError::BadVersion { found: 9 }.to_string(),
            SnapshotError::PlanMismatch.to_string(),
            SnapshotError::WorkloadMismatch.to_string(),
            SnapshotError::Truncated.to_string(),
            SnapshotError::Corrupt.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
