//! Simulator configuration (Table II).

use serde::{Deserialize, Serialize};

/// Microarchitectural and run-control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtual channels per port (Table II: 4).
    pub vcs: usize,
    /// Buffer depth per VC in flits (Table II: 8).
    pub buffer_depth: usize,
    /// Router pipeline depth in cycles (Table II: 3).
    pub pipeline_stages: u64,
    /// Hard cycle cap; the simulator reports an error past this point
    /// (guards against deadlock in misconfigured runs).
    pub max_cycles: u64,
}

impl SimConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        SimConfig {
            vcs: 4,
            buffer_depth: 8,
            pipeline_stages: 3,
            max_cycles: 200_000_000,
        }
    }

    /// Cycles a flit must dwell before it may traverse the switch:
    /// the pipeline minus the traversal stage itself.
    #[inline]
    pub fn pipeline_dwell(&self) -> u64 {
        self.pipeline_stages.saturating_sub(1)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = SimConfig::paper();
        assert_eq!(c.vcs, 4);
        assert_eq!(c.buffer_depth, 8);
        assert_eq!(c.pipeline_stages, 3);
        assert_eq!(c.pipeline_dwell(), 2);
    }
}
