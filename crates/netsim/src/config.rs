//! Simulator configuration (Table II).

use hyppi_traffic::BurstSpec;
use serde::{Deserialize, Serialize};

/// Microarchitectural and run-control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtual channels per port (Table II: 4).
    pub vcs: usize,
    /// Buffer depth per VC in flits (Table II: 8).
    pub buffer_depth: usize,
    /// Router pipeline depth in cycles (Table II: 3).
    pub pipeline_stages: u64,
    /// Hard cycle cap; the simulator reports an error past this point
    /// (guards against deadlock in misconfigured runs).
    pub max_cycles: u64,
    /// Closed-loop NIC window: the number of packets a source may have
    /// in the network (emitted but not yet fully ejected) before it is
    /// parked. `0` (the default) is open-loop injection — the NIC never
    /// throttles, exactly the paper's BookSim setup. With a window in
    /// force, packet latency is measured from emission start (network
    /// latency, bounded by the window) rather than from admission, and
    /// source overload shows up in [`crate::SimStats::peak_backlog`] and
    /// a flattening [`crate::SimStats::accepted_flits`] instead of a
    /// diverging latency.
    pub max_outstanding: usize,
    /// Temporal burstiness of synthetic injection: a seeded per-node
    /// factor process that modulates the per-cycle Bernoulli gate
    /// (`rate × factor`), mean-normalized so the long-run offered load
    /// still matches the traffic matrix. [`BurstSpec::Steady`] (the
    /// default) is the identity — exactly the previous behaviour. The
    /// factor is a pure function of (workload seed, node, cycle), so it
    /// never consumes the injection RNG stream: sharded replay and
    /// snapshot resume stay bit-for-bit regardless of the spec. Ignored
    /// by trace-driven runs (traces carry their own timing).
    pub burst: BurstSpec,
}

impl SimConfig {
    /// The paper's configuration (open-loop injection).
    pub fn paper() -> Self {
        SimConfig {
            vcs: 4,
            buffer_depth: 8,
            pipeline_stages: 3,
            max_cycles: 200_000_000,
            max_outstanding: 0,
            burst: BurstSpec::Steady,
        }
    }

    /// The paper's configuration with a closed-loop NIC window of
    /// `window` outstanding packets per source.
    pub fn paper_closed_loop(window: usize) -> Self {
        let mut cfg = Self::paper();
        cfg.max_outstanding = window;
        cfg
    }

    /// Cycles a flit must dwell before it may traverse the switch:
    /// the pipeline minus the traversal stage itself.
    #[inline]
    pub fn pipeline_dwell(&self) -> u64 {
        self.pipeline_stages.saturating_sub(1)
    }

    /// Panics on configurations the engine cannot represent. The packed
    /// slot-metadata word gives out-VC ids 5 bits and ring positions /
    /// queue lengths 8 bits each (see `flit::meta`), and the simulator
    /// assumes at least one VC and one buffer slot per VC.
    pub fn validate(&self) {
        assert!(self.vcs >= 1, "at least one virtual channel required");
        assert!(
            self.vcs <= 32,
            "out-VC ids are 5 bits in the packed slot metadata ({} VCs requested)",
            self.vcs
        );
        assert!(self.buffer_depth >= 1, "VC buffers need at least one slot");
        assert!(
            self.buffer_depth <= u8::MAX as usize,
            "ring positions are u8 ({} requested)",
            self.buffer_depth
        );
        assert!(self.pipeline_stages >= 1, "pipeline needs >= 1 stage");
        assert!(
            self.max_outstanding <= u32::MAX as usize,
            "window occupancy counters are u32 ({} requested)",
            self.max_outstanding
        );
        self.burst.validate();
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = SimConfig::paper();
        assert_eq!(c.vcs, 4);
        assert_eq!(c.buffer_depth, 8);
        assert_eq!(c.pipeline_stages, 3);
        assert_eq!(c.pipeline_dwell(), 2);
        // The paper's setup is open-loop: no NIC window.
        assert_eq!(c.max_outstanding, 0);
        c.validate();
    }

    #[test]
    fn closed_loop_constructor_sets_window() {
        let c = SimConfig::paper_closed_loop(16);
        assert_eq!(c.max_outstanding, 16);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "u32")]
    fn rejects_unrepresentable_window() {
        let mut c = SimConfig::paper();
        c.max_outstanding = u32::MAX as usize + 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "virtual channel")]
    fn rejects_zero_vcs() {
        let mut c = SimConfig::paper();
        c.vcs = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ring positions")]
    fn rejects_unrepresentable_depth() {
        let mut c = SimConfig::paper();
        c.buffer_depth = 300;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "5 bits")]
    fn rejects_unrepresentable_vc_count() {
        let mut c = SimConfig::paper();
        c.vcs = 33;
        c.validate();
    }
}
