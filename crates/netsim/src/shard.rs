//! Sharded parallel simulation: the engine core plus the superstep
//! protocol that runs P mesh shards in lockstep.
//!
//! ## The engine core
//!
//! `ShardState` owns the full active-set router state — calendar wheel
//! with its occupancy bitset, work/src bitsets, SoA flit slab, packed
//! per-node control records (`NodeCtl`), arbitration masks, and
//! double-buffered credit cells (`CreditCell`) — for one subset of
//! the mesh's nodes (node subsets come from
//! [`hyppi_topology::Partition`]). `EnginePlan` holds everything
//! read-only and shared: topology, routing, config, the partition tables,
//! and the express-dateline memo. The single-shard engine
//! ([`crate::Simulator`]) is literally a `ShardState` built over the
//! trivial partition — there is one set of pipeline-stage loops, not two.
//!
//! Three hot-path structures keep the per-traversal cost low while
//! staying observable-behavior-preserving (the frozen
//! [`crate::reference`] engine is the oracle; `tests/parity.rs` pins it):
//!
//! * **Credit fusion.** Credits freed during cycle `t` must become
//!   spendable at `t+1`. Instead of staging them in a side list drained
//!   by a separate end-of-cycle pass, every (link, VC) counter is a
//!   `CreditCell` double-buffered in place (`avail` + `pending` +
//!   cycle stamp): any later access folds `pending` into `avail`, so
//!   credit application rides the traversal stage's own reads/writes.
//! * **Calendar batching.** A bucket-occupancy bitset over the wheel
//!   lets idle fast-forward locate the next arrival with word-wide
//!   `trailing_zeros` jumps (64 buckets per probe) instead of walking
//!   buckets one by one. Latency-1 intra-shard links bypass the wheel
//!   entirely: the flit is pushed straight into its destination VC at
//!   send time with the `ready` cycle a next-cycle delivery would have
//!   stamped (route computation still fires the following cycle, and an
//!   early-buffered flit cannot win arbitration before `ready`, so the
//!   timing is bit-for-bit unchanged).
//! * **Packed free-VC search.** Output-VC holders are a per-(node,
//!   out-port) bitmask; the VC-allocation free search is one
//!   `!holder & class_mask` and a `trailing_zeros` — the same VC, in the
//!   same order, a linear range probe would pick.
//!
//! ## The superstep protocol
//!
//! With P > 1 shards, every simulated cycle is one superstep of two
//! phases separated by barriers:
//!
//! 1. **Step phase.** Each shard runs the five pipeline stages for its
//!    own routers. A flit leaving through an intra-shard link lands
//!    directly in its destination VC (latency 1) or in the local
//!    calendar wheel; a flit leaving through a *boundary link* (dst
//!    owned by another shard) is appended to the per-edge outbox for the
//!    destination shard, together with its absolute arrival cycle.
//!    Credits freed for a boundary link's upstream buffer go to the
//!    outbox of the shard owning the link's source. At the end of the
//!    phase each shard swaps its filled outboxes into the shared
//!    double-buffered mailbox grid.
//! 2. **Exchange phase.** After the barrier, each shard drains the
//!    mailboxes addressed to it: boundary credits land in the pending
//!    half of the owner's credit cells (visible next cycle — the same
//!    timing as locally freed credits), and boundary flits are booked
//!    into the receiving wheel at their carried arrival cycle. Because
//!    every link has latency ≥ 1, a flit sent in superstep `t` arrives
//!    in a bucket `≥ t+1`, so landing it during the exchange of
//!    superstep `t` puts it in **exactly** the bucket the in-shard
//!    calendar would have used — this is what makes the sharded engine
//!    bit-for-bit identical to the single-shard engine.
//!
//! ## Cross-shard packet identity
//!
//! Packet bookkeeping (`PacketInfo`, dateline `VcClass`) is shard-local.
//! A head flit crossing a boundary carries its packet's metadata (size,
//! injection cycle, current VC class) in the mailbox message; the
//! receiving shard mints a fresh local packet handle and records it in a
//! per-(link, VC) remap slot. Wormhole flow control guarantees the flits
//! of a packet traverse a link's VC contiguously and in order, so body
//! and tail flits are re-tagged from the same remap slot. Latency is
//! recorded where the tail ejects, from the carried injection cycle;
//! [`crate::stats::LatencyStats`] merging is commutative, so the merged
//! histogram equals the single-shard one exactly.
//!
//! ## Closed-loop injection (source credits)
//!
//! With [`SimConfig::max_outstanding`] > 0 every NIC carries a credit
//! window: a source may have at most that many packets in the network
//! (emitted but not yet fully ejected) and parks out of `src_mask` once
//! the window is full. The credit returns when the packet's tail ejects
//! at the destination. In-shard the ejecting router decrements the
//! source's occupancy directly during switch traversal — first observable
//! by the emission stage of the *next* cycle, because emission runs
//! before switch traversal within a cycle. A cross-shard ejection
//! appends the source node to the mailbox bundle for the shard owning
//! it; the credit is applied during that superstep's exchange phase and
//! is likewise first observable next cycle — so the two paths have
//! identical timing and the sharded engine stays bit-for-bit. Since any
//! shard pair can exchange source credits (a packet may traverse the
//! whole mesh), closed-loop plans widen the mailbox adjacency to all
//! pairs. Boundary head flits carry the packet's *origin* node so the
//! destination shard knows where to return the credit.
//!
//! ## Lockstep control
//!
//! Run-loop decisions (idle fast-forward, termination, cycle-limit
//! failure) are taken redundantly by every worker from identical data:
//! each worker scans the *full* trace (admitting only its own sources) or
//! replays the *same* Bernoulli RNG stream (drawing for every node,
//! admitting only its own), and per-worker activity flags / next-arrival
//! cycles are published at the end of each superstep. All workers
//! therefore jump, step, and stop on the same cycle without a central
//! coordinator.

use crate::config::SimConfig;
use crate::flit::{meta, Flit, PacketInfo};
use crate::router::{Emission, NodeState};
use crate::sim::{finish_or_pause, rescan_trace_cursor, restore_shards, RunOutcome, SimError};
use crate::snapshot::{
    EmissionImage, EventImage, FlitImage, GlobalState, NodeImage, PacketImage, SlotImage, Snapshot,
    SnapshotError,
};
use crate::stats::SimStats;
use crate::telemetry::{
    EngineProfile, EngineView, NoopProbe, PacketKey, Probe, ProfileSink, StallCause,
};
use hyppi_topology::{LinkId, NodeId, Partition, RoutingTable, ShardSpec, Topology};
use hyppi_traffic::{BurstState, TenantMap, Trace, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Dateline VC class of a packet (see the `router` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VcClass {
    /// The route never crosses an express link: any VC is safe.
    Free,
    /// Express route, before the first express traversal: class A VCs.
    PreExpress,
    /// Express route, after the first express traversal: class B VCs.
    PostExpress,
}

/// One booked link arrival: (link, destination VC, flit).
pub(crate) type ArrivalEvent = (u32, u8, Flit);

/// One lazily-normalized credit counter for a downstream (link, VC)
/// buffer. Credits freed during cycle `t` must not be spendable until
/// cycle `t+1`; instead of staging them in a side list that a separate
/// end-of-cycle pass drains, the counter is double-buffered in place:
/// `avail` is the spendable count as of cycle `stamp`, `pending` holds
/// credits freed *during* cycle `stamp`. Any access at a later cycle
/// first folds `pending` into `avail` — so credit application rides the
/// switch-traversal stage's own reads and writes and no separate scan
/// exists. (Mailbox credits ingested during the superstep exchange of
/// cycle `t` land in `pending` with the same stamp, preserving the
/// identical next-cycle visibility of the cross-shard path.)
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditCell {
    /// Cycle `avail`/`pending` were last touched.
    stamp: u64,
    /// Credits spendable at cycle `stamp`.
    avail: u16,
    /// Credits freed during cycle `stamp` (spendable from `stamp + 1`).
    pending: u16,
}

impl CreditCell {
    #[inline]
    fn new(depth: u16) -> Self {
        CreditCell {
            stamp: 0,
            avail: depth,
            pending: 0,
        }
    }

    /// Folds `pending` into `avail` if the cell was last touched before
    /// `now`, then returns the spendable count.
    #[inline]
    fn normalize(&mut self, now: u64) -> u16 {
        if self.stamp != now {
            self.avail += self.pending;
            self.pending = 0;
            self.stamp = now;
        }
        self.avail
    }

    /// Books one freed credit at cycle `now` (spendable from `now + 1`).
    #[inline]
    fn free(&mut self, now: u64) {
        self.normalize(now);
        self.pending += 1;
    }

    /// Spends one credit at cycle `now`.
    #[inline]
    fn take(&mut self, now: u64) {
        let avail = self.normalize(now);
        debug_assert!(avail > 0, "credit underflow");
        self.avail -= 1;
    }

    /// Read-only spendable count at cycle `now` (cold paths that cannot
    /// normalize in place).
    #[inline]
    fn peek(&self, now: u64) -> u16 {
        if self.stamp < now {
            self.avail + self.pending
        } else {
            self.avail
        }
    }

    /// Applies a ripened lookahead credit: one credit whose free cycle
    /// is already in the past becomes spendable *at* `now` (not `now+1`
    /// — the next-cycle delay was served while the credit waited in the
    /// ripening buffer).
    #[inline]
    fn ripen(&mut self, now: u64) {
        self.normalize(now);
        self.avail += 1;
    }
}

/// Hot per-node control state packed into one record (one cache line's
/// worth of data): the arbitration stages read and update most of these
/// fields on every visit to a work-active node, so keeping them together
/// replaces seven scattered array touches per visit.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeCtl {
    /// First buffer slot of the node (`slot = vc_base + in_port*vcs + vc`).
    vc_base: u32,
    /// First out-port entry of the node.
    port_base: u32,
    /// Bitmask of in-ports that already sent a flit this cycle.
    in_port_used: u32,
    /// Flits buffered at the node (active-set membership count).
    pub(crate) buffered: u32,
    /// Out-ports with a non-empty `routed_mask` (bit = out-port index) —
    /// the VA stage walks set bits instead of probing every port's mask.
    routed_ports: u16,
    /// Out-ports with a non-empty `active_mask`.
    active_ports: u16,
    /// Input VCs currently `Routed` (VA fast skip).
    routed_count: u16,
    /// Arbitration scan width (`in_ports * vcs`).
    total_in_vcs: u8,
}

/// Packed per-(node, out-port) link facts consumed by the traversal
/// winner path: one 8-byte load instead of three scattered table reads.
#[derive(Debug, Clone, Copy)]
struct OutPortInfo {
    /// Global link id; `u32::MAX` for the ejection port.
    link: u32,
    /// Shard owning the link's destination (own id for ejection).
    dst_shard: u16,
    /// Link latency in cycles (0 for ejection).
    latency: u8,
    /// Express link (dateline class-B transition on traversal).
    express: bool,
    /// Fault-degraded link (halved usable-VC set, see `degraded_class_mask`).
    degraded: bool,
}

/// Iterator over the set bits of a mask in cyclic (round-robin) order
/// starting at `start`: indices `start.., then 0..start`, restricted to
/// set bits. This visits exactly the candidates a full modular scan
/// `(start + k) % width` would accept, in the same order, so replacing
/// the scans with mask walks preserves arbitration bit-for-bit.
struct CyclicBits {
    hi: u32,
    lo: u32,
}

impl Iterator for CyclicBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let bits = if self.hi != 0 {
            &mut self.hi
        } else if self.lo != 0 {
            &mut self.lo
        } else {
            return None;
        };
        let b = bits.trailing_zeros();
        *bits &= *bits - 1;
        Some(b as usize)
    }
}

#[inline]
fn cyclic_bits(mask: u32, start: usize) -> CyclicBits {
    debug_assert!(start < 32);
    let hi_mask = u32::MAX << start;
    CyclicBits {
        hi: mask & hi_mask,
        lo: mask & !hi_mask,
    }
}

// ---- shared read-only plan ---------------------------------------------

/// Everything shared and immutable across the shards of one simulation:
/// topology, routing, configuration, partition tables, and the
/// express-dateline route memo.
pub(crate) struct EnginePlan<'a> {
    pub topo: &'a Topology,
    pub routes: &'a RoutingTable,
    pub cfg: SimConfig,
    pub partition: Partition,
    /// Express-dateline VC classes in force (see `router` module docs).
    pub dateline: bool,
    /// First class-B VC when the dateline is in force (see `vc_range`).
    pub class_b_start: usize,
    /// Bitmask of the VCs open to `Free`/`PreExpress` packets (bit =
    /// VC index) — the packed form of [`Self::vc_range`], consumed by
    /// the trailing-zeros free-VC search in VC allocation.
    pub class_a_mask: u32,
    /// Bitmask of the VCs open to `PostExpress` packets.
    pub class_b_mask: u32,
    /// `class_a_mask` restricted to a fault-degraded link: the lowest
    /// `max(1, half)` of the class's VCs (see `degraded_class_mask`).
    pub degraded_class_a_mask: u32,
    /// `class_b_mask` restricted to a fault-degraded link.
    pub degraded_class_b_mask: u32,
    /// Healthy-mesh topology and routes, present only when simulating a
    /// faulted topology: used to charge `SimStats::rerouted_hops` for the
    /// extra hops a packet takes versus its healthy route.
    pub baseline: Option<(&'a Topology, &'a RoutingTable)>,
    /// `express_on_path[dst][node]`: does the route node→dst cross an
    /// express link? Only populated when the dateline is in force.
    express_on_path: Vec<Vec<bool>>,
    /// In-port index (at the link's dst node) fed by each link.
    pub in_port_of_link: Vec<u8>,
    /// Calendar wheel length (power of two > max link latency plus the
    /// lookahead window, so mid-window ingests stay within one
    /// revolution).
    pub wheel_len: usize,
    /// Conservative-lookahead window W in cycles: shards may run W
    /// cycles between mailbox exchanges because no boundary link can
    /// deliver a flit in fewer (W = the partition's minimum boundary
    /// latency). Forced to 1 — the classic cycle-per-superstep
    /// protocol — for single-shard plans and closed-loop configs
    /// (whose source credits need next-cycle global visibility).
    pub lookahead: u64,
    /// For each shard, the sorted shards that may address mail to it
    /// (boundary-flit senders and boundary-credit returners).
    pub inbox_sources: Vec<Vec<u16>>,
    /// Node → tenant ownership of a multi-tenant run (`None` — the
    /// common case — records no per-tenant lanes). Pure bookkeeping:
    /// tenancy never changes routing or arbitration, only which
    /// [`crate::TenantStats`] lane each emission/ejection is credited to.
    pub tenants: Option<&'a TenantMap>,
}

impl<'a> EnginePlan<'a> {
    pub fn new(
        topo: &'a Topology,
        routes: &'a RoutingTable,
        cfg: SimConfig,
        partition: Partition,
    ) -> Self {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        cfg.validate();
        let dateline = topo.count_links(|l| l.is_express()) > 0;
        // Which (node → dst) routes cross an express link: walk each
        // destination's next-hop tree once, memoized.
        let mut express_on_path: Vec<Vec<bool>> = Vec::new();
        if dateline {
            express_on_path.reserve(topo.num_nodes());
            for dst in topo.nodes() {
                let mut table = vec![false; topo.num_nodes()];
                let mut visited = vec![false; topo.num_nodes()];
                visited[dst.index()] = true;
                for start in topo.nodes() {
                    if visited[start.index()] {
                        continue;
                    }
                    let mut chain = Vec::new();
                    let mut at = start;
                    while !visited[at.index()] {
                        chain.push(at);
                        // Unreachable pairs (faulted topologies) have no
                        // next hop; the chain inherits `false` below.
                        let Some(lid) = routes.next_link(at, dst) else {
                            break;
                        };
                        let link = topo.link(lid);
                        if link.is_express() {
                            // Everything up the chain routes through here.
                            for &n in &chain {
                                table[n.index()] = true;
                                visited[n.index()] = true;
                            }
                            chain.clear();
                        }
                        at = link.dst;
                    }
                    // Remaining chain inherits the memoized answer at `at`.
                    let tail = table[at.index()];
                    for &n in &chain {
                        table[n.index()] = tail;
                        visited[n.index()] = true;
                    }
                }
                express_on_path.push(table);
            }
        }
        let mut in_port_of_link = vec![0u8; topo.links().len()];
        for node in topo.nodes() {
            for (i, &lid) in topo.incoming(node).iter().enumerate() {
                in_port_of_link[lid.index()] = (i + 1) as u8;
            }
        }
        // Calendar sized to cover the longest link latency. Zero-latency
        // links would land arrivals in the bucket stage 1 already drained
        // this cycle (delivering them a whole revolution late), so the
        // wheel requires every latency ≥ 1 — same-cycle delivery is not a
        // thing in the reference engine either. Latency ≥ 1 is also what
        // lets the superstep exchange land boundary flits on time.
        assert!(
            topo.links().iter().all(|l| l.latency_cycles >= 1),
            "link latencies must be >= 1 cycle"
        );
        let max_latency = topo
            .links()
            .iter()
            .map(|l| u64::from(l.latency_cycles))
            .max()
            .unwrap_or(1);
        // Safe superstep window: the minimum boundary-link latency. A
        // closed-loop window degrades to the classic per-cycle protocol
        // — its source credits (destination shard → origin shard, any
        // pair) rely on next-cycle global visibility that a W-cycle
        // window cannot provide conservatively.
        let lookahead = if cfg.max_outstanding > 0 {
            1
        } else {
            partition.min_boundary_latency.map_or(1, u64::from)
        };
        // A shard parked at a window start can hold ingested arrivals up
        // to `lookahead - 1 + max_latency` cycles ahead, so the wheel
        // must cover the window on top of the longest link.
        let wheel_len = (max_latency + lookahead + 2).next_power_of_two() as usize;
        // Shard mail adjacency: s receives flits over links into it and
        // credits over links out of it. Closed-loop source credits flow
        // from a packet's destination shard back to its origin shard —
        // any pair — so a window in force widens the adjacency to all
        // pairs.
        let shards = partition.num_shards();
        let mut sources: Vec<Vec<u16>> = vec![Vec::new(); shards];
        if cfg.max_outstanding > 0 {
            for (d, v) in sources.iter_mut().enumerate() {
                v.extend((0..shards as u16).filter(|&s| usize::from(s) != d));
            }
        } else {
            for l in topo.links() {
                let s = partition.link_src_shard[l.id.index()];
                let d = partition.link_dst_shard[l.id.index()];
                if s != d {
                    if !sources[usize::from(d)].contains(&s) {
                        sources[usize::from(d)].push(s);
                    }
                    if !sources[usize::from(s)].contains(&d) {
                        sources[usize::from(s)].push(d);
                    }
                }
            }
            for v in &mut sources {
                v.sort_unstable();
            }
        }
        let class_b_start = cfg.vcs - (cfg.vcs / 4).max(1);
        let all_vcs: u32 = if cfg.vcs == 32 {
            u32::MAX
        } else {
            (1u32 << cfg.vcs) - 1
        };
        let (class_a_mask, class_b_mask) = if dateline {
            let a = (1u32 << class_b_start) - 1;
            (a, all_vcs & !a)
        } else {
            (all_vcs, all_vcs)
        };
        // A degraded link keeps the lowest half of each class's VCs,
        // rounded down but never below one — every dateline class stays
        // usable, so the class-B escape argument is untouched.
        let halve_low = |mask: u32| -> u32 {
            let keep = (mask.count_ones() / 2).max(1);
            let mut m = mask;
            let mut kept = 0u32;
            let mut out = 0u32;
            while m != 0 && kept < keep {
                let low = m & m.wrapping_neg();
                out |= low;
                m &= m - 1;
                kept += 1;
            }
            out
        };
        EnginePlan {
            topo,
            routes,
            cfg,
            partition,
            dateline,
            class_b_start,
            class_a_mask,
            class_b_mask,
            degraded_class_a_mask: halve_low(class_a_mask),
            degraded_class_b_mask: halve_low(class_b_mask),
            baseline: None,
            express_on_path,
            in_port_of_link,
            wheel_len,
            lookahead,
            inbox_sources: sources,
            tenants: None,
        }
    }

    /// Installs the node → tenant map of a multi-tenant run: every
    /// engine entry point then splits per-tenant statistic lanes out of
    /// the aggregate (see [`crate::TenantStats`]).
    pub fn set_tenants(&mut self, map: &'a TenantMap) {
        assert_eq!(
            map.tenant_of_node.len(),
            self.topo.num_nodes(),
            "tenant map sized for a different topology"
        );
        self.tenants = Some(map);
    }

    /// Installs the healthy-mesh baseline used to account
    /// `SimStats::rerouted_hops` on a faulted topology.
    pub fn set_baseline(&mut self, topo: &'a Topology, routes: &'a RoutingTable) {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        assert_eq!(topo.num_nodes(), self.topo.num_nodes());
        self.baseline = Some((topo, routes));
    }

    /// Extra hops the faulted route src → dst takes versus the healthy
    /// baseline route (clamped at zero; zero with no baseline installed).
    pub fn extra_hops(&self, src: NodeId, dst: NodeId) -> u64 {
        let Some((base_topo, base_routes)) = self.baseline else {
            return 0;
        };
        if src == dst || !self.routes.reachable(src, dst) {
            return 0;
        }
        let faulted = u64::from(self.routes.hops(self.topo, src, dst));
        let healthy = u64::from(base_routes.hops(base_topo, src, dst));
        faulted.saturating_sub(healthy)
    }

    /// VC index range usable by a packet of the given dateline class.
    ///
    /// Class B (post-express walks — short and comparatively rare) gets
    /// the top quarter of the VCs; everything else (packets before their
    /// express traversal and packets that never touch an express link)
    /// shares the rest. Class-B channels are only ever requested by
    /// post-express packets, whose walks are monotone, so class-B
    /// dependencies are acyclic and no dependency points from class B back
    /// to class A (see the `router` module docs). Without express links no
    /// discipline is needed and every VC is open.
    #[inline]
    pub fn vc_range(&self, class: VcClass) -> std::ops::Range<usize> {
        if !self.dateline {
            return 0..self.cfg.vcs;
        }
        match class {
            VcClass::Free | VcClass::PreExpress => 0..self.class_b_start,
            VcClass::PostExpress => self.class_b_start..self.cfg.vcs,
        }
    }

    /// Packed form of [`Self::vc_range`]: a bitmask of the VCs a packet
    /// of the given dateline class may request (bit = VC index).
    /// Walking this mask with `trailing_zeros` visits exactly the VCs
    /// `vc_range` yields, in the same ascending order, so the free-VC
    /// search stays bit-for-bit with the range scan it replaces.
    #[inline]
    pub(crate) fn class_mask(&self, class: VcClass) -> u32 {
        match class {
            VcClass::Free | VcClass::PreExpress => self.class_a_mask,
            VcClass::PostExpress => self.class_b_mask,
        }
    }

    /// [`Self::class_mask`] restricted to a fault-degraded link: the
    /// lowest `max(1, half)` VCs of the class. Contiguous-low-bits form,
    /// so the range scan in the reference engine visits the same VCs.
    #[inline]
    pub(crate) fn degraded_class_mask(&self, class: VcClass) -> u32 {
        match class {
            VcClass::Free | VcClass::PreExpress => self.degraded_class_a_mask,
            VcClass::PostExpress => self.degraded_class_b_mask,
        }
    }

    /// Whether the deterministic route src → dst crosses an express link
    /// (always `false` on topologies without express links).
    pub fn route_uses_express(&self, src: NodeId, dst: NodeId) -> bool {
        self.dateline && src != dst && self.express_on_path[dst.index()][src.index()]
    }

    /// Initial dateline class of a new packet.
    #[inline]
    pub fn initial_class(&self, src: NodeId, dst: NodeId) -> VcClass {
        if self.route_uses_express(src, dst) {
            VcClass::PreExpress
        } else {
            VcClass::Free
        }
    }
}

// ---- mailboxes ----------------------------------------------------------

/// One boundary-crossing flit: the wire-level event plus, for head flits,
/// the packet metadata the receiving shard needs to mint a local handle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BoundaryFlit {
    /// Link being traversed.
    pub link: u32,
    /// Destination VC at the receiving router.
    pub vc: u8,
    /// Absolute arrival cycle (`send cycle + link latency`).
    pub arrive: u64,
    /// The flit; its `packet` id is sender-local and is re-mapped on
    /// ingest.
    pub flit: Flit,
    /// Packet dateline class at send time (meaningful for heads).
    pub class: VcClass,
    /// Packet size in flits (meaningful for heads).
    pub flits: u32,
    /// Packet injection cycle, `u64::MAX` if unmeasured (heads only).
    pub inject_cycle: u64,
    /// Node that originally injected the packet (heads only) — the
    /// destination shard returns the closed-loop source credit here.
    pub origin: NodeId,
}

/// The messages one shard sends another during one superstep.
#[derive(Debug, Default)]
pub(crate) struct OutBundle {
    /// Boundary link arrivals.
    pub flits: Vec<BoundaryFlit>,
    /// Boundary credit returns: flattened `link * vcs + vc` index plus
    /// the absolute cycle the credit was freed (always the exchanged
    /// cycle under the classic protocol; any cycle of the window under
    /// lookahead, where the receiver ripens it at `free cycle + 1`).
    pub credits: Vec<(u32, u64)>,
    /// Closed-loop source credits: origin nodes (owned by the receiving
    /// shard) whose packet completed at a destination this shard owns.
    pub src_credits: Vec<u16>,
}

impl OutBundle {
    fn is_empty(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty() && self.src_credits.is_empty()
    }
}

/// Per-worker lockstep state published at the end of every superstep.
struct Published {
    /// Any owned shard has buffered flits or NIC work.
    active: AtomicBool,
    /// Earliest booked arrival across owned shards (absolute cycle;
    /// `u64::MAX` = none). Only meaningful when `active` is false.
    next_arrival: AtomicU64,
}

/// Shared coordination state of one sharded run.
struct Shared {
    /// Double-buffered mailbox grid, `mail[from][to]`. Senders swap their
    /// filled bundles in at the end of the step phase; receivers swap
    /// them back out during the exchange phase, so each edge recycles two
    /// bundle allocations with zero steady-state allocation.
    mail: Vec<Vec<Mutex<OutBundle>>>,
    published: Vec<Published>,
    /// Lookahead only: each shard's progress cycle (cycles `< progress`
    /// executed), written before the exchange barrier of every round.
    /// The minimum over all shards is the credit-visibility frontier —
    /// every credit freed before it has been mailed and ingested.
    progress: Vec<AtomicU64>,
    /// Lookahead only: per-worker drained-and-exhausted marker
    /// (`u64::MAX` = still live). A dead worker's value is the cycle
    /// the per-cycle protocol would have rested at; all workers dead ⇒
    /// the run ends at the maximum of these.
    done_at: Vec<AtomicU64>,
    barrier: Barrier,
    /// Cycle-limit failure accumulators (error path only). Origins and
    /// completions are summed separately because a net-importer shard
    /// completes more packets than it originates — only the *global*
    /// difference is guaranteed non-negative.
    stuck_origins: AtomicU64,
    stuck_completed: AtomicU64,
}

impl Shared {
    fn new(shards: usize, workers: usize) -> Self {
        Shared {
            mail: (0..shards)
                .map(|_| {
                    (0..shards)
                        .map(|_| Mutex::new(OutBundle::default()))
                        .collect()
                })
                .collect(),
            published: (0..workers)
                .map(|_| Published {
                    active: AtomicBool::new(false),
                    next_arrival: AtomicU64::new(u64::MAX),
                })
                .collect(),
            progress: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            done_at: (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect(),
            barrier: Barrier::new(workers),
            stuck_origins: AtomicU64::new(0),
            stuck_completed: AtomicU64::new(0),
        }
    }
}

// ---- per-shard engine state --------------------------------------------

/// The full active-set router state of one mesh shard. All node-indexed
/// arrays use *local* indices (the shard's nodes in ascending global id
/// order); link-indexed arrays stay globally indexed (each shard only
/// touches the entries it owns).
pub(crate) struct ShardState {
    pub(crate) id: usize,
    nodes: Vec<NodeState>,
    /// Global node id of each local node.
    global_of_node: Vec<u16>,
    /// Packed hot control state per local node — see [`NodeCtl`].
    pub(crate) ctl: Vec<NodeCtl>,
    // --- SoA VC storage, indexed by shard-local slot ---
    /// Owning local node of each slot (RC dirty-list lookups).
    node_of_slot: Vec<u16>,
    /// Packed per-slot metadata: state machine + ring-buffer cursor in
    /// one word (see [`meta`]).
    slot_meta: Vec<u32>,
    /// Flit slab: `ring` contiguous entries per slot.
    flit_buf: Vec<Flit>,
    /// Ring stride of `flit_buf` (power of two ≥ `depth`).
    ring: usize,
    /// `ring - 1`, for masked wrap-around.
    ring_mask: usize,
    /// Configured buffer depth (occupancy bound; copied from the plan so
    /// the hot push path needs no plan argument).
    depth: usize,
    /// In-port of each slot (`idx / vcs`, precomputed).
    in_port_of_slot: Vec<u8>,
    /// VC index of each slot (`idx % vcs`, precomputed).
    vc_of_slot: Vec<u8>,
    /// Free downstream slots, flattened `[link * vcs + vc]`, global link
    /// ids; only entries whose link source this shard owns are used.
    /// Each cell is double-buffered in place ([`CreditCell`]) so credits
    /// freed during a cycle become spendable next cycle without a
    /// separate end-of-cycle application pass.
    credits: Vec<CreditCell>,
    /// Credit cells of every outgoing boundary link (flattened
    /// `link * vcs + vc`): the cells whose frees arrive by mail. The
    /// lookahead pre-check scans these — a zero reading beyond the
    /// visibility frontier may be stale, so the shard stops its round
    /// there instead of risking a divergent credit stall.
    cut_out_cells: Vec<u32>,
    /// Lookahead ripening buffer: mailed boundary credits not yet
    /// spendable, as `(spendable_from_cycle, cell index)`. Drained into
    /// the credit cells as the shard's cycle reaches each entry.
    ripen: Vec<(u64, u32)>,
    // --- flattened per-port router control state ---
    /// Routed-VC bitmask per (node, out-port) — bit = in-VC index.
    routed_mask: Vec<u32>,
    /// Active-VC bitmask per (node, out-port) — bit = in-VC index.
    active_mask: Vec<u32>,
    /// VC-allocation round-robin pointer per (node, out-port).
    va_rr: Vec<u8>,
    /// Switch-allocation round-robin pointer per (node, out-port).
    sa_rr: Vec<u8>,
    /// Held output VCs per (node, out-port), bit = out-VC index. The
    /// free-VC search is one `!holder & class_mask` + `trailing_zeros`
    /// over this packed form; the holding (in-port, in-VC) identity is
    /// reconstructed from slot metadata on the cold dump paths.
    holder_mask: Vec<u32>,
    /// Packed link facts per (node, out-port) — see [`OutPortInfo`].
    out_port_info: Vec<OutPortInfo>,
    /// Upstream credit index (`link * vcs + vc`) freed when a flit pops
    /// from this slot; `u32::MAX` for injection-port slots.
    credit_of_slot: Vec<u32>,
    /// Shard owning the upstream end of each slot's in-port (own id for
    /// injection and intra-shard links).
    src_shard_of_slot: Vec<u16>,
    // --- arrival calendar ---
    /// Cycle-indexed arrival buckets; slot `cycle & wheel_mask`.
    pub(crate) wheel: Vec<Vec<ArrivalEvent>>,
    wheel_mask: u64,
    /// Occupancy bitset over the wheel's buckets (bit `b` of word
    /// `b / 64` set ⇔ bucket `b` is non-empty). Idle fast-forward finds
    /// the next arrival with word-wide `trailing_zeros` jumps instead of
    /// probing buckets one by one.
    wheel_occ: Vec<u64>,
    /// Flits currently traversing links into this shard (booked in
    /// `wheel`).
    pub(crate) inflight_arrivals: u64,
    /// Local node fed by each link (`u16::MAX` when this shard does not
    /// own the link's destination) — flat ingest table so arrival
    /// delivery needs no topology or partition lookups.
    arrive_node_of_link: Vec<u16>,
    /// First (VC-0) buffer slot fed by each link; add the arrival VC.
    arrive_slot_of_link: Vec<u32>,
    // --- active sets ---
    /// Bit per local node: has any buffered flit (gates RC/VA/SA).
    work_mask: Vec<u64>,
    /// Bit per local node: NIC queue non-empty or emission in progress.
    src_mask: Vec<u64>,
    /// Slots whose fresh head packet needs route computation.
    pub(crate) rc_dirty: Vec<u32>,
    /// Packet holding the slot's output VC, written when VC allocation
    /// grants it (valid while the slot's tag is `ACTIVE`; stale
    /// otherwise). Only read by snapshot export, for the corner where an
    /// active slot's buffered flits have all been forwarded.
    active_pid: Vec<u32>,
    // --- packet bookkeeping (shard-local handles) ---
    packets: Vec<PacketInfo>,
    /// Dateline class per local packet handle.
    class_of: Vec<VcClass>,
    /// Provenance per local packet handle: `(u16::MAX, _)` for packets
    /// admitted at an owned NIC, `(sender shard, sender-local pid)` for
    /// handles minted when a boundary head was ingested. Snapshot export
    /// chains these to resolve the one global packet each per-shard
    /// handle is a segment of.
    import_of: Vec<(u16, u32)>,
    /// In-transit wormhole remap per `link * vcs + vc`: the local handle
    /// body/tail flits arriving on that channel belong to. Written when a
    /// boundary head is ingested.
    remap: Vec<u32>,
    /// Outgoing mailbox staging, one bundle per destination shard.
    outbox: Vec<OutBundle>,
    /// Flits resident in this shard (emission/ingest increment, ejection/
    /// boundary send decrement) — a debug gauge, not control state.
    pub(crate) active_flits: i64,
    /// Closed-loop window occupancy per local node: packets emitted but
    /// not yet fully ejected. Only maintained when the plan has a window
    /// (`cfg.max_outstanding > 0`); stays all-zero open-loop.
    pub(crate) outstanding: Vec<u32>,
    /// Acceptance window for `stats.accepted_flits`: ejections in cycles
    /// `[accept_from, accept_until)` count. Set by the run loop — the
    /// measurement window for synthetic runs, the whole run for traces.
    pub(crate) accept_from: u64,
    pub(crate) accept_until: u64,
    /// Packets queued at owned NICs or mid-emission.
    pub(crate) pending_sources: u64,
    /// Packets admitted at owned sources (not immigrant handles).
    pub(crate) origin_packets: u64,
    /// Packets fully ejected at owned destinations.
    pub(crate) completed_packets: u64,
    pub(crate) stats: SimStats,
}

/// `(idx + 1) % total` without the division (RR pointer advance).
#[inline]
fn rr_next(idx: usize, total: usize) -> u8 {
    let nxt = idx + 1;
    if nxt == total {
        0
    } else {
        nxt as u8
    }
}

impl ShardState {
    /// Builds the state of shard `id` under `plan`.
    pub fn new(plan: &EnginePlan<'_>, id: usize) -> Self {
        let cfg = plan.cfg;
        let topo = plan.topo;
        let owned = &plan.partition.nodes_of_shard[id];
        let nodes: Vec<NodeState> = owned
            .iter()
            .map(|&n| NodeState::new(topo, plan.routes, n))
            .collect();
        let global_of_node: Vec<u16> = owned.iter().map(|n| n.0).collect();
        // Flat slot layout, with the upstream credit index and owner
        // shard of every slot resolved up front (the traversal winner
        // path reads them with single slot-indexed loads).
        let mut vc_base = Vec::with_capacity(nodes.len());
        let mut node_of_slot = Vec::new();
        let mut in_port_of_slot = Vec::new();
        let mut vc_of_slot = Vec::new();
        let mut credit_of_slot = Vec::new();
        let mut src_shard_of_slot = Vec::new();
        let mut total_slots = 0u32;
        for (i, st) in nodes.iter().enumerate() {
            vc_base.push(total_slots);
            let slots = st.in_ports() * cfg.vcs;
            assert!(
                slots <= 32,
                "per-node VC count {slots} exceeds the u32 arbitration masks \
                 (node {}: {} in-ports × {} VCs)",
                st.node.0,
                st.in_ports(),
                cfg.vcs
            );
            node_of_slot.extend(std::iter::repeat_n(i as u16, slots));
            for idx in 0..slots {
                let in_port = idx / cfg.vcs;
                let vc = idx % cfg.vcs;
                in_port_of_slot.push(in_port as u8);
                vc_of_slot.push(vc as u8);
                if in_port == 0 {
                    credit_of_slot.push(u32::MAX);
                    src_shard_of_slot.push(id as u16);
                } else {
                    let lid = st.in_links[in_port - 1].index();
                    credit_of_slot.push((lid * cfg.vcs + vc) as u32);
                    src_shard_of_slot.push(plan.partition.link_src_shard[lid]);
                }
            }
            total_slots += slots as u32;
        }
        let total_slots = total_slots as usize;
        // Flat per-port layout with the link facts of each out-port
        // packed into one record ([`OutPortInfo`]).
        let mut port_base = Vec::with_capacity(nodes.len());
        let mut total_in_vcs_of = Vec::with_capacity(nodes.len());
        let mut out_port_info = Vec::new();
        let mut total_out_ports = 0u32;
        for st in &nodes {
            port_base.push(total_out_ports);
            assert!(
                st.out_ports() <= 15,
                "out-port count {} exceeds the packed slot-meta field",
                st.out_ports()
            );
            total_in_vcs_of.push((st.in_ports() * cfg.vcs) as u8);
            out_port_info.push(OutPortInfo {
                link: u32::MAX, // ejection port
                dst_shard: id as u16,
                latency: 0,
                express: false,
                degraded: false,
            });
            for &l in &st.out_links {
                let link = topo.link(l);
                assert!(
                    link.latency_cycles <= u32::from(u8::MAX),
                    "link latency {} exceeds the packed out-port record",
                    link.latency_cycles
                );
                out_port_info.push(OutPortInfo {
                    link: l.index() as u32,
                    dst_shard: plan.partition.link_dst_shard[l.index()],
                    latency: link.latency_cycles as u8,
                    express: link.is_express(),
                    degraded: link.degraded,
                });
            }
            total_out_ports += st.out_ports() as u32;
        }
        // Flat ingest tables: for every link feeding an owned node, the
        // local node index and the slot of its VC 0, so arrival delivery
        // is two array loads instead of topology + partition chases.
        let mut arrive_node_of_link = vec![u16::MAX; topo.links().len()];
        let mut arrive_slot_of_link = vec![0u32; topo.links().len()];
        for l in topo.links() {
            let lid = l.id.index();
            if usize::from(plan.partition.link_dst_shard[lid]) != id {
                continue;
            }
            let local = plan.partition.local_of_node[l.dst.index()];
            let in_port = usize::from(plan.in_port_of_link[lid]);
            arrive_node_of_link[lid] = local as u16;
            arrive_slot_of_link[lid] = vc_base[local as usize] + (in_port * cfg.vcs) as u32;
        }
        let ctl: Vec<NodeCtl> = (0..nodes.len())
            .map(|i| NodeCtl {
                vc_base: vc_base[i],
                port_base: port_base[i],
                in_port_used: 0,
                buffered: 0,
                routed_ports: 0,
                active_ports: 0,
                routed_count: 0,
                total_in_vcs: total_in_vcs_of[i],
            })
            .collect();
        let ring = cfg.buffer_depth.next_power_of_two();
        let filler = Flit {
            packet: u32::MAX,
            dst: NodeId(0),
            is_head: false,
            is_tail: false,
            ready: 0,
        };
        let mask_words = nodes.len().div_ceil(64).max(1);
        let n_local = nodes.len();
        let shards = plan.partition.num_shards();
        let mut cut_out_cells = Vec::new();
        for l in topo.links() {
            let lid = l.id.index();
            if usize::from(plan.partition.link_src_shard[lid]) == id
                && usize::from(plan.partition.link_dst_shard[lid]) != id
            {
                cut_out_cells.extend((0..cfg.vcs).map(|vc| (lid * cfg.vcs + vc) as u32));
            }
        }
        ShardState {
            id,
            global_of_node,
            ctl,
            slot_meta: vec![0; total_slots],
            flit_buf: vec![filler; total_slots * ring],
            ring,
            ring_mask: ring - 1,
            depth: cfg.buffer_depth,
            in_port_of_slot,
            vc_of_slot,
            node_of_slot,
            routed_mask: vec![0; total_out_ports as usize],
            active_mask: vec![0; total_out_ports as usize],
            va_rr: vec![0; total_out_ports as usize],
            sa_rr: vec![0; total_out_ports as usize],
            holder_mask: vec![0; total_out_ports as usize],
            out_port_info,
            credit_of_slot,
            src_shard_of_slot,
            nodes,
            credits: vec![CreditCell::new(cfg.buffer_depth as u16); topo.links().len() * cfg.vcs],
            cut_out_cells,
            ripen: Vec::new(),
            wheel: vec![Vec::new(); plan.wheel_len],
            wheel_mask: (plan.wheel_len - 1) as u64,
            wheel_occ: vec![0; plan.wheel_len.div_ceil(64)],
            inflight_arrivals: 0,
            arrive_node_of_link,
            arrive_slot_of_link,
            work_mask: vec![0; mask_words],
            src_mask: vec![0; mask_words],
            rc_dirty: Vec::new(),
            active_pid: vec![u32::MAX; total_slots],
            packets: Vec::new(),
            class_of: Vec::new(),
            import_of: Vec::new(),
            remap: vec![u32::MAX; topo.links().len() * cfg.vcs],
            outbox: (0..shards).map(|_| OutBundle::default()).collect(),
            active_flits: 0,
            outstanding: vec![0; n_local],
            accept_from: 0,
            accept_until: u64::MAX,
            pending_sources: 0,
            origin_packets: 0,
            completed_packets: 0,
            stats: {
                let mut s = SimStats::new(topo.links().len(), topo.num_nodes());
                if let Some(tm) = plan.tenants {
                    s.init_tenants(tm.tenants);
                }
                s
            },
        }
    }

    // ---- active-set plumbing -------------------------------------------

    #[inline]
    fn set_work(&mut self, node: usize) {
        self.work_mask[node >> 6] |= 1u64 << (node & 63);
    }

    #[inline]
    fn clear_work(&mut self, node: usize) {
        self.work_mask[node >> 6] &= !(1u64 << (node & 63));
    }

    #[inline]
    fn set_src(&mut self, node: usize) {
        self.src_mask[node >> 6] |= 1u64 << (node & 63);
    }

    #[inline]
    fn clear_src(&mut self, node: usize) {
        self.src_mask[node >> 6] &= !(1u64 << (node & 63));
    }

    /// True when no owned router can do any work this cycle (flits may
    /// still be traversing links — check [`Self::next_arrival_cycle`]).
    #[inline]
    pub(crate) fn quiescent(&self) -> bool {
        self.work_mask.iter().all(|&w| w == 0) && self.src_mask.iter().all(|&w| w == 0)
    }

    /// Cycle of the earliest booked link arrival ≥ `now`, if any. The
    /// calendar only holds arrivals within one wheel revolution of `now`,
    /// and the occupancy bitset answers "which bucket next" a word (64
    /// buckets) at a time: one masked load plus `trailing_zeros` per
    /// word, so a multi-cycle idle gap is skipped in one jump instead of
    /// probing buckets one by one.
    pub(crate) fn next_arrival_cycle(&self, now: u64) -> Option<u64> {
        if self.inflight_arrivals == 0 {
            return None;
        }
        let len = self.wheel.len() as u64;
        let start = (now & self.wheel_mask) as usize;
        let nwords = self.wheel_occ.len();
        let sw = start >> 6;
        // Buckets ≥ start in the starting word…
        let head = self.wheel_occ[sw] & (u64::MAX << (start & 63));
        if head != 0 {
            return Some(now + u64::from(head.trailing_zeros()) - (start & 63) as u64);
        }
        // …then whole words onward, wrapping; the k == nwords pass picks
        // up the starting word's buckets below `start`.
        for k in 1..=nwords {
            let wi = (sw + k) % nwords;
            let w = if wi == sw {
                self.wheel_occ[wi] & !(u64::MAX << (start & 63))
            } else {
                self.wheel_occ[wi]
            };
            if w != 0 {
                let bucket = ((wi as u64) << 6) + u64::from(w.trailing_zeros());
                let off = (bucket + len - start as u64) & self.wheel_mask;
                return Some(now + off);
            }
        }
        debug_assert!(false, "inflight arrivals but empty occupancy bitset");
        None
    }

    /// Books one link arrival into the calendar, maintaining the
    /// occupancy bitset.
    #[inline]
    fn wheel_push(&mut self, arrive: u64, ev: ArrivalEvent) {
        let bucket = (arrive & self.wheel_mask) as usize;
        self.wheel[bucket].push(ev);
        self.wheel_occ[bucket >> 6] |= 1u64 << (bucket & 63);
        self.inflight_arrivals += 1;
    }

    /// Appends `f` to a VC ring, updating active-set state. Marks the slot
    /// RC-dirty when `f` lands at the head of an idle VC (then it is a
    /// fresh head flit by the VC-allocation contract).
    #[inline]
    fn push_flit(&mut self, node: usize, slot: usize, f: Flit) {
        let m = self.slot_meta[slot];
        let len = meta::len(m);
        debug_assert!(len < self.depth, "VC overflow (credit leak)");
        if len == 0 && meta::tag(m) == meta::IDLE {
            debug_assert!(f.is_head, "flit entering an idle empty VC must be a head");
            self.rc_dirty.push(slot as u32);
        }
        let pos = (meta::head(m) + len) & self.ring_mask;
        self.flit_buf[slot * self.ring + pos] = f;
        self.slot_meta[slot] = m + meta::LEN_ONE;
        self.ctl[node].buffered += 1;
        self.set_work(node);
    }

    #[inline]
    fn front_flit(&self, slot: usize) -> Option<&Flit> {
        let m = self.slot_meta[slot];
        if meta::len(m) == 0 {
            None
        } else {
            Some(&self.flit_buf[slot * self.ring + meta::head(m)])
        }
    }

    /// Buffered flits per VC index, summed over this shard's ports —
    /// the per-VC occupancy gauge [`EngineView`] exposes to probes.
    pub(crate) fn vc_occupancy(&self, vcs: usize) -> Vec<u64> {
        let mut occ = vec![0u64; vcs];
        for (slot, &m) in self.slot_meta.iter().enumerate() {
            occ[usize::from(self.vc_of_slot[slot])] += meta::len(m) as u64;
        }
        occ
    }

    /// Pops the head flit of a slot whose metadata word `m` the caller
    /// already holds (saves the reload on the traversal winner path).
    #[inline]
    fn pop_flit_meta(&mut self, slot: usize, m: u32) -> Flit {
        debug_assert_eq!(m, self.slot_meta[slot], "stale metadata word");
        debug_assert!(meta::len(m) > 0, "pop from empty VC");
        let head = meta::head(m);
        let f = self.flit_buf[slot * self.ring + head];
        let new_head = ((head + 1) & self.ring_mask) as u32;
        self.slot_meta[slot] = ((m - meta::LEN_ONE) & !(meta::HEAD_MASK << meta::HEAD_SHIFT))
            | (new_head << meta::HEAD_SHIFT);
        f
    }

    /// Queues a packet at its (owned) source NIC.
    pub(crate) fn admit(
        &mut self,
        plan: &EnginePlan<'_>,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        inject_cycle: u64,
    ) {
        let local = plan.partition.local_of_node[src.index()] as usize;
        debug_assert_eq!(
            usize::from(plan.partition.shard_of_node[src.index()]),
            self.id,
            "admission to a node this shard does not own"
        );
        let pid = self.packets.len() as u32;
        self.packets.push(PacketInfo {
            src,
            dst,
            inject_cycle,
            flits,
            ejected: 0,
        });
        self.class_of.push(plan.initial_class(src, dst));
        self.import_of.push((u16::MAX, 0));
        self.nodes[local].src_queue.push_back(pid);
        self.pending_sources += 1;
        self.origin_packets += 1;
        self.stats.rerouted_hops += plan.extra_hops(src, dst);
        let backlog = self.nodes[local].src_queue.len() as u32
            + u32::from(self.nodes[local].emitting.is_some());
        if backlog > self.stats.peak_backlog[src.index()] {
            self.stats.peak_backlog[src.index()] = backlog;
        }
        self.set_src(local);
    }

    /// Applies one closed-loop source credit to an owned node: a packet
    /// that node emitted has fully ejected, so its window slot frees and
    /// the source is re-armed if it has queued work. Called locally from
    /// switch traversal (same-shard destination) or from the exchange
    /// phase (mailbox credit) — both are first observable by the next
    /// cycle's emission stage.
    fn apply_source_credit(&mut self, plan: &EnginePlan<'_>, src: NodeId) {
        let local = plan.partition.local_of_node[src.index()] as usize;
        debug_assert_eq!(
            usize::from(plan.partition.shard_of_node[src.index()]),
            self.id,
            "source credit delivered to a shard that does not own the source"
        );
        debug_assert!(self.outstanding[local] > 0, "source credit underflow");
        self.outstanding[local] -= 1;
        if self.nodes[local].emitting.is_some() || !self.nodes[local].src_queue.is_empty() {
            self.set_src(local);
        }
    }

    // ---- the five pipeline stages --------------------------------------

    /// One simulated cycle for this shard (the step phase of a
    /// superstep). Boundary traffic lands in `self.outbox`; the caller is
    /// responsible for posting outboxes and running the exchange phase.
    /// Credit application needs no stage of its own: the double-buffered
    /// [`CreditCell`]s fold freed credits in on their next access, which
    /// preserves next-cycle visibility exactly.
    pub(crate) fn step(&mut self, plan: &EnginePlan<'_>, now: u64) {
        self.step_probed(plan, now, &mut NoopProbe);
    }

    /// [`Self::step`] with a telemetry probe attached. With
    /// [`NoopProbe`] every hook site monomorphizes away, so the plain
    /// `step` compiles to the pre-telemetry engine exactly.
    pub(crate) fn step_probed<P: Probe>(&mut self, plan: &EnginePlan<'_>, now: u64, probe: &mut P) {
        self.deliver_link_arrivals(plan, now);
        self.emit_from_sources(plan, now, probe);
        self.route_compute();
        self.alloc_and_traverse(plan, now, probe);
    }

    /// Stage 1: drain this cycle's calendar bucket into input buffers.
    fn deliver_link_arrivals(&mut self, plan: &EnginePlan<'_>, now: u64) {
        let bucket = (now & self.wheel_mask) as usize;
        let occ_bit = 1u64 << (bucket & 63);
        if self.wheel_occ[bucket >> 6] & occ_bit == 0 {
            return;
        }
        self.wheel_occ[bucket >> 6] &= !occ_bit;
        // The arrival cycle is the link-traversal cycle; the router
        // pipeline (RC, VA/SA, ST) starts the following cycle, so a
        // hop costs `link latency + pipeline` cycles end to end.
        let ready = now + 1 + plan.cfg.pipeline_dwell();
        let mut events = std::mem::take(&mut self.wheel[bucket]);
        self.inflight_arrivals -= events.len() as u64;
        for (lid, vc, flit) in events.drain(..) {
            let node = usize::from(self.arrive_node_of_link[lid as usize]);
            let slot = self.arrive_slot_of_link[lid as usize] as usize + usize::from(vc);
            let mut f = flit;
            f.ready = ready;
            self.push_flit(node, slot, f);
        }
        // Hand the bucket's allocation back for reuse.
        self.wheel[bucket] = events;
    }

    /// Stage 2: NIC emission into the injection port, source-active nodes
    /// only. A source that cannot push (its injection VCs are full) is
    /// parked out of `src_mask`; it is re-armed when an injection-VC slot
    /// frees at this node (in-port-0 pop in switch traversal) or a new
    /// packet is admitted, so no cycle the seed engine would use for
    /// emission is missed.
    fn emit_from_sources<P: Probe>(&mut self, plan: &EnginePlan<'_>, now: u64, probe: &mut P) {
        let dwell = plan.cfg.pipeline_dwell();
        for w in 0..self.src_mask.len() {
            let mut bits = self.src_mask[w];
            while bits != 0 {
                let node = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut pushed = false;
                let window = plan.cfg.max_outstanding;
                if self.nodes[node].emitting.is_none() {
                    // Closed loop: a full window parks the source until an
                    // ejection returns a source credit.
                    let window_open = window == 0 || (self.outstanding[node] as usize) < window;
                    if let Some(&pid) = self.nodes[node].src_queue.front() {
                        if P::ENABLED && !window_open {
                            probe.on_stall(
                                StallCause::WindowClosed,
                                NodeId(self.global_of_node[node]),
                                now,
                            );
                        }
                        if window_open {
                            // Pick an injection VC in the packet's class.
                            let info = self.packets[pid as usize];
                            let range = plan.vc_range(self.class_of[pid as usize]);
                            let base = self.ctl[node].vc_base as usize; // in-port 0 ⇒ slot = base + vc
                            let pick = range.clone().find(|&v| {
                                meta::len(self.slot_meta[base + v]) < plan.cfg.buffer_depth
                            });
                            if let Some(v) = pick {
                                self.nodes[node].src_queue.pop_front();
                                let mut inject_cycle = info.inject_cycle;
                                if window > 0 {
                                    self.outstanding[node] += 1;
                                    let g = usize::from(self.global_of_node[node]);
                                    if self.outstanding[node] > self.stats.peak_outstanding[g] {
                                        self.stats.peak_outstanding[g] = self.outstanding[node];
                                    }
                                    // Closed-loop latency is network latency:
                                    // restart the measured clock at emission,
                                    // leaving NIC queueing to the backlog
                                    // gauge (unmeasured warm-up packets keep
                                    // their u64::MAX marker).
                                    if inject_cycle != u64::MAX {
                                        inject_cycle = now;
                                        self.packets[pid as usize].inject_cycle = now;
                                    }
                                }
                                self.nodes[node].emitting = Some(Emission {
                                    packet: pid,
                                    emitted: 0,
                                    total: info.flits,
                                    vc: v as u8,
                                    dst: info.dst,
                                    inject_cycle,
                                });
                            }
                        }
                    }
                }
                if let Some(mut em) = self.nodes[node].emitting {
                    let slot = self.ctl[node].vc_base as usize + usize::from(em.vc);
                    if meta::len(self.slot_meta[slot]) < plan.cfg.buffer_depth {
                        let flit = Flit {
                            packet: em.packet,
                            dst: em.dst,
                            is_head: em.emitted == 0,
                            is_tail: em.emitted + 1 == em.total,
                            ready: now + dwell,
                        };
                        self.push_flit(node, slot, flit);
                        if P::ENABLED && flit.is_head {
                            probe.on_inject(
                                PacketKey {
                                    src: NodeId(self.global_of_node[node]),
                                    inject_cycle: em.inject_cycle,
                                },
                                em.dst,
                                em.total,
                                now,
                            );
                        }
                        pushed = true;
                        self.active_flits += 1;
                        self.stats.flits_injected += 1;
                        if let Some(tm) = plan.tenants {
                            let g = usize::from(self.global_of_node[node]);
                            self.stats.tenants[usize::from(tm.tenant_of_node[g])].flits_injected +=
                                1;
                        }
                        em.emitted += 1;
                        self.nodes[node].emitting = if em.emitted == em.total {
                            self.pending_sources -= 1;
                            None
                        } else {
                            Some(em)
                        };
                    }
                }
                // Done (nothing left) or parked (blocked on full VCs).
                if !pushed
                    || (self.nodes[node].emitting.is_none()
                        && self.nodes[node].src_queue.is_empty())
                {
                    self.clear_src(node);
                }
            }
        }
    }

    /// Stage 3: route computation, dirty slots only. A slot is marked when
    /// a head flit lands at the front of an idle VC (on push, or when a
    /// tail departs with the next packet queued behind it), so this visits
    /// exactly the VCs the seed engine's full scan would transition.
    fn route_compute(&mut self) {
        while let Some(slot) = self.rc_dirty.pop() {
            let slot = slot as usize;
            let m = self.slot_meta[slot];
            debug_assert_eq!(meta::tag(m), meta::IDLE, "dirty slot must be idle");
            debug_assert!(meta::len(m) > 0, "dirty slot has a queued head");
            let head = &self.flit_buf[slot * self.ring + meta::head(m)];
            debug_assert!(head.is_head, "queue head after Idle must be a head flit");
            let node = usize::from(self.node_of_slot[slot]);
            let out_port = self.nodes[node].route_port[head.dst.index()];
            let idx = slot - self.ctl[node].vc_base as usize;
            self.slot_meta[slot] =
                (m & meta::STATE_CLEAR) | meta::ROUTED | (u32::from(out_port) << meta::PORT_SHIFT);
            self.routed_mask[self.ctl[node].port_base as usize + usize::from(out_port)] |= 1 << idx;
            self.ctl[node].routed_ports |= 1 << out_port;
            self.ctl[node].routed_count += 1;
        }
    }

    /// Stages 4 + 5, fused per node: VC allocation (round-robin per
    /// output port) followed by switch allocation + traversal, one flit
    /// per out-port and per in-port per cycle, work-active nodes only.
    ///
    /// Fusing the two stages per node is bit-for-bit equivalent to two
    /// full passes: a node's VC allocation reads only its own masks and
    /// slot metadata, while another node's traversal writes land in
    /// structures invisible until next cycle (double-buffered credit
    /// cells, calendar buckets ≥ `now + 1`, mailbox outboxes) — and the
    /// node's state stays hot in cache across both stages. Within a
    /// node, arbitration order is identical to the seed engine's.
    fn alloc_and_traverse<P: Probe>(&mut self, plan: &EnginePlan<'_>, now: u64, probe: &mut P) {
        let vcs = plan.cfg.vcs;
        let dwell = plan.cfg.pipeline_dwell();
        for w in 0..self.work_mask.len() {
            let mut bits = self.work_mask[w];
            while bits != 0 {
                let node = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let c = self.ctl[node];
                let base = c.vc_base as usize;
                let pb = c.port_base as usize;
                let total_in_vcs = usize::from(c.total_in_vcs);

                // --- VC allocation ---
                if c.routed_count != 0 {
                    // Ports with routed VCs, ascending — the same ports a
                    // full 0..out_ports probe would act on.
                    let mut rp = c.routed_ports;
                    while rp != 0 {
                        let p = rp.trailing_zeros() as usize;
                        rp &= rp - 1;
                        // Only VCs actually Routed for this port, in the
                        // same round-robin order a full scan from va_rr
                        // would use.
                        let mask = self.routed_mask[pb + p];
                        let start = usize::from(self.va_rr[pb + p]);
                        // Fault-degraded links expose only the low half of
                        // each class's VCs (ejection ports never degrade).
                        let degraded = self.out_port_info[pb + p].degraded;
                        for idx in cyclic_bits(mask, start) {
                            let m = self.slot_meta[base + idx];
                            debug_assert_eq!(meta::tag(m), meta::ROUTED);
                            debug_assert_eq!(meta::out_port(m), p);
                            debug_assert!(meta::len(m) > 0, "Routed VC holds its head flit");
                            let head_packet =
                                self.flit_buf[(base + idx) * self.ring + meta::head(m)].packet;
                            // Free VCs open to this packet's class, as a
                            // bitmask: lowest set bit = the VC the range
                            // scan would have found.
                            let class = self.class_of[head_packet as usize];
                            let open = if degraded {
                                plan.degraded_class_mask(class)
                            } else {
                                plan.class_mask(class)
                            };
                            let free = !self.holder_mask[pb + p] & open;
                            if free != 0 {
                                let ovc = free.trailing_zeros() as usize;
                                if P::ENABLED {
                                    let info = &self.packets[head_packet as usize];
                                    probe.on_vc_alloc(
                                        PacketKey {
                                            src: info.src,
                                            inject_cycle: info.inject_cycle,
                                        },
                                        NodeId(self.global_of_node[node]),
                                        ovc as u8,
                                        now,
                                    );
                                }
                                self.holder_mask[pb + p] |= 1 << ovc;
                                self.active_pid[base + idx] = head_packet;
                                self.slot_meta[base + idx] = (m & meta::STATE_CLEAR)
                                    | meta::ACTIVE
                                    | ((p as u32) << meta::PORT_SHIFT)
                                    | ((ovc as u32) << meta::OVC_SHIFT);
                                self.routed_mask[pb + p] &= !(1 << idx);
                                self.ctl[node].routed_count -= 1;
                                self.active_mask[pb + p] |= 1 << idx;
                                self.ctl[node].active_ports |= 1 << p;
                                self.va_rr[pb + p] = rr_next(idx, total_in_vcs);
                            } else if P::ENABLED {
                                probe.on_stall(
                                    StallCause::VaLoss,
                                    NodeId(self.global_of_node[node]),
                                    now,
                                );
                            }
                        }
                        if self.routed_mask[pb + p] == 0 {
                            self.ctl[node].routed_ports &= !(1 << p);
                        }
                    }
                }

                // --- switch allocation + traversal ---
                // The seed engine zeroes this for every node during its
                // full emission scan; here the reset rides the switch
                // stage of active nodes (quiescent nodes have no flits to
                // arbitrate, so their stale masks are unobservable).
                self.ctl[node].in_port_used = 0;
                let mut ap = self.ctl[node].active_ports;
                while ap != 0 {
                    let p = ap.trailing_zeros() as usize;
                    ap &= ap - 1;
                    // Only VCs actually Active on this port, in the same
                    // round-robin order a full scan from sa_rr would use.
                    let mask = self.active_mask[pb + p];
                    let start = usize::from(self.sa_rr[pb + p]);
                    let opi = self.out_port_info[pb + p];
                    let mut winner: Option<(usize, u8, u32)> = None;
                    for idx in cyclic_bits(mask, start) {
                        let m = self.slot_meta[base + idx];
                        debug_assert_eq!(meta::tag(m), meta::ACTIVE);
                        debug_assert_eq!(meta::out_port(m), p);
                        let in_port = usize::from(self.in_port_of_slot[base + idx]);
                        if self.ctl[node].in_port_used & (1 << in_port) != 0 {
                            if P::ENABLED {
                                probe.on_stall(
                                    StallCause::SaLoss,
                                    NodeId(self.global_of_node[node]),
                                    now,
                                );
                            }
                            continue;
                        }
                        if meta::len(m) == 0 {
                            // Active VC with all buffered flits already
                            // forwarded (body flits still in transit).
                            continue;
                        }
                        let ready = self.flit_buf[(base + idx) * self.ring + meta::head(m)].ready;
                        if ready > now {
                            continue;
                        }
                        let out_vc = meta::out_vc(m);
                        if p > 0 {
                            let lid = opi.link as usize;
                            if self.credits[lid * vcs + out_vc].normalize(now) == 0 {
                                if P::ENABLED {
                                    probe.on_stall(
                                        StallCause::CreditStarved,
                                        NodeId(self.global_of_node[node]),
                                        now,
                                    );
                                }
                                continue;
                            }
                        }
                        winner = Some((idx, out_vc as u8, m));
                        break;
                    }
                    let Some((idx, out_vc, wm)) = winner else {
                        continue;
                    };
                    self.sa_rr[pb + p] = rr_next(idx, total_in_vcs);
                    let flit = self.pop_flit_meta(base + idx, wm);
                    self.ctl[node].buffered -= 1;
                    if self.ctl[node].buffered == 0 {
                        self.clear_work(node);
                    }
                    let in_port = usize::from(self.in_port_of_slot[base + idx]);
                    self.ctl[node].in_port_used |= 1 << in_port;
                    self.stats.router_flits[usize::from(self.global_of_node[node])] += 1;

                    // Return a credit upstream for the slot we just freed;
                    // an injection-port pop re-arms a parked source. A
                    // boundary upstream gets its credit by mail (applied
                    // during the exchange phase — the same next-cycle
                    // visibility as the local pending half of the cell).
                    if in_port > 0 {
                        let cred = self.credit_of_slot[base + idx] as usize;
                        let owner = usize::from(self.src_shard_of_slot[base + idx]);
                        if owner == self.id {
                            self.credits[cred].free(now);
                        } else {
                            self.outbox[owner].credits.push((cred as u32, now));
                        }
                    } else if self.nodes[node].emitting.is_some()
                        || !self.nodes[node].src_queue.is_empty()
                    {
                        self.set_src(node);
                    }

                    if p == 0 {
                        // Ejection.
                        let pid = flit.packet as usize;
                        self.packets[pid].ejected += 1;
                        self.stats.flits_delivered += 1;
                        let accepted = now >= self.accept_from && now < self.accept_until;
                        if accepted {
                            self.stats.accepted_flits += 1;
                        }
                        // Tenant traffic is tile-internal, so the ejecting
                        // node's tenant is the packet's tenant.
                        if let Some(tm) = plan.tenants {
                            let g = usize::from(self.global_of_node[node]);
                            let lane = &mut self.stats.tenants[usize::from(tm.tenant_of_node[g])];
                            lane.flits_delivered += 1;
                            if accepted {
                                lane.accepted_flits += 1;
                            }
                        }
                        self.active_flits -= 1;
                        if self.packets[pid].is_complete() {
                            self.completed_packets += 1;
                            let info = self.packets[pid];
                            if P::ENABLED {
                                probe.on_eject(
                                    PacketKey {
                                        src: info.src,
                                        inject_cycle: info.inject_cycle,
                                    },
                                    NodeId(self.global_of_node[node]),
                                    now,
                                );
                            }
                            if info.inject_cycle != u64::MAX {
                                self.stats
                                    .record_packet(info.flits, now + 1 - info.inject_cycle);
                                if let Some(tm) = plan.tenants {
                                    let g = usize::from(self.global_of_node[node]);
                                    self.stats.tenants[usize::from(tm.tenant_of_node[g])]
                                        .latency
                                        .record(now + 1 - info.inject_cycle);
                                }
                            }
                            // Closed loop: hand the window slot back to the
                            // origin. An immigrant packet's origin lives in
                            // another shard — mail the credit (applied in
                            // this superstep's exchange, visible next cycle,
                            // the same timing as the local decrement).
                            if plan.cfg.max_outstanding > 0 {
                                let owner =
                                    usize::from(plan.partition.shard_of_node[info.src.index()]);
                                if owner == self.id {
                                    self.apply_source_credit(plan, info.src);
                                } else {
                                    self.outbox[owner].src_credits.push(info.src.0);
                                }
                            }
                        }
                    } else {
                        let lid = opi.link as usize;
                        self.credits[lid * vcs + usize::from(out_vc)].take(now);
                        let pid = flit.packet as usize;
                        if P::ENABLED && flit.is_head {
                            let info = &self.packets[pid];
                            probe.on_hop(
                                PacketKey {
                                    src: info.src,
                                    inject_cycle: info.inject_cycle,
                                },
                                opi.link,
                                now,
                            );
                        }
                        if opi.express {
                            // Dateline: the packet is class B from here on.
                            self.class_of[pid] = VcClass::PostExpress;
                        }
                        self.stats.link_flits[lid] += 1;
                        let arrive = now + u64::from(opi.latency);
                        let target = usize::from(opi.dst_shard);
                        if target == self.id {
                            if opi.latency == 1 {
                                // One-cycle links skip the calendar: the
                                // flit lands in its destination VC at send
                                // time with the ready cycle the deliver
                                // stage would have stamped next cycle.
                                // This is observable-behavior-preserving
                                // for latency 1 only — the head is marked
                                // RC-dirty this cycle and route computation
                                // drains the list next cycle, exactly when
                                // a calendar delivery at `now + 1` would
                                // have routed it, and the early-buffered
                                // flit cannot win arbitration before
                                // `ready` (nor push its slot's VC state;
                                // wormhole order is unchanged because a
                                // link's flits all take this path).
                                let dst = usize::from(self.arrive_node_of_link[lid]);
                                let slot =
                                    self.arrive_slot_of_link[lid] as usize + usize::from(out_vc);
                                let mut f = flit;
                                f.ready = now + 2 + dwell;
                                self.push_flit(dst, slot, f);
                            } else {
                                self.wheel_push(arrive, (opi.link, out_vc, flit));
                            }
                        } else {
                            let info = &self.packets[pid];
                            self.outbox[target].flits.push(BoundaryFlit {
                                link: lid as u32,
                                vc: out_vc,
                                arrive,
                                flit,
                                class: self.class_of[pid],
                                flits: info.flits,
                                inject_cycle: info.inject_cycle,
                                origin: info.src,
                            });
                            self.active_flits -= 1;
                        }
                    }

                    if flit.is_tail {
                        self.holder_mask[pb + p] &= !(1 << out_vc);
                        let m = self.slot_meta[base + idx] & meta::STATE_CLEAR;
                        self.slot_meta[base + idx] = m; // back to Idle
                        self.active_mask[pb + p] &= !(1 << idx);
                        if self.active_mask[pb + p] == 0 {
                            self.ctl[node].active_ports &= !(1 << p);
                        }
                        if meta::len(m) > 0 {
                            // The next packet's head is already queued
                            // behind the departed tail: needs RC next
                            // cycle.
                            self.rc_dirty.push((base + idx) as u32);
                        }
                    }
                }
            }
        }
    }

    // ---- superstep exchange --------------------------------------------

    /// Swaps every non-empty outbox into the shared mailbox grid (end of
    /// the step phase).
    fn post_outboxes(&mut self, shared: &Shared) {
        for (target, bundle) in self.outbox.iter_mut().enumerate() {
            if target == self.id || bundle.is_empty() {
                continue;
            }
            let mut cell = shared.mail[self.id][target]
                .lock()
                .expect("mailbox not poisoned");
            debug_assert!(cell.is_empty(), "mailbox collision (missed exchange)");
            std::mem::swap(&mut *cell, bundle);
        }
    }

    /// Ingests one incoming bundle: applies boundary credits and books
    /// boundary flits into the local calendar wheel, minting local packet
    /// handles for arriving heads (the exchange phase). `now` is the
    /// shard's next unexecuted cycle. Under the classic protocol every
    /// mailed credit was freed exactly at `now`, and lands in the
    /// pending half of its [`CreditCell`] with that stamp — the same
    /// next-cycle visibility as locally freed credits. Under lookahead
    /// (`windowed`) the bundle spans a window: credits already due
    /// (freed before `now`) are applied spendable-at-`now` directly,
    /// later ones wait in the ripening buffer for their cycle.
    pub(crate) fn ingest(
        &mut self,
        plan: &EnginePlan<'_>,
        from: u16,
        bundle: &mut OutBundle,
        now: u64,
        windowed: bool,
    ) {
        for (idx, freed) in bundle.credits.drain(..) {
            if windowed {
                if freed < now {
                    self.credits[idx as usize].ripen(now);
                } else {
                    self.ripen.push((freed + 1, idx));
                }
            } else {
                debug_assert_eq!(freed, now, "classic exchange credit from another cycle");
                self.credits[idx as usize].free(now);
            }
        }
        for src in bundle.src_credits.drain(..) {
            self.apply_source_credit(plan, NodeId(src));
        }
        let vcs = plan.cfg.vcs;
        for m in bundle.flits.drain(..) {
            let key = m.link as usize * vcs + usize::from(m.vc);
            if m.flit.is_head {
                let pid = self.packets.len() as u32;
                self.packets.push(PacketInfo {
                    // The *origin* node, not the boundary link's source:
                    // the closed-loop credit goes back to the NIC that
                    // emitted the packet, however many shards away.
                    src: m.origin,
                    dst: m.flit.dst,
                    inject_cycle: m.inject_cycle,
                    flits: m.flits,
                    ejected: 0,
                });
                self.class_of.push(m.class);
                self.import_of.push((from, m.flit.packet));
                self.remap[key] = pid;
            }
            debug_assert_ne!(self.remap[key], u32::MAX, "body flit without a head");
            let mut f = m.flit;
            f.packet = self.remap[key];
            self.wheel_push(m.arrive, (m.link, m.vc, f));
            self.active_flits += 1;
        }
    }

    /// Applies every ripening-buffer credit due at or before `now`
    /// (lookahead rounds call this at the top of each cycle, before the
    /// staleness pre-check and arbitration read any cell).
    fn apply_ripe_credits(&mut self, now: u64) {
        if self.ripen.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.ripen.len() {
            let (due, idx) = self.ripen[i];
            if due <= now {
                self.credits[idx as usize].ripen(now);
                self.ripen.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Whether cycle `now` is safe to execute beyond the visibility
    /// frontier: every outgoing-boundary credit cell reads non-zero.
    /// (A non-zero cell can only be under-counted — missed remote frees
    /// never invent credits — and switch allocation takes at most one
    /// credit per cell per cycle, so any cell that starts the cycle
    /// non-zero is consulted with the same zero/non-zero answer the
    /// per-cycle protocol would see. A zero cell beyond the frontier
    /// may be a stale zero, so the round must stop here.)
    fn lookahead_safe(&self, now: u64) -> bool {
        self.cut_out_cells
            .iter()
            .all(|&c| self.credits[c as usize].peek(now) > 0)
    }

    /// Drains every mailbox addressed to this shard (the exchange phase).
    fn collect_inboxes<P: Probe>(
        &mut self,
        plan: &EnginePlan<'_>,
        shared: &Shared,
        now: u64,
        windowed: bool,
        probe: &mut P,
    ) {
        for &from in &plan.inbox_sources[self.id] {
            let mut scratch = {
                let mut cell = shared.mail[usize::from(from)][self.id]
                    .lock()
                    .expect("mailbox not poisoned");
                if cell.is_empty() {
                    continue;
                }
                std::mem::take(&mut *cell)
            };
            if P::ENABLED {
                probe.on_exchange(
                    usize::from(from),
                    self.id,
                    scratch.flits.len(),
                    scratch.credits.len(),
                    now,
                );
            }
            self.ingest(plan, from, &mut scratch, now, windowed);
            // Return the drained allocation for the sender to reuse.
            let mut cell = shared.mail[usize::from(from)][self.id]
                .lock()
                .expect("mailbox not poisoned");
            if cell.is_empty() {
                std::mem::swap(&mut *cell, &mut scratch);
            }
        }
    }

    // ---- deadlock triage ------------------------------------------------

    /// Reconstructs which (in-port, in-VC) holds output VC `v` of local
    /// node `node`'s out-port `p` — cold dump path only; the hot path
    /// tracks just the packed `holder_mask`.
    fn holder_of(&self, node: usize, p: usize, v: usize) -> Option<(u8, u8)> {
        let base = self.ctl[node].vc_base as usize;
        (0..usize::from(self.ctl[node].total_in_vcs)).find_map(|idx| {
            let m = self.slot_meta[base + idx];
            if meta::tag(m) == meta::ACTIVE && meta::out_port(m) == p && meta::out_vc(m) == v {
                Some((
                    self.in_port_of_slot[base + idx],
                    self.vc_of_slot[base + idx],
                ))
            } else {
                None
            }
        })
    }

    /// Builds the channel wait-for graph of this shard's stuck state and
    /// prints one cycle if present. Channels are (link, vc) pairs;
    /// injection VCs are virtual channels numbered past the links. With
    /// P > 1 only intra-shard cycles are visible — a genuine cross-shard
    /// cycle shows up as chains ending at boundary links in several
    /// shards' dumps.
    fn dump_waitfor_cycle(&self, plan: &EnginePlan<'_>, now: u64) {
        let vcs = plan.cfg.vcs;
        let links = plan.topo.links().len();
        let chan = |lid: usize, vc: usize| lid * vcs + vc;
        let inj_chan = |node: usize, vc: usize| links * vcs + node * vcs + vc;
        let total = links * vcs + plan.topo.num_nodes() * vcs;
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (node, st) in self.nodes.iter().enumerate() {
            let base = self.ctl[node].vc_base as usize;
            for idx in 0..st.in_ports() * vcs {
                let slot = base + idx;
                let m = self.slot_meta[slot];
                if meta::len(m) == 0 {
                    continue;
                }
                let in_port = idx / vcs;
                let in_vc = idx % vcs;
                let src_chan = if in_port == 0 {
                    inj_chan(st.node.index(), in_vc)
                } else {
                    chan(st.in_links[in_port - 1].index(), in_vc)
                };
                let out_port = meta::out_port(m);
                match meta::tag(m) {
                    meta::ACTIVE if out_port > 0 => {
                        let out_vc = meta::out_vc(m);
                        let lid = st.out_links[out_port - 1].index();
                        if self.credits[lid * vcs + out_vc].peek(now) == 0 {
                            edges[src_chan].push(chan(lid, out_vc));
                        }
                    }
                    meta::ROUTED if out_port > 0 => {
                        // Waiting for a held out VC in the packet's class.
                        let head = self.front_flit(slot).expect("nonempty");
                        let range = plan.vc_range(self.class_of[head.packet as usize]);
                        let pb = self.ctl[node].port_base as usize;
                        for v in range {
                            if self.holder_mask[pb + out_port] & (1 << v) != 0 {
                                let lid = st.out_links[out_port - 1].index();
                                edges[src_chan].push(chan(lid, v));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Iterative DFS cycle detection.
        let mut color = vec![0u8; total];
        let mut parent = vec![usize::MAX; total];
        for start in 0..total {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < edges[u].len() {
                    let v = edges[u][*ei];
                    *ei += 1;
                    if color[v] == 0 {
                        color[v] = 1;
                        parent[v] = u;
                        stack.push((v, 0));
                    } else if color[v] == 1 {
                        // Cycle found: unwind from u back to v.
                        let mut cyc = vec![v, u];
                        let mut w = u;
                        while w != v {
                            w = parent[w];
                            cyc.push(w);
                        }
                        eprintln!(
                            "WAIT-FOR CYCLE in shard {} ({} channels):",
                            self.id,
                            cyc.len() - 1
                        );
                        for &c in cyc.iter().rev() {
                            if c >= links * vcs {
                                let node = (c - links * vcs) / vcs;
                                eprintln!("  inj node {} vc {}", node, c % vcs);
                            } else {
                                let l = plan.topo.link(LinkId((c / vcs) as u32));
                                eprintln!(
                                    "  link {}->{} ({:?}) vc {}",
                                    l.src.0,
                                    l.dst.0,
                                    l.class,
                                    c % vcs
                                );
                            }
                        }
                        return;
                    }
                } else {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
        eprintln!(
            "shard {}: no wait-for cycle found (stall, not deadlock)",
            self.id
        );
    }

    /// Prints every blocked head flit in this shard and why it cannot
    /// progress.
    pub(crate) fn dump_blocked(&self, plan: &EnginePlan<'_>, now: u64) {
        self.dump_waitfor_cycle(plan, now);
        let vcs = plan.cfg.vcs;
        let mut lines = 0;
        for (node, st) in self.nodes.iter().enumerate() {
            let base = self.ctl[node].vc_base as usize;
            for idx in 0..st.in_ports() * vcs {
                let slot = base + idx;
                let Some(head) = self.front_flit(slot) else {
                    continue;
                };
                let in_port = idx / vcs;
                let in_vc = idx % vcs;
                let m = self.slot_meta[slot];
                let out_port = meta::out_port(m);
                let reason = match meta::tag(m) {
                    meta::IDLE => "idle (RC pending)".to_string(),
                    meta::ROUTED => {
                        let holders: Vec<String> = (0..vcs)
                            .map(|v| match self.holder_of(node, out_port, v) {
                                None => format!("vc{v}:free"),
                                Some((ip, iv)) => format!("vc{v}:held({ip},{iv})"),
                            })
                            .collect();
                        format!("awaiting VA on out{} [{}]", out_port, holders.join(" "))
                    }
                    _ => {
                        let out_vc = meta::out_vc(m);
                        if out_port == 0 {
                            "active->eject".to_string()
                        } else {
                            let lid = st.out_links[out_port - 1];
                            format!(
                                "active out{} vc{} credits={} ready={}",
                                out_port,
                                out_vc,
                                self.credits[lid.index() * vcs + out_vc].peek(now),
                                head.ready
                            )
                        }
                    }
                };
                eprintln!(
                    "cycle {now} node {} in{in_port}.vc{in_vc} q={} pkt{} class={:?} dst={} {}",
                    st.node.0,
                    meta::len(m),
                    head.packet,
                    self.class_of[head.packet as usize],
                    head.dst.0,
                    reason
                );
                lines += 1;
                if lines > 60 {
                    eprintln!("... (truncated)");
                    return;
                }
            }
        }
    }
}

// ---- workloads ----------------------------------------------------------

/// Precomputed per-node injection rates and destination CDFs of a
/// synthetic run (prefix-sum tables, binary-searched per draw).
pub(crate) struct InjectTables {
    rates: Vec<f64>,
    cdf_acc: Vec<Vec<f64>>,
    cdf_dst: Vec<Vec<NodeId>>,
}

impl InjectTables {
    pub fn new(topo: &Topology, matrix: &TrafficMatrix) -> Self {
        assert_eq!(matrix.num_nodes(), topo.num_nodes());
        let n = topo.num_nodes();
        let mut rates = Vec::with_capacity(n);
        let mut cdf_acc: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut cdf_dst: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for src in topo.nodes() {
            let rate = matrix.injection_rate(src);
            let mut acc_col = Vec::new();
            let mut dst_col = Vec::new();
            if rate > 0.0 {
                let mut acc = 0.0;
                for dst in topo.nodes() {
                    let r = matrix.rate(src, dst);
                    if r > 0.0 {
                        acc += r / rate;
                        acc_col.push(acc);
                        dst_col.push(dst);
                    }
                }
            }
            rates.push(rate);
            cdf_acc.push(acc_col);
            cdf_dst.push(dst_col);
        }
        InjectTables {
            rates,
            cdf_acc,
            cdf_dst,
        }
    }

    /// Replays one cycle of the Bernoulli injection stream. **Every**
    /// worker calls this with an identically-seeded RNG and consumes the
    /// exact same draw sequence — `admit` is invoked for every injected
    /// packet and the callee decides whether it owns the source. This is
    /// what keeps P-shard injection bit-for-bit identical to P=1.
    ///
    /// `factors` is the cycle's per-node burst modulation
    /// ([`BurstState::factors_at`]): the gate fires with probability
    /// `rate × factor`. The steady factor is exactly 1.0 and `x * 1.0`
    /// is bit-exact in IEEE 754, so steady runs reproduce the unmodulated
    /// stream. A node's draw happens whenever its *rate* is nonzero —
    /// independent of the factor (even an OFF factor of 0 draws, it just
    /// never fires) — so the RNG stream position is burst-invariant and
    /// snapshot splices across spec changes stay well-formed.
    pub fn inject_cycle(
        &self,
        rng: &mut StdRng,
        now: u64,
        warmup: u64,
        factors: &[f64],
        mut admit: impl FnMut(NodeId, NodeId, u64),
    ) {
        for (src, (&rate, &factor)) in self.rates.iter().zip(factors).enumerate() {
            if rate > 0.0 && rng.gen::<f64>() < rate * factor {
                let u: f64 = rng.gen();
                // First entry with acc ≥ u (prefix sums are
                // nondecreasing); the last entry backstops floating-point
                // shortfall at u ≈ 1.
                let i = self.cdf_acc[src].partition_point(|&acc| acc < u);
                let dst = *self.cdf_dst[src]
                    .get(i)
                    .unwrap_or_else(|| self.cdf_dst[src].last().expect("nonempty cdf"));
                if dst == NodeId(src as u16) {
                    continue;
                }
                let measured = now >= warmup;
                // Unmeasured packets are marked by u64::MAX and skipped in
                // `record`.
                let inject_cycle = if measured { now } else { u64::MAX };
                admit(NodeId(src as u16), dst, inject_cycle);
            }
        }
    }
}

/// One run's traffic source, shared read-only across workers.
#[derive(Clone, Copy)]
pub(crate) enum Workload<'w> {
    /// Trace-driven admission.
    Trace(&'w Trace),
    /// Bernoulli synthetic injection (1-flit packets).
    Synthetic {
        tables: &'w InjectTables,
        warmup: u64,
        measure: u64,
        seed: u64,
    },
}

// ---- the lockstep worker loop ------------------------------------------

/// The run loop's resumable position: everything the loop itself owns
/// (shard state is carried separately). Snapshots serialize this verbatim
/// so a restored run continues the exact admission stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RunCursor {
    /// Next cycle to simulate.
    pub now: u64,
    /// Next unadmitted trace-event index (trace workloads).
    pub next_event: u64,
    /// Synthetic-injection RNG state (xoshiro256**).
    pub rng: [u64; 4],
}

impl RunCursor {
    /// Start-of-run cursor for a trace workload. Traces draw no random
    /// numbers; the RNG field is a fixed placeholder stream.
    pub fn fresh_for_trace() -> Self {
        RunCursor {
            now: 0,
            next_event: 0,
            rng: StdRng::seed_from_u64(0).state(),
        }
    }

    /// Start-of-run cursor for a synthetic workload seeded with `seed`.
    pub fn fresh_for_synthetic(seed: u64) -> Self {
        RunCursor {
            now: 0,
            next_event: 0,
            rng: StdRng::seed_from_u64(seed).state(),
        }
    }

    /// The start-of-run cursor for the given workload.
    pub fn fresh(workload: &Workload<'_>) -> Self {
        match workload {
            Workload::Synthetic { seed, .. } => Self::fresh_for_synthetic(*seed),
            Workload::Trace(_) => Self::fresh_for_trace(),
        }
    }
}

/// How a bounded run ended: the workload drained, or the stop cycle was
/// reached first (resume from the carried cursor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunEnd {
    /// Everything delivered; the value is the final cycle count.
    Done(u64),
    /// `stop_at` reached with work outstanding.
    Stopped(RunCursor),
}

/// Worker-local phase-time accumulator that flushes into the shared
/// [`ProfileSink`] on every exit path (pause, drain, cycle-limit error)
/// via `Drop`.
struct ProfFlush<'a> {
    sink: Option<&'a ProfileSink>,
    step_ns: u64,
    exchange_ns: u64,
    barrier_ns: u64,
    supersteps: u64,
}

impl Drop for ProfFlush<'_> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.add(
                self.step_ns,
                self.exchange_ns,
                self.barrier_ns,
                self.supersteps,
            );
        }
    }
}

/// Nanoseconds since `*mark`, advancing the mark; 0 when unset
/// (profiling off — no `Instant` is ever taken).
#[inline]
fn lap(mark: &mut Option<std::time::Instant>) -> u64 {
    match mark {
        Some(prev) => {
            let t = std::time::Instant::now();
            let d = t.duration_since(*prev).as_nanos() as u64;
            *mark = Some(t);
            d
        }
        None => 0,
    }
}

/// Runs `my` (this worker's shards) from `start` until the workload
/// drains or `stop_at` is reached, in lockstep with the other workers.
/// Every control decision is derived from data identical across workers,
/// so all workers step/jump/stop on the same cycles.
///
/// The probe observes this worker's shards only; probed runs are
/// single-worker (see [`run_sharded_until_probed`]) so one probe sees
/// everything. `prof`, when set, receives this worker's superstep phase
/// times (step / exchange / barrier) on exit.
#[allow(clippy::too_many_arguments)]
fn worker_loop<P: Probe>(
    plan: &EnginePlan<'_>,
    shared: &Shared,
    my: &mut [ShardState],
    workload: Workload<'_>,
    dump_on_stall: bool,
    worker_index: usize,
    start: RunCursor,
    stop_at: u64,
    probe: &mut P,
    prof: Option<&ProfileSink>,
) -> Result<RunEnd, SimError> {
    let mut acc = ProfFlush {
        sink: prof,
        step_ns: 0,
        exchange_ns: 0,
        barrier_ns: 0,
        supersteps: 0,
    };
    // Shard-id → index into `my` (MAX = not mine).
    let mut mine = vec![usize::MAX; plan.partition.num_shards()];
    for (i, s) in my.iter().enumerate() {
        mine[s.id] = i;
    }
    let mut now = start.now;
    let mut next_event = start.next_event as usize; // full-trace cursor
    let mut rng = StdRng::from_state(start.rng);
    // Burst factors are a pure function of (workload seed, node, cycle),
    // so the cache needs no snapshotting and is valid from any resume
    // point. Traces carry their own timing — steady placeholder.
    let mut burst = match workload {
        Workload::Synthetic { seed, .. } => {
            BurstState::new(plan.cfg.burst, seed, plan.topo.num_nodes())
        }
        Workload::Trace(_) => BurstState::steady(),
    };
    loop {
        // --- bounded-run stop (lockstep: same cycle on every worker) ---
        if now >= stop_at {
            return Ok(RunEnd::Stopped(RunCursor {
                now,
                next_event: next_event as u64,
                rng: rng.state(),
            }));
        }
        // --- admission (identical sequence on every worker) ---
        let mut must_step = false;
        match workload {
            Workload::Trace(trace) => {
                while next_event < trace.events.len() && trace.events[next_event].cycle <= now {
                    let e = &trace.events[next_event];
                    next_event += 1;
                    let shard = usize::from(plan.partition.shard_of_node[e.src.index()]);
                    // Faulted topologies: traffic to or from a dead router
                    // has no route — dropped at admission (owner counts
                    // it), activating nothing, so fast-forward stays legal.
                    if !plan.routes.reachable(e.src, e.dst) {
                        if mine[shard] != usize::MAX {
                            my[mine[shard]].stats.unreachable_pairs += 1;
                            if P::ENABLED {
                                probe.on_stall(StallCause::NoRoute, e.src, now);
                            }
                        }
                        continue;
                    }
                    // Any admission (even to another worker's shard)
                    // activates some shard, so nobody may fast-forward.
                    must_step = true;
                    if mine[shard] != usize::MAX {
                        my[mine[shard]].admit(plan, e.src, e.dst, e.flits, e.cycle);
                    }
                }
            }
            Workload::Synthetic {
                tables,
                warmup,
                measure,
                ..
            } => {
                if now < warmup + measure {
                    // The injection window always steps, like P=1.
                    must_step = true;
                    let factors = burst.factors_at(now);
                    tables.inject_cycle(
                        &mut rng,
                        now,
                        warmup,
                        factors,
                        |src, dst, inject_cycle| {
                            let shard = usize::from(plan.partition.shard_of_node[src.index()]);
                            if mine[shard] == usize::MAX {
                                return;
                            }
                            // The RNG draws already happened identically on
                            // every worker; dropping here keeps the sequence.
                            if !plan.routes.reachable(src, dst) {
                                my[mine[shard]].stats.unreachable_pairs += 1;
                                if P::ENABLED {
                                    probe.on_stall(StallCause::NoRoute, src, now);
                                }
                                return;
                            }
                            my[mine[shard]].admit(plan, src, dst, 1, inject_cycle);
                        },
                    );
                }
            }
        }

        // --- idle fast-forward / termination (lockstep decision) ---
        if !must_step {
            let busy_now = my.iter().any(|s| !s.quiescent());
            let others_busy = shared
                .published
                .iter()
                .enumerate()
                .any(|(i, p)| i != worker_index && p.active.load(Ordering::Acquire));
            if !busy_now && !others_busy {
                // No router anywhere can act this cycle: fast-forward to
                // the next timeline event — a booked link arrival (any
                // shard) or the next trace admission.
                let next_arrival = shared
                    .published
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        if i == worker_index {
                            my.iter()
                                .filter_map(|s| s.next_arrival_cycle(now))
                                .min()
                                .unwrap_or(u64::MAX)
                        } else {
                            p.next_arrival.load(Ordering::Acquire)
                        }
                    })
                    .min()
                    .unwrap_or(u64::MAX);
                let next_admission = match workload {
                    Workload::Trace(trace) => trace.events.get(next_event).map(|e| e.cycle),
                    Workload::Synthetic { .. } => None, // injection window over
                };
                let target = match (next_arrival, next_admission) {
                    (u64::MAX, None) => break, // drained, source exhausted
                    (u64::MAX, Some(t)) => t,
                    (a, None) => a,
                    (a, Some(t)) => a.min(t),
                };
                // A bounded run never jumps past its stop cycle — the
                // loop-top check turns the landing into a clean pause.
                let target = target.min(stop_at);
                if target > now {
                    now = target;
                    continue; // re-run admission at the new cycle
                }
            }
        }

        // --- superstep: step phase ---
        let mut mark = acc.sink.map(|_| std::time::Instant::now());
        for s in my.iter_mut() {
            s.step_probed(plan, now, probe);
        }
        acc.step_ns += lap(&mut mark);
        if plan.partition.num_shards() > 1 {
            for s in my.iter_mut() {
                s.post_outboxes(shared);
            }
            acc.exchange_ns += lap(&mut mark);
            shared.barrier.wait();
            acc.barrier_ns += lap(&mut mark);
            // --- superstep: exchange phase ---
            for s in my.iter_mut() {
                s.collect_inboxes(plan, shared, now, false, probe);
            }
        }
        // Publish post-step activity for next cycle's lockstep decision.
        let active = my.iter().any(|s| !s.quiescent());
        shared.published[worker_index]
            .active
            .store(active, Ordering::Release);
        if !active {
            let arr = my
                .iter()
                .filter_map(|s| s.next_arrival_cycle(now + 1))
                .min()
                .unwrap_or(u64::MAX);
            shared.published[worker_index]
                .next_arrival
                .store(arr, Ordering::Release);
        }
        if P::ENABLED {
            for s in my.iter() {
                probe.on_cycle_end(EngineView { state: s, plan }, now);
            }
        }
        acc.exchange_ns += lap(&mut mark);
        if plan.partition.num_shards() > 1 {
            shared.barrier.wait();
            acc.barrier_ns += lap(&mut mark);
        }
        acc.supersteps += 1;

        now += 1;
        if now > plan.cfg.max_cycles {
            if dump_on_stall {
                for s in my.iter() {
                    s.dump_blocked(plan, now);
                }
            }
            // Origins and completions accumulate separately: a shard that
            // mostly *receives* traffic completes more packets than it
            // originates, so per-shard differences can be negative; the
            // global difference equals the P=1 stuck-packet count.
            let origins: u64 = my.iter().map(|s| s.origin_packets).sum();
            let completed: u64 = my.iter().map(|s| s.completed_packets).sum();
            shared.stuck_origins.fetch_add(origins, Ordering::SeqCst);
            shared
                .stuck_completed
                .fetch_add(completed, Ordering::SeqCst);
            if plan.partition.num_shards() > 1 {
                shared.barrier.wait();
            }
            return Err(SimError::CycleLimit {
                stuck_packets: shared.stuck_origins.load(Ordering::SeqCst)
                    - shared.stuck_completed.load(Ordering::SeqCst),
            });
        }
    }
    Ok(RunEnd::Done(now))
}

/// [`worker_loop`] under conservative lookahead: supersteps cover
/// windows of up to `plan.lookahead` (= W) cycles instead of one.
///
/// Soundness rests on three facts (see `docs/ARCHITECTURE.md`,
/// "Conservative lookahead"):
///
/// * **Flits**: a boundary flit sent at any cycle of window `[T, T+W)`
///   travels a link of latency ≥ W, so it arrives ≥ T+W — always
///   bookable at the inter-round exchange before its receiver executes
///   the next window.
/// * **Credits**: arbitration only ever compares a boundary credit cell
///   against zero, and takes at most one credit per cell per cycle.
///   Missed remote frees under-count, never over-count, so a non-zero
///   reading is exact. A *zero* reading beyond the visibility frontier
///   (the minimum shard progress at the last exchange) may be stale —
///   the shard stops its round there and retries after the next
///   exchange, when ripened credits or a grown frontier resolve it.
///   The minimum-progress shard is always at its own frontier, so every
///   round advances the global state: worst case degrades to the
///   per-cycle protocol, never past it.
/// * **Consensus**: termination and idle fast-forward decisions move to
///   window boundaries, where every worker sees barrier-fresh published
///   state. Each worker tracks the cycle the per-cycle protocol would
///   rest at (`candidate`: past every executed cycle, onto every real
///   idle-jump target); a drained run ends at the maximum over workers
///   — bit-equal to the classic `RunEnd::Done` cycle.
///
/// Closed-loop configs force `plan.lookahead == 1` (their source
/// credits need next-cycle global visibility) and probed runs keep the
/// per-cycle loop (probes observe every cycle in order), so this loop
/// never runs for either.
#[allow(clippy::too_many_arguments)]
fn worker_loop_windowed(
    plan: &EnginePlan<'_>,
    shared: &Shared,
    my: &mut [ShardState],
    workload: Workload<'_>,
    dump_on_stall: bool,
    worker_index: usize,
    start: RunCursor,
    stop_at: u64,
    prof: Option<&ProfileSink>,
) -> Result<RunEnd, SimError> {
    let mut acc = ProfFlush {
        sink: prof,
        step_ns: 0,
        exchange_ns: 0,
        barrier_ns: 0,
        supersteps: 0,
    };
    // Shard-id → index into `my` (MAX = not mine).
    let mut mine = vec![usize::MAX; plan.partition.num_shards()];
    for (i, s) in my.iter().enumerate() {
        mine[s.id] = i;
    }
    let probe = &mut NoopProbe;
    let window = plan.lookahead;
    debug_assert!(window > 1, "windowed loop needs a lookahead window");
    let mut next_event = start.next_event as usize; // full-trace cursor
    let mut rng = StdRng::from_state(start.rng);
    // Pure per-(seed, node, cycle) factors: valid from any window start.
    let mut burst = match workload {
        Workload::Synthetic { seed, .. } => {
            BurstState::new(plan.cfg.burst, seed, plan.topo.num_nodes())
        }
        Workload::Trace(_) => BurstState::steady(),
    };
    // Cycles before this force-step (and draw the per-cycle synthetic
    // RNG); traces have no forced window.
    let inject_end = match workload {
        Workload::Synthetic {
            warmup, measure, ..
        } => warmup + measure,
        Workload::Trace(_) => 0,
    };
    // The cycle the per-cycle protocol would rest at were everything
    // else drained: bumped past every executed cycle and onto every
    // real (not window-clamped) idle-jump target.
    let mut candidate = start.now;
    // Credit-visibility frontier: minimum shard progress at the last
    // exchange. Cycles ≤ frontier see every remote free exactly.
    let mut frontier = start.now;
    let mut t = start.now; // current window start (identical across workers)
    let mut u = start.now; // this worker's cycle within the window
    let mut ran_window = false;
    loop {
        // ---- window boundary: every shard is at `t` and the last
        // round's published state is barrier-fresh ----
        let done = shared
            .done_at
            .iter()
            .map(|d| d.load(Ordering::Acquire))
            .max()
            .unwrap_or(u64::MAX);
        if done != u64::MAX {
            // Every worker drained and exhausted its workload. All
            // resting cycles are ≤ stop_at, so a resting point below it
            // is a genuine drain; otherwise the per-cycle protocol
            // would have paused at stop_at first.
            if done < stop_at {
                return Ok(RunEnd::Done(done));
            }
            return Ok(RunEnd::Stopped(RunCursor {
                now: stop_at,
                next_event: next_event as u64,
                rng: rng.state(),
            }));
        }
        if t >= stop_at {
            return Ok(RunEnd::Stopped(RunCursor {
                now: t,
                next_event: next_event as u64,
                rng: rng.state(),
            }));
        }
        if ran_window && t > plan.cfg.max_cycles {
            // Same error protocol as the per-cycle loop (which checks
            // after every executed cycle; windows clamp at
            // `max_cycles + 1`, so `t` lands exactly there).
            if dump_on_stall {
                for s in my.iter() {
                    s.dump_blocked(plan, t);
                }
            }
            let origins: u64 = my.iter().map(|s| s.origin_packets).sum();
            let completed: u64 = my.iter().map(|s| s.completed_packets).sum();
            shared.stuck_origins.fetch_add(origins, Ordering::SeqCst);
            shared
                .stuck_completed
                .fetch_add(completed, Ordering::SeqCst);
            shared.barrier.wait();
            return Err(SimError::CycleLimit {
                stuck_packets: shared.stuck_origins.load(Ordering::SeqCst)
                    - shared.stuck_completed.load(Ordering::SeqCst),
            });
        }
        // Global idle fast-forward: everyone quiescent — jump the whole
        // window frame to the next booked arrival or admission. Every
        // worker computes the same target from published data and its
        // own (identical) admission cursor.
        if shared
            .published
            .iter()
            .all(|p| !p.active.load(Ordering::Acquire))
        {
            let next_arrival = shared
                .published
                .iter()
                .map(|p| p.next_arrival.load(Ordering::Acquire))
                .min()
                .unwrap_or(u64::MAX);
            let next_admission = match workload {
                Workload::Trace(trace) => trace.events.get(next_event).map(|e| e.cycle),
                Workload::Synthetic { .. } => (t < inject_end).then_some(t),
            };
            let target = match (next_arrival, next_admission) {
                // Fully drained *and* exhausted is settled by the
                // `done_at` consensus above once a round has published
                // it; until then, run the (no-op) round below.
                (u64::MAX, None) => None,
                (u64::MAX, Some(c)) => Some(c),
                (a, None) => Some(a),
                (a, Some(c)) => Some(a.min(c)),
            };
            if let Some(target) = target {
                let target = target.min(stop_at);
                if target > t {
                    // The skipped cycles are provably no-ops everywhere
                    // (nothing buffered, booked, or admissible), so the
                    // frontier rides along.
                    candidate = target;
                    t = target;
                    u = target;
                    frontier = target;
                    continue;
                }
            }
        }
        // ---- one window: rounds of up-to-W cycles ----
        let end = (t + window)
            .min(stop_at)
            .min((plan.cfg.max_cycles + 1).max(t + 1));
        ran_window = true;
        loop {
            // -- run [u, end), as far as credit visibility allows --
            let mut mark = acc.sink.map(|_| std::time::Instant::now());
            'cycles: while u < end {
                for s in my.iter_mut() {
                    s.apply_ripe_credits(u);
                }
                // Staleness pre-check, before admission so a stopped
                // round re-admits nothing (and re-draws no RNG) when it
                // retries this cycle. Admission cannot make a flit
                // consult a boundary credit in the same cycle (a fresh
                // emission's ready stamp is beyond `u`), so checking
                // first covers everything arbitration will read.
                if u > frontier && !my.iter().all(|s| s.lookahead_safe(u)) {
                    break 'cycles;
                }
                // Admission at `u` — the same global stream every
                // worker replays, cycle for cycle.
                let mut must_step = false;
                match workload {
                    Workload::Trace(trace) => {
                        while next_event < trace.events.len() && trace.events[next_event].cycle <= u
                        {
                            let e = &trace.events[next_event];
                            next_event += 1;
                            let shard = usize::from(plan.partition.shard_of_node[e.src.index()]);
                            if !plan.routes.reachable(e.src, e.dst) {
                                if mine[shard] != usize::MAX {
                                    my[mine[shard]].stats.unreachable_pairs += 1;
                                }
                                continue;
                            }
                            must_step = true;
                            if mine[shard] != usize::MAX {
                                my[mine[shard]].admit(plan, e.src, e.dst, e.flits, e.cycle);
                            }
                        }
                    }
                    Workload::Synthetic { tables, warmup, .. } => {
                        if u < inject_end {
                            must_step = true;
                            let factors = burst.factors_at(u);
                            tables.inject_cycle(
                                &mut rng,
                                u,
                                warmup,
                                factors,
                                |src, dst, inject_cycle| {
                                    let shard =
                                        usize::from(plan.partition.shard_of_node[src.index()]);
                                    if mine[shard] == usize::MAX {
                                        return;
                                    }
                                    if !plan.routes.reachable(src, dst) {
                                        my[mine[shard]].stats.unreachable_pairs += 1;
                                        return;
                                    }
                                    my[mine[shard]].admit(plan, src, dst, 1, inject_cycle);
                                },
                            );
                        }
                    }
                }
                // Local idle jump: cycles this worker provably no-ops
                // through (no admission, no buffered work, no booked
                // arrival) are skipped without consensus — foreign mail
                // cannot land before the window ends.
                if !must_step && my.iter().all(|s| s.quiescent()) {
                    let own_arrival = my
                        .iter()
                        .filter_map(|s| s.next_arrival_cycle(u))
                        .min()
                        .unwrap_or(u64::MAX);
                    let next_evt = match workload {
                        Workload::Trace(trace) => {
                            trace.events.get(next_event).map_or(u64::MAX, |e| e.cycle)
                        }
                        Workload::Synthetic { .. } => u64::MAX, // injection over
                    };
                    let real = own_arrival.min(next_evt);
                    if real > u {
                        if real <= end {
                            // A real timeline position the per-cycle
                            // protocol would also land on; a clamp to
                            // `end` is a window artifact and is not a
                            // resting point.
                            candidate = real;
                        }
                        u = real.min(end);
                        continue 'cycles;
                    }
                }
                for s in my.iter_mut() {
                    s.step_probed(plan, u, probe);
                }
                u += 1;
                candidate = u;
            }
            acc.step_ns += lap(&mut mark);
            // -- exchange: post, sync, collect, publish --
            for s in my.iter_mut() {
                s.post_outboxes(shared);
            }
            for s in my.iter() {
                shared.progress[s.id].store(u, Ordering::Release);
            }
            acc.exchange_ns += lap(&mut mark);
            shared.barrier.wait();
            acc.barrier_ns += lap(&mut mark);
            for s in my.iter_mut() {
                s.collect_inboxes(plan, shared, u, true, probe);
            }
            // Post-collect lockstep data. Deadness is evaluated after
            // the mail landed, so any in-flight flit keeps some worker
            // live and the drain consensus can never fire early.
            let active = my.iter().any(|s| !s.quiescent());
            shared.published[worker_index]
                .active
                .store(active, Ordering::Release);
            let arr = my
                .iter()
                .filter_map(|s| s.next_arrival_cycle(u))
                .min()
                .unwrap_or(u64::MAX);
            shared.published[worker_index]
                .next_arrival
                .store(arr, Ordering::Release);
            let exhausted = match workload {
                Workload::Trace(trace) => next_event >= trace.events.len(),
                Workload::Synthetic { .. } => u >= inject_end,
            };
            let dead = !active && arr == u64::MAX && exhausted;
            shared.done_at[worker_index]
                .store(if dead { candidate } else { u64::MAX }, Ordering::Release);
            // Frontier and window consensus from the published progress
            // (stored before the exchange barrier, so the reads below
            // are the same on every worker).
            let minp = shared
                .progress
                .iter()
                .map(|p| p.load(Ordering::Acquire))
                .min()
                .unwrap_or(u);
            frontier = minp;
            acc.exchange_ns += lap(&mut mark);
            shared.barrier.wait();
            acc.barrier_ns += lap(&mut mark);
            acc.supersteps += 1;
            if minp >= end {
                break;
            }
        }
        debug_assert_eq!(u, end, "window completed with a lagging shard");
        t = end;
    }
}

/// Runs a workload over `shards` from `start` until it drains or
/// `stop_at` is reached, with up to `threads` worker threads.
/// `threads == 1` runs everything on the calling thread (still
/// exchanging through the mailbox grid when P > 1 — the protocol is
/// identical, only the parallelism differs). The shards are left in
/// their end-of-run state so the caller can snapshot or merge them.
pub(crate) fn run_sharded_until(
    plan: &EnginePlan<'_>,
    shards: &mut [ShardState],
    threads: usize,
    workload: Workload<'_>,
    dump_on_stall: bool,
    start: RunCursor,
    stop_at: u64,
) -> Result<RunEnd, SimError> {
    run_sharded_until_probed(
        plan,
        shards,
        threads,
        workload,
        dump_on_stall,
        start,
        stop_at,
        &mut NoopProbe,
        None,
    )
}

/// [`run_sharded_until`] with telemetry attached. A run with a real
/// probe (`P::ENABLED`) is forced single-worker so one probe instance
/// observes every shard of every cycle — statistics are bit-for-bit
/// independent of the worker count, so this only affects wall clock.
/// `prof`, when set, collects superstep phase times from all workers
/// (profiling uses atomics, so it composes with threading).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded_until_probed<P: Probe>(
    plan: &EnginePlan<'_>,
    shards: &mut [ShardState],
    threads: usize,
    workload: Workload<'_>,
    dump_on_stall: bool,
    start: RunCursor,
    stop_at: u64,
    probe: &mut P,
    prof: Option<&ProfileSink>,
) -> Result<RunEnd, SimError> {
    let nshards = shards.len();
    let workers = if P::ENABLED {
        1
    } else {
        threads.clamp(1, nshards)
    };
    // Acceptance window for `SimStats::accepted_flits`: the measurement
    // window of a synthetic run, the whole run for traces.
    let (accept_from, accept_until) = match workload {
        Workload::Trace(_) => (0, u64::MAX),
        Workload::Synthetic {
            warmup, measure, ..
        } => (warmup, warmup + measure),
    };
    for s in shards.iter_mut() {
        s.accept_from = accept_from;
        s.accept_until = accept_until;
    }
    let shared = Shared::new(nshards, workers);
    // Contiguous chunks, sizes balanced to within one shard.
    let base = nshards / workers;
    let rem = nshards % workers;
    let mut rest = &mut shards[..];
    let mut chunks = Vec::with_capacity(workers);
    for w in 0..workers {
        let take = base + usize::from(w < rem);
        let (head, tail) = rest.split_at_mut(take);
        chunks.push(head);
        rest = tail;
    }
    // Publish pre-run activity. A resumed run starts with live shard
    // state, and the very first lockstep decision reads the other
    // workers' published flags — the default idle values would let a
    // worker fast-forward past a restored neighbor's booked arrivals.
    for (w, chunk) in chunks.iter().enumerate() {
        let active = chunk.iter().any(|s| !s.quiescent());
        shared.published[w].active.store(active, Ordering::Release);
        let arr = chunk
            .iter()
            .filter_map(|s| s.next_arrival_cycle(start.now))
            .min()
            .unwrap_or(u64::MAX);
        shared.published[w]
            .next_arrival
            .store(arr, Ordering::Release);
    }
    // Windowed supersteps need a multi-cycle window and cycle-exact
    // probes force the per-cycle loop (probes observe every cycle, in
    // order, including the exchange timing the windows amortize away).
    let windowed = plan.lookahead > 1 && nshards > 1 && !P::ENABLED;
    if workers == 1 {
        let chunk = chunks.pop().expect("one worker has one chunk");
        if windowed {
            worker_loop_windowed(
                plan,
                &shared,
                chunk,
                workload,
                dump_on_stall,
                0,
                start,
                stop_at,
                prof,
            )
        } else {
            worker_loop(
                plan,
                &shared,
                chunk,
                workload,
                dump_on_stall,
                0,
                start,
                stop_at,
                probe,
                prof,
            )
        }
    } else {
        debug_assert!(!P::ENABLED, "a probed run is single-worker");
        let shared_ref = &shared;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .enumerate()
                .map(|(w, chunk)| {
                    scope.spawn(move || {
                        if windowed {
                            worker_loop_windowed(
                                plan,
                                shared_ref,
                                chunk,
                                workload,
                                dump_on_stall,
                                w,
                                start,
                                stop_at,
                                prof,
                            )
                        } else {
                            worker_loop(
                                plan,
                                shared_ref,
                                chunk,
                                workload,
                                dump_on_stall,
                                w,
                                start,
                                stop_at,
                                &mut NoopProbe,
                                prof,
                            )
                        }
                    })
                })
                .collect();
            // Lockstep guarantees identical outcomes; keep the first.
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .reduce(|a, b| {
                    debug_assert_eq!(a, b, "workers diverged");
                    a
                })
                .expect("at least one worker")
        })
    }
}

/// Merges the per-shard statistics of a finished run.
pub(crate) fn merge_stats(plan: &EnginePlan<'_>, shards: &[ShardState], cycles: u64) -> SimStats {
    let mut merged = SimStats::new(plan.topo.links().len(), plan.topo.num_nodes());
    for s in shards {
        merged.absorb(&s.stats);
    }
    merged.cycles = cycles;
    merged
}

/// Runs a workload over `shards` to completion and merges the per-shard
/// statistics (the unbounded wrapper around [`run_sharded_until`]).
pub(crate) fn run_sharded(
    plan: &EnginePlan<'_>,
    shards: Vec<ShardState>,
    threads: usize,
    workload: Workload<'_>,
    dump_on_stall: bool,
) -> Result<SimStats, SimError> {
    run_sharded_probed(
        plan,
        shards,
        threads,
        workload,
        dump_on_stall,
        &mut NoopProbe,
        None,
    )
}

/// [`run_sharded`] with telemetry attached — see
/// [`run_sharded_until_probed`] for the probe and profiling contract.
pub(crate) fn run_sharded_probed<P: Probe>(
    plan: &EnginePlan<'_>,
    mut shards: Vec<ShardState>,
    threads: usize,
    workload: Workload<'_>,
    dump_on_stall: bool,
    probe: &mut P,
    prof: Option<&ProfileSink>,
) -> Result<SimStats, SimError> {
    let start = RunCursor::fresh(&workload);
    let end = run_sharded_until_probed(
        plan,
        &mut shards,
        threads,
        workload,
        dump_on_stall,
        start,
        u64::MAX,
        probe,
        prof,
    )?;
    let RunEnd::Done(cycles) = end else {
        unreachable!("an unbounded run cannot pause");
    };
    Ok(merge_stats(plan, &shards, cycles))
}

// ---- snapshot export / import ------------------------------------------

/// `VcClass` ↔ snapshot byte. The order matters: a packet's class only
/// ever moves forward (Free stays Free; PreExpress → PostExpress on the
/// first express traversal), so the canonical class of a packet split
/// across per-shard handles is the numeric maximum over its chain.
#[inline]
fn class_to_u8(c: VcClass) -> u8 {
    match c {
        VcClass::Free => 0,
        VcClass::PreExpress => 1,
        VcClass::PostExpress => 2,
    }
}

#[inline]
fn class_from_u8(v: u8) -> VcClass {
    match v {
        0 => VcClass::Free,
        1 => VcClass::PreExpress,
        _ => VcClass::PostExpress,
    }
}

/// Exports the complete logical state of a run at the cycle boundary
/// `cursor.now` (cycles `0..now` simulated, `now` not yet) into the
/// partition-independent [`GlobalState`].
///
/// Per-shard packet handles are resolved to global packets by chaining
/// each handle's provenance (`import_of`) back to its admission-minted
/// root; completed chains are dropped — they survive through the merged
/// statistics and the completion counters. The latency-1 wheel bypass is
/// undone: a buffered flit stamped `now + 1 + dwell` can only have been
/// pushed by the bypass during the last simulated cycle (normal
/// deliveries and emissions stamp at most `now + dwell`), so it is
/// exported as still in flight on its link with arrival cycle `now`,
/// which is exactly where a calendar-only engine would hold it.
pub(crate) fn export_shards(
    plan: &EnginePlan<'_>,
    shards: &[ShardState],
    cursor: &RunCursor,
) -> GlobalState {
    let now = cursor.now;
    let vcs = plan.cfg.vcs;
    let dwell = plan.cfg.pipeline_dwell();

    // --- resolve per-shard packet handles to global packets ---
    // Handle index = noff[shard] + shard-local pid.
    let mut noff = Vec::with_capacity(shards.len());
    let mut total = 0usize;
    for s in shards {
        noff.push(total);
        total += s.packets.len();
    }
    let mut parent = vec![u32::MAX; total];
    for (sid, s) in shards.iter().enumerate() {
        for (p, &(from, fpid)) in s.import_of.iter().enumerate() {
            if from != u16::MAX {
                parent[noff[sid] + p] = (noff[usize::from(from)] + fpid as usize) as u32;
            }
        }
    }
    let root_of = |mut h: usize| -> usize {
        while parent[h] != u32::MAX {
            h = parent[h] as usize;
        }
        h
    };
    // Aggregate per chain: ejections happen at exactly one handle (the
    // destination shard's) and the dateline class only moves forward, so
    // sum and max are the canonical global values.
    let mut agg_ejected = vec![0u32; total];
    let mut agg_class = vec![0u8; total];
    for (sid, s) in shards.iter().enumerate() {
        for p in 0..s.packets.len() {
            let r = root_of(noff[sid] + p);
            agg_ejected[r] += s.packets[p].ejected;
            agg_class[r] = agg_class[r].max(class_to_u8(s.class_of[p]));
        }
    }
    // Number the live roots in (shard, pid) scan order.
    let mut gpid_of = vec![u32::MAX; total];
    let mut packets = Vec::new();
    for (sid, s) in shards.iter().enumerate() {
        for (p, info) in s.packets.iter().enumerate() {
            let h = noff[sid] + p;
            if parent[h] != u32::MAX || agg_ejected[h] >= info.flits {
                continue; // segment handle, or a completed packet
            }
            gpid_of[h] = packets.len() as u32;
            packets.push(PacketImage {
                src: info.src.0,
                dst: info.dst.0,
                inject_cycle: info.inject_cycle,
                flits: info.flits,
                ejected: agg_ejected[h],
                class: agg_class[h],
            });
        }
    }
    // Propagate each root's number down its chain (roots map to
    // themselves; segments read their root's entry).
    for h in 0..total {
        gpid_of[h] = gpid_of[root_of(h)];
    }
    let map = |sid: usize, pid: u32| -> u32 {
        let g = gpid_of[noff[sid] + pid as usize];
        debug_assert_ne!(g, u32::MAX, "live state references a completed packet");
        g
    };

    // --- per-node images (with the wheel bypass stripped) ---
    let mut nodes = Vec::with_capacity(plan.topo.num_nodes());
    let mut stripped: Vec<(u32, EventImage)> = Vec::new();
    for g in 0..plan.topo.num_nodes() {
        let sid = usize::from(plan.partition.shard_of_node[g]);
        let s = &shards[sid];
        let local = plan.partition.local_of_node[g] as usize;
        let st = &s.nodes[local];
        let c = s.ctl[local];
        let base = c.vc_base as usize;
        let pb = c.port_base as usize;
        let in_ports = st.in_ports();
        let out_ports = st.out_ports();
        let mut slots = Vec::with_capacity(in_ports * vcs);
        for idx in 0..in_ports * vcs {
            let slot = base + idx;
            let m = s.slot_meta[slot];
            let len = meta::len(m);
            let head = meta::head(m);
            let mut queue = Vec::with_capacity(len);
            for k in 0..len {
                let f = s.flit_buf[slot * s.ring + ((head + k) & s.ring_mask)];
                queue.push(FlitImage {
                    packet: map(sid, f.packet),
                    dst: f.dst.0,
                    is_head: f.is_head,
                    is_tail: f.is_tail,
                    ready: f.ready,
                });
            }
            let in_port = idx / vcs;
            if in_port > 0 {
                if let Some(last) = queue.last() {
                    if last.ready == now + 1 + dwell {
                        // Latency-1 bypass push from the last simulated
                        // cycle: canonically still on the link.
                        let mut ev = queue.pop().expect("nonempty");
                        ev.ready = 0;
                        let lid = st.in_links[in_port - 1].index() as u32;
                        stripped.push((
                            lid,
                            EventImage {
                                arrive: now,
                                vc: (idx % vcs) as u8,
                                flit: ev,
                            },
                        ));
                    }
                }
            }
            slots.push(SlotImage {
                tag: meta::tag(m) as u8,
                out_port: meta::out_port(m) as u8,
                out_vc: meta::out_vc(m) as u8,
                active_pid: if meta::tag(m) == meta::ACTIVE {
                    map(sid, s.active_pid[slot])
                } else {
                    u32::MAX
                },
                queue,
            });
        }
        nodes.push(NodeImage {
            slots,
            src_queue: st.src_queue.iter().map(|&p| map(sid, p)).collect(),
            emitting: st.emitting.map(|em| EmissionImage {
                packet: map(sid, em.packet),
                emitted: em.emitted,
                total: em.total,
                vc: em.vc,
                dst: em.dst.0,
                inject_cycle: em.inject_cycle,
            }),
            outstanding: s.outstanding[local],
            va_rr: (0..out_ports).map(|p| u16::from(s.va_rr[pb + p])).collect(),
            sa_rr: (0..out_ports).map(|p| u16::from(s.sa_rr[pb + p])).collect(),
        });
    }

    // --- in-flight link events (wheel contents + stripped bypasses) ---
    let mut links: Vec<Vec<EventImage>> = vec![Vec::new(); plan.topo.links().len()];
    for (sid, s) in shards.iter().enumerate() {
        for (bucket, evs) in s.wheel.iter().enumerate() {
            if evs.is_empty() {
                continue;
            }
            // Arrivals live in [now, now + wheel_len); the bucket index
            // recovers the absolute cycle.
            let arrive = now
                + ((bucket as u64 + s.wheel.len() as u64 - (now & s.wheel_mask)) & s.wheel_mask);
            for &(lid, vc, f) in evs {
                links[lid as usize].push(EventImage {
                    arrive,
                    vc,
                    flit: FlitImage {
                        packet: map(sid, f.packet),
                        dst: f.dst.0,
                        is_head: f.is_head,
                        is_tail: f.is_tail,
                        ready: 0,
                    },
                });
            }
        }
    }
    for (lid, ev) in stripped {
        links[lid as usize].push(ev);
    }
    for evs in &mut links {
        evs.sort_by_key(|e| e.arrive);
        debug_assert!(
            evs.windows(2).all(|w| w[0].arrive < w[1].arrive),
            "two flits on one link with the same arrival cycle"
        );
    }

    GlobalState {
        now,
        next_event: cursor.next_event,
        rng: cursor.rng,
        accept_from: shards[0].accept_from,
        accept_until: shards[0].accept_until,
        origin_packets: shards.iter().map(|s| s.origin_packets).sum(),
        completed_packets: shards.iter().map(|s| s.completed_packets).sum(),
        vcs: vcs as u32,
        stats: merge_stats(plan, shards, now),
        packets,
        nodes,
        links,
    }
}

/// Serializes the state of a (possibly mid-run) sharded simulation under
/// the plan's fingerprint and the given workload fingerprint.
pub(crate) fn snapshot_shards(
    plan: &EnginePlan<'_>,
    shards: &[ShardState],
    cursor: &RunCursor,
    workload_hash: u64,
) -> Snapshot {
    let gs = export_shards(plan, shards, cursor);
    let plan_hash = crate::snapshot::plan_fingerprint(
        plan.topo,
        plan.routes,
        &plan.cfg,
        plan.baseline,
        plan.tenants,
    );
    Snapshot::encode(&gs, plan_hash, workload_hash)
}

/// Lazy per-(shard, global packet) handle minting during import. Each
/// shard that holds any piece of a packet gets exactly one local handle;
/// the handles are chained through `import_of` (in minting order) so a
/// later re-export resolves them back to one global packet.
struct Minter {
    /// `local_of[shard][gpid]`: the minted local pid, `u32::MAX` if none.
    local_of: Vec<Vec<u32>>,
    /// Chain tail per global packet (`u16::MAX` = no handle yet).
    last: Vec<(u16, u32)>,
    /// Shard owning each packet's destination node — the one handle that
    /// carries the ejection count (counting it anywhere else would
    /// double-count on re-export).
    dst_shard: Vec<u16>,
}

impl Minter {
    fn mint(&mut self, s: &mut ShardState, gs: &GlobalState, gpid: u32) -> u32 {
        let g = gpid as usize;
        let have = self.local_of[s.id][g];
        if have != u32::MAX {
            return have;
        }
        let img = &gs.packets[g];
        let pid = s.packets.len() as u32;
        s.packets.push(PacketInfo {
            src: NodeId(img.src),
            dst: NodeId(img.dst),
            inject_cycle: img.inject_cycle,
            flits: img.flits,
            ejected: if usize::from(self.dst_shard[g]) == s.id {
                img.ejected
            } else {
                0
            },
        });
        s.class_of.push(class_from_u8(img.class));
        s.import_of.push(self.last[g]);
        self.last[g] = (s.id as u16, pid);
        self.local_of[s.id][g] = pid;
        pid
    }
}

/// Rebuilds per-shard engine state from a decoded snapshot under `plan`
/// — whose partition may differ from the one the snapshot was taken
/// with. Returns the shards plus the run cursor to resume from.
///
/// Derived state (arbitration masks, work/src bitsets, the RC dirty
/// list, credit counters) is reconstructed from the logical image; see
/// `docs/SNAPSHOT_FORMAT.md` for why each reconstruction is
/// behaviorally identical to the live state it replaces.
pub(crate) fn import_shards(
    plan: &EnginePlan<'_>,
    gs: &GlobalState,
) -> Result<(Vec<ShardState>, RunCursor), SnapshotError> {
    let vcs = plan.cfg.vcs;
    let depth = plan.cfg.buffer_depth;
    if gs.vcs as usize != vcs
        || gs.nodes.len() != plan.topo.num_nodes()
        || gs.links.len() != plan.topo.links().len()
    {
        return Err(SnapshotError::Corrupt);
    }
    let nshards = plan.partition.num_shards();
    let mut shards: Vec<ShardState> = (0..nshards).map(|id| ShardState::new(plan, id)).collect();
    let mut minter = Minter {
        local_of: vec![vec![u32::MAX; gs.packets.len()]; nshards],
        last: vec![(u16::MAX, 0); gs.packets.len()],
        dst_shard: gs
            .packets
            .iter()
            .map(|p| plan.partition.shard_of_node[usize::from(p.dst)])
            .collect(),
    };

    // --- per-node state ---
    for (g, n) in gs.nodes.iter().enumerate() {
        let sid = usize::from(plan.partition.shard_of_node[g]);
        let s = &mut shards[sid];
        let local = plan.partition.local_of_node[g] as usize;
        let in_ports = s.nodes[local].in_ports();
        let out_ports = s.nodes[local].out_ports();
        if n.slots.len() != in_ports * vcs
            || n.va_rr.len() != out_ports
            || n.sa_rr.len() != out_ports
        {
            return Err(SnapshotError::Corrupt);
        }
        let base = s.ctl[local].vc_base as usize;
        let pb = s.ctl[local].port_base as usize;
        let mut buffered = 0u32;
        for (idx, img) in n.slots.iter().enumerate() {
            let slot = base + idx;
            let len = img.queue.len();
            if len > depth {
                return Err(SnapshotError::Corrupt);
            }
            // Invariants the arbitration stages rely on: a non-empty idle
            // or routed VC holds its packet's head flit at the front.
            if u32::from(img.tag) != meta::ACTIVE && len > 0 && !img.queue[0].is_head {
                return Err(SnapshotError::Corrupt);
            }
            if u32::from(img.tag) == meta::ROUTED && len == 0 {
                return Err(SnapshotError::Corrupt);
            }
            for (k, f) in img.queue.iter().enumerate() {
                let pid = minter.mint(s, gs, f.packet);
                s.flit_buf[slot * s.ring + k] = Flit {
                    packet: pid,
                    dst: NodeId(f.dst),
                    is_head: f.is_head,
                    is_tail: f.is_tail,
                    ready: f.ready,
                };
            }
            // Ring cursor normalized to head = 0.
            s.slot_meta[slot] = u32::from(img.tag)
                | (u32::from(img.out_port) << meta::PORT_SHIFT)
                | (u32::from(img.out_vc) << meta::OVC_SHIFT)
                | ((len as u32) * meta::LEN_ONE);
            buffered += len as u32;
            match u32::from(img.tag) {
                meta::ROUTED => {
                    let p = usize::from(img.out_port);
                    s.routed_mask[pb + p] |= 1 << idx;
                    s.ctl[local].routed_ports |= 1 << p;
                    s.ctl[local].routed_count += 1;
                }
                meta::ACTIVE => {
                    let p = usize::from(img.out_port);
                    s.active_mask[pb + p] |= 1 << idx;
                    s.ctl[local].active_ports |= 1 << p;
                    s.holder_mask[pb + p] |= 1 << img.out_vc;
                    let pid = minter.mint(s, gs, img.active_pid);
                    s.active_pid[slot] = pid;
                }
                _ => {
                    if len > 0 {
                        // Head awaiting route computation. The live
                        // dirty-list order is irrelevant: RC handles each
                        // slot independently.
                        s.rc_dirty.push(slot as u32);
                    }
                }
            }
        }
        s.ctl[local].buffered = buffered;
        if buffered > 0 {
            s.set_work(local);
        }
        for p in 0..out_ports {
            if usize::from(n.va_rr[p]) >= in_ports * vcs
                || usize::from(n.sa_rr[p]) >= in_ports * vcs
            {
                return Err(SnapshotError::Corrupt);
            }
            s.va_rr[pb + p] = n.va_rr[p] as u8;
            s.sa_rr[pb + p] = n.sa_rr[p] as u8;
        }
        for &gpid in &n.src_queue {
            let pid = minter.mint(s, gs, gpid);
            s.nodes[local].src_queue.push_back(pid);
        }
        s.pending_sources += n.src_queue.len() as u64;
        if let Some(em) = &n.emitting {
            let pid = minter.mint(s, gs, em.packet);
            s.nodes[local].emitting = Some(Emission {
                packet: pid,
                emitted: em.emitted,
                total: em.total,
                vc: em.vc,
                dst: NodeId(em.dst),
                inject_cycle: em.inject_cycle,
            });
            s.pending_sources += 1;
        }
        if s.nodes[local].emitting.is_some() || !s.nodes[local].src_queue.is_empty() {
            // May re-arm a source the live engine had parked; the extra
            // emission visit is a no-op that re-parks it (nothing that
            // would let it push can have happened since it parked).
            s.set_src(local);
        }
        s.outstanding[local] = n.outstanding;
        s.active_flits += i64::from(buffered);
    }

    // --- in-flight flits → calendar wheels ---
    for (lid, evs) in gs.links.iter().enumerate() {
        let sid = usize::from(plan.partition.link_dst_shard[lid]);
        let s = &mut shards[sid];
        for ev in evs {
            if ev.arrive - gs.now >= plan.wheel_len as u64 {
                return Err(SnapshotError::Corrupt);
            }
            let pid = minter.mint(s, gs, ev.flit.packet);
            s.wheel_push(
                ev.arrive,
                (
                    lid as u32,
                    ev.vc,
                    Flit {
                        packet: pid,
                        dst: NodeId(ev.flit.dst),
                        is_head: ev.flit.is_head,
                        is_tail: ev.flit.is_tail,
                        ready: 0,
                    },
                ),
            );
            s.active_flits += 1;
        }
    }

    // --- wormhole remap seeding ---
    // A slot mid-transmission (output VC granted, head already departed,
    // tail not yet) has flits of its packet still to cross its output
    // link. If that link is a shard cut under the *new* partition, the
    // receiving shard must already hold the remap entry the in-network
    // head would have minted on ingest.
    for (g, n) in gs.nodes.iter().enumerate() {
        let owner = usize::from(plan.partition.shard_of_node[g]);
        for img in &n.slots {
            if u32::from(img.tag) != meta::ACTIVE || img.out_port == 0 {
                continue;
            }
            let head_departed = match img.queue.first() {
                Some(f) => !f.is_head,
                None => true,
            };
            if !head_departed {
                continue;
            }
            let p = usize::from(img.out_port);
            let local = plan.partition.local_of_node[g] as usize;
            let lid = shards[owner].nodes[local].out_links[p - 1].index();
            let dst_shard = usize::from(plan.partition.link_dst_shard[lid]);
            if dst_shard == owner {
                continue; // intra-shard sends never consult the remap
            }
            let s = &mut shards[dst_shard];
            let pid = minter.mint(s, gs, img.active_pid);
            s.remap[lid * vcs + usize::from(img.out_vc)] = pid;
        }
    }

    // --- derived credit state ---
    // Spendable credits are fully determined by downstream occupancy:
    // depth − (in flight on the link) − (buffered in the destination
    // VC). A freshly-stamped cell (stamp 0, empty pending half) behaves
    // identically to the live cell from cycle `now` on: any access folds
    // the live cell's pending credits in (they were freed strictly
    // before `now`), landing on this same spendable count.
    for lid in 0..plan.topo.links().len() {
        let link = plan.topo.link(LinkId(lid as u32));
        let dst_node = &gs.nodes[link.dst.index()];
        let in_port = usize::from(plan.in_port_of_link[lid]);
        for v in 0..vcs {
            let on_link = gs.links[lid]
                .iter()
                .filter(|e| usize::from(e.vc) == v)
                .count();
            let occupied = on_link + dst_node.slots[in_port * vcs + v].queue.len();
            if occupied > depth {
                return Err(SnapshotError::Corrupt);
            }
            let cell = CreditCell {
                stamp: 0,
                avail: (depth - occupied) as u16,
                pending: 0,
            };
            for s in &mut shards {
                s.credits[lid * vcs + v] = cell;
            }
        }
    }

    // --- global counters, statistics, acceptance window ---
    // The merged history lands on shard 0; per-shard contributions from
    // here on re-merge to the continued-run totals (sums stay sums, peak
    // maxima stay maxima — a node's peaks accrue in exactly one shard).
    shards[0].stats = gs.stats.clone();
    shards[0].origin_packets = gs.origin_packets;
    shards[0].completed_packets = gs.completed_packets;
    for s in &mut shards {
        s.accept_from = gs.accept_from;
        s.accept_until = gs.accept_until;
    }
    Ok((
        shards,
        RunCursor {
            now: gs.now,
            next_event: gs.next_event,
            rng: gs.rng,
        },
    ))
}

// ---- public sharded simulator ------------------------------------------

/// A parallel simulator: the mesh partitioned into rectangular shards
/// advancing in cycle-synchronous supersteps. Produces [`SimStats`]
/// **bit-for-bit identical** to [`crate::Simulator`] (the P=1 case) on
/// every workload — see the module docs for the protocol and
/// `tests/shard_parity.rs` for the pins.
pub struct ShardedSimulator<'a> {
    plan: EnginePlan<'a>,
    shards: Vec<ShardState>,
    threads: usize,
}

impl<'a> ShardedSimulator<'a> {
    /// Builds a sharded simulator over `spec`'s tile grid. `routes` must
    /// have been computed for `topo` (use [`RoutingTable::compute_xy`]).
    pub fn new(
        topo: &'a Topology,
        routes: &'a RoutingTable,
        cfg: SimConfig,
        spec: ShardSpec,
    ) -> Self {
        let partition = Partition::new(topo, spec);
        let plan = EnginePlan::new(topo, routes, cfg, partition);
        let shards = (0..plan.partition.num_shards())
            .map(|id| ShardState::new(&plan, id))
            .collect();
        ShardedSimulator {
            plan,
            shards,
            threads: 0,
        }
    }

    /// Convenience constructor: a near-square grid of `shards` tiles
    /// (see [`ShardSpec::for_count`]).
    pub fn with_shard_count(
        topo: &'a Topology,
        routes: &'a RoutingTable,
        cfg: SimConfig,
        shards: usize,
    ) -> Self {
        Self::new(topo, routes, cfg, ShardSpec::for_count(shards))
    }

    /// Caps the worker-thread count. `0` (the default) runs one worker
    /// per shard; `1` runs the full superstep protocol on the calling
    /// thread (useful on small hosts — results are identical either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps the conservative-lookahead window. The plan derives the
    /// window from the cut's minimum boundary-link latency (and
    /// closed-loop configs pin it to 1); this can only *shrink* it — a
    /// window wider than the cut latency would not be conservative.
    /// `0` keeps the derived window; `1` forces per-cycle exchanges
    /// (the before-lookahead engine, useful for A/B profiling).
    pub fn with_lookahead(mut self, window: u64) -> Self {
        if window > 0 {
            self.plan.lookahead = self.plan.lookahead.min(window);
        }
        self
    }

    /// The conservative-lookahead window this simulator will use:
    /// cycles per superstep exchange (1 = classic per-cycle protocol).
    pub fn lookahead(&self) -> u64 {
        self.plan.lookahead
    }

    /// Installs the healthy-mesh baseline (topology + routes the faults
    /// were applied to) so admitted packets are charged
    /// [`SimStats::rerouted_hops`] for detours versus the healthy route.
    pub fn with_baseline(mut self, topo: &'a Topology, routes: &'a RoutingTable) -> Self {
        self.plan.set_baseline(topo, routes);
        self
    }

    /// Installs a node → tenant map: the run's [`SimStats`] then carries
    /// per-tenant lanes (see [`crate::TenantStats`]) split out of the
    /// aggregate, bit-for-bit identical to the single-engine run.
    pub fn with_tenants(mut self, map: &'a TenantMap) -> Self {
        self.plan.set_tenants(map);
        for s in &mut self.shards {
            s.stats.init_tenants(map.tenants);
        }
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Runs a trace to completion.
    pub fn run_trace(self, trace: &Trace) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let threads = self.effective_threads();
        run_sharded(
            &self.plan,
            self.shards,
            threads,
            Workload::Trace(trace),
            false,
        )
    }

    /// Runs Bernoulli-injected synthetic traffic; identical semantics
    /// (and, bit-for-bit, identical statistics) to
    /// [`crate::Simulator::run_synthetic`].
    pub fn run_synthetic(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        let tables = InjectTables::new(self.plan.topo, matrix);
        let threads = self.effective_threads();
        run_sharded(
            &self.plan,
            self.shards,
            threads,
            Workload::Synthetic {
                tables: &tables,
                warmup,
                measure,
                seed,
            },
            false,
        )
    }

    // ---- telemetry -------------------------------------------------------

    /// [`Self::run_trace`] with a telemetry probe attached (see
    /// [`crate::telemetry`]). Probed runs are single-worker so one probe
    /// instance observes every shard; the statistics are bit-for-bit
    /// those of the plain run (`tests/telemetry_parity.rs` pins this).
    pub fn run_trace_probed<P: Probe>(
        self,
        trace: &Trace,
        probe: &mut P,
    ) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let threads = self.effective_threads();
        run_sharded_probed(
            &self.plan,
            self.shards,
            threads,
            Workload::Trace(trace),
            false,
            probe,
            None,
        )
    }

    /// [`Self::run_synthetic`] with a telemetry probe attached — same
    /// contract as [`Self::run_trace_probed`].
    pub fn run_synthetic_probed<P: Probe>(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
        probe: &mut P,
    ) -> Result<SimStats, SimError> {
        let tables = InjectTables::new(self.plan.topo, matrix);
        let threads = self.effective_threads();
        run_sharded_probed(
            &self.plan,
            self.shards,
            threads,
            Workload::Synthetic {
                tables: &tables,
                warmup,
                measure,
                seed,
            },
            false,
            probe,
            None,
        )
    }

    /// [`Self::run_trace`] with engine self-profiling: returns the
    /// statistics plus the superstep phase-time breakdown (step vs.
    /// exchange vs. barrier wait). Profiling composes with
    /// multi-threaded runs (atomics, flushed per worker on exit).
    pub fn run_trace_profiled(self, trace: &Trace) -> Result<(SimStats, EngineProfile), SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let threads = self.effective_threads();
        let workers = threads.clamp(1, self.shards.len());
        let sink = ProfileSink::new();
        let stats = run_sharded_probed(
            &self.plan,
            self.shards,
            threads,
            Workload::Trace(trace),
            false,
            &mut NoopProbe,
            Some(&sink),
        )?;
        Ok((stats, sink.profile(workers)))
    }

    /// [`Self::run_synthetic`] with engine self-profiling — same
    /// contract as [`Self::run_trace_profiled`].
    pub fn run_synthetic_profiled(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<(SimStats, EngineProfile), SimError> {
        let tables = InjectTables::new(self.plan.topo, matrix);
        let threads = self.effective_threads();
        let workers = threads.clamp(1, self.shards.len());
        let sink = ProfileSink::new();
        let stats = run_sharded_probed(
            &self.plan,
            self.shards,
            threads,
            Workload::Synthetic {
                tables: &tables,
                warmup,
                measure,
                seed,
            },
            false,
            &mut NoopProbe,
            Some(&sink),
        )?;
        Ok((stats, sink.profile(workers)))
    }

    // ---- checkpoint / restore -------------------------------------------

    /// Serializes the engine state at the cycle boundary `now`. The
    /// snapshot is partition-independent: all P shards' state is merged
    /// into one global image, so it restores at any shard count
    /// (including P=1 via [`crate::Simulator::restore`]). Pins no
    /// workload; bounded runs ([`run_trace_until`](Self::run_trace_until))
    /// produce their own snapshots instead.
    pub fn snapshot(&self, now: u64) -> Snapshot {
        let cursor = RunCursor {
            now,
            next_event: 0,
            rng: StdRng::seed_from_u64(0).state(),
        };
        snapshot_shards(&self.plan, &self.shards, &cursor, 0)
    }

    /// Rebuilds this simulator's state from a snapshot, re-partitioning
    /// it across this simulator's shard grid — the snapshot may have
    /// been taken at any other shard count. Must match this simulator's
    /// topology, routing, and configuration (fingerprint-checked).
    pub fn restore(self, snap: &Snapshot) -> Result<Self, SimError> {
        let ShardedSimulator { plan, threads, .. } = self;
        let (shards, _) = restore_shards(&plan, snap, 0)?;
        Ok(ShardedSimulator {
            plan,
            shards,
            threads,
        })
    }

    /// Runs a trace, pausing at the cycle boundary `stop_at` if the
    /// workload hasn't drained by then; bit-for-bit semantics of
    /// [`crate::Simulator::run_trace_until`].
    pub fn run_trace_until(self, trace: &Trace, stop_at: u64) -> Result<RunOutcome, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let threads = self.effective_threads();
        let workload = Workload::Trace(trace);
        let start = RunCursor::fresh(&workload);
        finish_or_pause(
            &self.plan,
            self.shards,
            threads,
            workload,
            start,
            stop_at,
            || crate::snapshot::trace_fingerprint(trace),
        )
    }

    /// Resumes a paused trace run from `snap`, itself pausing again at
    /// `stop_at` if the trace hasn't drained (pass `u64::MAX` to run to
    /// completion). The snapshot may come from any engine at any shard
    /// count.
    pub fn resume_trace_until(
        self,
        snap: &Snapshot,
        trace: &Trace,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let threads = self.effective_threads();
        let (shards, mut cursor) =
            restore_shards(&self.plan, snap, crate::snapshot::trace_fingerprint(trace))?;
        if snap.workload_hash() == 0 {
            cursor.next_event = rescan_trace_cursor(trace, cursor.now);
        }
        finish_or_pause(
            &self.plan,
            shards,
            threads,
            Workload::Trace(trace),
            cursor,
            stop_at,
            || crate::snapshot::trace_fingerprint(trace),
        )
    }

    /// Resumes a paused trace run to completion.
    pub fn resume_trace(self, snap: &Snapshot, trace: &Trace) -> Result<SimStats, SimError> {
        Ok(self
            .resume_trace_until(snap, trace, u64::MAX)?
            .expect_finished())
    }

    /// Runs synthetic traffic, pausing at the cycle boundary `stop_at`
    /// if the run hasn't drained by then.
    pub fn run_synthetic_until(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        let threads = self.effective_threads();
        let tables = InjectTables::new(self.plan.topo, matrix);
        let workload = Workload::Synthetic {
            tables: &tables,
            warmup,
            measure,
            seed,
        };
        let start = RunCursor::fresh(&workload);
        finish_or_pause(
            &self.plan,
            self.shards,
            threads,
            workload,
            start,
            stop_at,
            || crate::snapshot::synthetic_fingerprint(warmup, measure, seed),
        )
    }

    /// Resumes a paused synthetic run to completion; same workload-
    /// fingerprint rules as [`crate::Simulator::resume_synthetic`] (the
    /// traffic matrix is deliberately not pinned, enabling warm-start
    /// rate sweeps).
    pub fn resume_synthetic(
        self,
        snap: &Snapshot,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        let threads = self.effective_threads();
        let tables = InjectTables::new(self.plan.topo, matrix);
        let (shards, cursor) = restore_shards(
            &self.plan,
            snap,
            crate::snapshot::synthetic_fingerprint(warmup, measure, seed),
        )?;
        let workload = Workload::Synthetic {
            tables: &tables,
            warmup,
            measure,
            seed,
        };
        Ok(finish_or_pause(
            &self.plan,
            shards,
            threads,
            workload,
            cursor,
            u64::MAX,
            || 0,
        )?
        .expect_finished())
    }

    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            self.shards.len()
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::{Gbps, LinkTechnology};
    use hyppi_topology::{express_mesh, mesh, ExpressSpec, MeshSpec};
    use hyppi_traffic::TraceEvent;

    fn small_mesh(w: u16, h: u16) -> Topology {
        mesh(MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        })
    }

    fn run_sharded_trace(
        topo: &Topology,
        spec: ShardSpec,
        threads: usize,
        events: Vec<TraceEvent>,
    ) -> SimStats {
        let routes = RoutingTable::compute_xy(topo);
        let trace = Trace::new("test", topo.num_nodes() as u16, 0.0, events);
        ShardedSimulator::new(topo, &routes, SimConfig::paper(), spec)
            .with_threads(threads)
            .run_trace(&trace)
            .expect("run completes")
    }

    #[test]
    fn boundary_crossing_preserves_zero_load_latency() {
        // 2×1 mesh split into two shards: the single hop crosses the
        // boundary, and the mailbox exchange must land the flit in the
        // same calendar bucket P=1 would use — 7 cycles exactly.
        let t = small_mesh(2, 1);
        for threads in [1, 2] {
            let stats = run_sharded_trace(
                &t,
                ShardSpec { sx: 2, sy: 1 },
                threads,
                vec![TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(1),
                    flits: 1,
                }],
            );
            assert_eq!(stats.all.count, 1, "threads {threads}");
            assert_eq!(stats.all.max, 7, "threads {threads}");
            assert_eq!(stats.flits_delivered, 1);
        }
    }

    #[test]
    fn wormhole_packet_reassembles_across_boundary() {
        // A 32-flit packet crossing a shard cut: the head mints the remap
        // handle and all body flits retag through it; serialization
        // latency must match the P=1 value (7 + 31).
        let t = small_mesh(4, 1);
        let stats = run_sharded_trace(
            &t,
            ShardSpec { sx: 2, sy: 1 },
            2,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(3),
                flits: 32,
            }],
        );
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.all.max, 15 + 31);
        assert_eq!(stats.flits_delivered, 32);
    }

    #[test]
    fn quadrant_trace_matches_single_shard() {
        let t = small_mesh(8, 8);
        let mut events = Vec::new();
        for s in 0..64u16 {
            for k in 1..6u16 {
                events.push(TraceEvent {
                    cycle: u64::from(k) * 3,
                    src: NodeId(s),
                    dst: NodeId((s + 13 * k) % 64),
                    flits: if k % 2 == 0 { 32 } else { 1 },
                });
            }
        }
        let routes = RoutingTable::compute_xy(&t);
        let trace = Trace::new("test", 64, 0.0, events.clone());
        let single = crate::Simulator::new(&t, &routes, SimConfig::paper())
            .run_trace(&trace)
            .expect("completes");
        for threads in [1, 4] {
            let sharded = run_sharded_trace(&t, ShardSpec::quadrants(), threads, events.clone());
            assert_eq!(sharded, single, "threads {threads}");
        }
    }

    #[test]
    fn express_dateline_class_crosses_boundaries() {
        // Span-5 express on a 16-wide mesh cut into 4 columns: express
        // links cross shard cuts, so the PostExpress transition must ride
        // the mailbox metadata.
        let spec = MeshSpec {
            width: 16,
            height: 2,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        let t = express_mesh(
            spec,
            ExpressSpec {
                span: 5,
                tech: LinkTechnology::Hyppi,
            },
        );
        let n = t.num_nodes() as u16;
        let mut events = Vec::new();
        for s in 0..n {
            for k in 1..n {
                events.push(TraceEvent {
                    cycle: u64::from(k) * 8,
                    src: NodeId(s),
                    dst: NodeId((s + k) % n),
                    flits: 32,
                });
            }
        }
        let routes = RoutingTable::compute_xy(&t);
        let trace = Trace::new("test", n, 0.0, events);
        let single = crate::Simulator::new(&t, &routes, SimConfig::paper())
            .run_trace(&trace)
            .expect("completes");
        let sharded =
            ShardedSimulator::new(&t, &routes, SimConfig::paper(), ShardSpec { sx: 4, sy: 1 })
                .with_threads(2)
                .run_trace(&trace)
                .expect("completes");
        assert_eq!(sharded, single);
    }

    #[test]
    fn synthetic_rng_replay_matches_single_shard() {
        let t = small_mesh(6, 6);
        let routes = RoutingTable::compute_xy(&t);
        let mut m = TrafficMatrix::zero(36);
        for s in 0..36u16 {
            m.set(NodeId(s), NodeId((s + 7) % 36), 0.04);
            m.set(NodeId(s), NodeId((s + 19) % 36), 0.04);
        }
        let single = crate::Simulator::new(&t, &routes, SimConfig::paper())
            .run_synthetic(&m, 150, 500, 42)
            .expect("completes");
        for threads in [1, 4] {
            let sharded =
                ShardedSimulator::new(&t, &routes, SimConfig::paper(), ShardSpec::quadrants())
                    .with_threads(threads)
                    .run_synthetic(&m, 150, 500, 42)
                    .expect("completes");
            assert_eq!(sharded, single, "threads {threads}");
        }
    }

    #[test]
    fn fast_forward_agrees_across_shards() {
        // A huge idle gap between two packets on different shards: the
        // lockstep fast-forward must jump, not simulate, and still deliver
        // the late packet with zero-load latency.
        let t = small_mesh(4, 4);
        let stats = run_sharded_trace(
            &t,
            ShardSpec::quadrants(),
            4,
            vec![
                TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(15),
                    flits: 1,
                },
                TraceEvent {
                    cycle: 2_000_000,
                    src: NodeId(15),
                    dst: NodeId(0),
                    flits: 1,
                },
            ],
        );
        assert_eq!(stats.all.count, 2);
        // 6 hops × 4 cycles + 3-cycle first router = 27 for both packets.
        assert_eq!(stats.all.max, 27);
    }

    #[test]
    fn cycle_limit_stuck_count_matches_single_shard() {
        // Overload a tiny mesh with an unreachable cycle budget; the
        // sharded stuck-packet count (origin-minus-completed summed over
        // shards) must equal the P=1 count.
        let t = small_mesh(4, 2);
        let mut events = Vec::new();
        for s in 0..8u16 {
            for k in 0..40u16 {
                events.push(TraceEvent {
                    cycle: 0,
                    src: NodeId(s),
                    dst: NodeId((s + 3 + k % 4) % 8),
                    flits: 32,
                });
            }
        }
        let routes = RoutingTable::compute_xy(&t);
        let mut cfg = SimConfig::paper();
        cfg.max_cycles = 60;
        let trace = Trace::new("overload", 8, 0.0, events);
        let single = crate::Simulator::new(&t, &routes, cfg)
            .run_trace(&trace)
            .expect_err("cycle limit");
        let sharded = ShardedSimulator::new(&t, &routes, cfg, ShardSpec { sx: 2, sy: 1 })
            .with_threads(2)
            .run_trace(&trace)
            .expect_err("cycle limit");
        assert_eq!(single, sharded);
    }

    #[test]
    fn cycle_limit_with_net_importer_shard() {
        // All traffic flows left half → right half: the right shard
        // completes packets it never originated, so the stuck-packet
        // accounting must difference global sums, not per-shard ones
        // (a per-shard `origins - completed` underflows u64 here).
        let t = small_mesh(4, 2);
        let mut events = Vec::new();
        for k in 0..60u16 {
            for s in 0..4u16 {
                let src = NodeId((s % 2) + 4 * (s / 2)); // x ∈ {0, 1}
                let dst = NodeId(2 + (k % 2) + 4 * (s / 2)); // x ∈ {2, 3}
                events.push(TraceEvent {
                    cycle: 0,
                    src,
                    dst,
                    flits: 32,
                });
            }
        }
        let routes = RoutingTable::compute_xy(&t);
        let mut cfg = SimConfig::paper();
        cfg.max_cycles = 80;
        let trace = Trace::new("importer overload", 8, 0.0, events);
        let single = crate::Simulator::new(&t, &routes, cfg)
            .run_trace(&trace)
            .expect_err("cycle limit");
        for threads in [1, 2] {
            let sharded = ShardedSimulator::new(&t, &routes, cfg, ShardSpec { sx: 2, sy: 1 })
                .with_threads(threads)
                .run_trace(&trace)
                .expect_err("cycle limit");
            assert_eq!(single, sharded, "threads {threads}");
        }
    }

    #[test]
    fn shard_count_constructor_round_trips() {
        let t = small_mesh(8, 8);
        let routes = RoutingTable::compute_xy(&t);
        let sim = ShardedSimulator::with_shard_count(&t, &routes, SimConfig::paper(), 4);
        assert_eq!(sim.num_shards(), 4);
    }

    #[test]
    fn credit_cell_defers_freed_credits_to_next_cycle() {
        let mut c = CreditCell::new(2);
        assert_eq!(c.normalize(5), 2);
        c.take(5);
        assert_eq!(c.peek(5), 1);
        // A credit freed during cycle 5 is invisible for the rest of
        // cycle 5 — exactly the old staged-list semantics…
        c.free(5);
        assert_eq!(c.normalize(5), 1);
        assert_eq!(c.peek(5), 1);
        // …and folds in on any access at a later cycle.
        assert_eq!(c.peek(6), 2);
        assert_eq!(c.normalize(8), 2);
        assert_eq!(c.peek(8), 2);
    }

    #[test]
    fn occupancy_bitset_jumps_to_next_bucket() {
        let t = small_mesh(2, 1);
        let routes = RoutingTable::compute_xy(&t);
        let plan = EnginePlan::new(&t, &routes, SimConfig::paper(), Partition::single(&t));
        let mut s = ShardState::new(&plan, 0);
        assert_eq!(s.next_arrival_cycle(10), None, "empty calendar");
        let f = Flit {
            packet: 0,
            dst: NodeId(1),
            is_head: true,
            is_tail: true,
            ready: 0,
        };
        // An arrival within the wheel's revolution is found from any
        // earlier cycle in one bitset probe, including across the
        // bucket-index wrap (cycle 13 lives in a lower bucket than 11).
        s.wheel_push(13, (0, 0, f));
        for now in 10..=13 {
            assert_eq!(s.next_arrival_cycle(now), Some(13), "from {now}");
        }
        s.wheel_push(11, (0, 0, f));
        assert_eq!(s.next_arrival_cycle(10), Some(11));
        assert_eq!(s.next_arrival_cycle(11), Some(11));
    }
}
