//! The cycle-driven simulation engine.

use crate::config::SimConfig;
use crate::flit::{Flit, PacketInfo};
use crate::router::{Emission, NodeState, VcState};
use crate::stats::SimStats;
use hyppi_topology::{LinkId, NodeId, RoutingTable, Topology};
use hyppi_traffic::{Trace, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded [`SimConfig::max_cycles`] without draining; with a
    /// correct configuration this indicates deadlock or overload.
    CycleLimit {
        /// Packets still incomplete at the limit.
        stuck_packets: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { stuck_packets } => {
                write!(f, "cycle limit hit with {stuck_packets} packets in flight")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Dateline VC class of a packet (see the `router` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcClass {
    /// The route never crosses an express link: any VC is safe.
    Free,
    /// Express route, before the first express traversal: class A VCs.
    PreExpress,
    /// Express route, after the first express traversal: class B VCs.
    PostExpress,
}

/// The simulator. Construct once per (topology, routing) pair and run a
/// trace or a synthetic load.
pub struct Simulator<'a> {
    topo: &'a Topology,
    cfg: SimConfig,
    /// Express-dateline VC classes in force (see `router` module docs).
    dateline: bool,
    nodes: Vec<NodeState>,
    /// Flits buffered per node (fast skip of quiescent routers).
    buffered: Vec<u32>,
    /// Free downstream slots per (link, vc).
    credits: Vec<Vec<u16>>,
    /// In-flight flits per link: (arrival cycle, dst vc, flit).
    pipes: Vec<VecDeque<(u64, u8, Flit)>>,
    /// In-port index (at the link's dst node) fed by each link.
    in_port_of_link: Vec<u8>,
    packets: Vec<PacketInfo>,
    /// Dateline class per packet (see [`VcClass`]).
    class_of: Vec<VcClass>,
    /// `express_on_path[dst][node]`: does the route node→dst cross an
    /// express link? Only populated when the dateline is in force.
    express_on_path: Vec<Vec<bool>>,
    pending_credits: Vec<(LinkId, u8)>,
    active_flits: u64,
    /// Packets queued at NICs or mid-emission.
    pending_sources: u64,
    stats: SimStats,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator. `routes` must have been computed for `topo`
    /// (use [`RoutingTable::compute_xy`] — the deadlock-freedom argument
    /// assumes X-then-Y ordering).
    pub fn new(topo: &'a Topology, routes: &'a RoutingTable, cfg: SimConfig) -> Self {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        let dateline = topo.count_links(|l| l.is_express()) > 0;
        let nodes: Vec<NodeState> = topo
            .nodes()
            .map(|n| NodeState::new(topo, routes, n, cfg.vcs))
            .collect();
        // Which (node → dst) routes cross an express link: walk each
        // destination's next-hop tree once, memoized.
        let mut express_on_path: Vec<Vec<bool>> = Vec::new();
        if dateline {
            express_on_path.reserve(topo.num_nodes());
            for dst in topo.nodes() {
                let mut table = vec![false; topo.num_nodes()];
                let mut visited = vec![false; topo.num_nodes()];
                visited[dst.index()] = true;
                for start in topo.nodes() {
                    if visited[start.index()] {
                        continue;
                    }
                    let mut chain = Vec::new();
                    let mut at = start;
                    while !visited[at.index()] {
                        chain.push(at);
                        let lid = routes.next_link(at, dst).expect("connected");
                        let link = topo.link(lid);
                        if link.is_express() {
                            // Everything up the chain routes through here.
                            for &n in &chain {
                                table[n.index()] = true;
                                visited[n.index()] = true;
                            }
                            chain.clear();
                        }
                        at = link.dst;
                    }
                    // Remaining chain inherits the memoized answer at `at`.
                    let tail = table[at.index()];
                    for &n in &chain {
                        table[n.index()] = tail;
                        visited[n.index()] = true;
                    }
                }
                express_on_path.push(table);
            }
        }
        let mut in_port_of_link = vec![0u8; topo.links().len()];
        for (node, state) in topo.nodes().zip(&nodes) {
            let _ = node;
            for (i, &lid) in state.in_links.iter().enumerate() {
                in_port_of_link[lid.index()] = (i + 1) as u8;
            }
        }
        Simulator {
            topo,
            cfg,
            dateline,
            buffered: vec![0; nodes.len()],
            nodes,
            credits: vec![vec![cfg.buffer_depth as u16; cfg.vcs]; topo.links().len()],
            pipes: vec![VecDeque::new(); topo.links().len()],
            in_port_of_link,
            packets: Vec::new(),
            class_of: Vec::new(),
            express_on_path,
            pending_credits: Vec::new(),
            active_flits: 0,
            pending_sources: 0,
            stats: SimStats::new(topo.links().len(), topo.num_nodes()),
        }
    }

    /// VC index range usable by a packet of the given dateline class.
    ///
    /// Class B (post-express walks — short and comparatively rare) gets
    /// the top quarter of the VCs; everything else (packets before their
    /// express traversal and packets that never touch an express link)
    /// shares the rest. Class-B channels are only ever requested by
    /// post-express packets, whose walks are monotone, so class-B
    /// dependencies are acyclic and no dependency points from class B back
    /// to class A (see the `router` module docs). Without express links no
    /// discipline is needed and every VC is open.
    #[inline]
    fn vc_range(&self, class: VcClass) -> std::ops::Range<usize> {
        if !self.dateline {
            return 0..self.cfg.vcs;
        }
        let b_start = self.cfg.vcs - (self.cfg.vcs / 4).max(1);
        match class {
            VcClass::Free | VcClass::PreExpress => 0..b_start,
            VcClass::PostExpress => b_start..self.cfg.vcs,
        }
    }

    /// Whether the deterministic route src → dst crosses an express link
    /// (always `false` on topologies without express links).
    pub fn route_uses_express(&self, src: NodeId, dst: NodeId) -> bool {
        self.dateline && src != dst && self.express_on_path[dst.index()][src.index()]
    }

    /// Initial dateline class of a new packet.
    #[inline]
    fn initial_class(&self, src: NodeId, dst: NodeId) -> VcClass {
        if self.route_uses_express(src, dst) {
            VcClass::PreExpress
        } else {
            VcClass::Free
        }
    }

    /// Runs a trace to completion.
    pub fn run_trace(mut self, trace: &Trace) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.topo.num_nodes());
        let mut now = 0u64;
        let mut next_event = 0usize;
        loop {
            // Admit due trace events into the source queues.
            while next_event < trace.events.len() && trace.events[next_event].cycle <= now {
                let e = &trace.events[next_event];
                next_event += 1;
                let pid = self.packets.len() as u32;
                self.packets.push(PacketInfo {
                    src: e.src,
                    dst: e.dst,
                    inject_cycle: e.cycle,
                    flits: e.flits,
                    ejected: 0,
                });
                self.class_of.push(self.initial_class(e.src, e.dst));
                self.nodes[e.src.index()].src_queue.push_back(pid);
                self.pending_sources += 1;
            }

            let drained = self.active_flits == 0 && self.pending_sources == 0;
            if drained {
                if next_event == trace.events.len() {
                    break;
                }
                // Nothing in flight: fast-forward to the next event.
                now = trace.events[next_event].cycle;
                continue;
            }

            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                let stuck = self
                    .packets
                    .iter()
                    .filter(|p| !p.is_complete())
                    .count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(self.stats)
    }

    /// Runs Bernoulli-injected synthetic traffic: each node injects 1-flit
    /// packets at its row rate of `matrix`, destinations sampled from the
    /// row distribution. Packets injected during the first `warmup` cycles
    /// are not measured; injection stops after `warmup + measure` cycles and
    /// the network drains.
    pub fn run_synthetic(
        mut self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        assert_eq!(matrix.num_nodes(), self.topo.num_nodes());
        let mut rng = StdRng::seed_from_u64(seed);
        // Precompute per-node injection rate and destination CDF.
        let n = self.topo.num_nodes();
        let mut rates = Vec::with_capacity(n);
        let mut cdfs: Vec<Vec<(f64, NodeId)>> = Vec::with_capacity(n);
        for src in self.topo.nodes() {
            let rate = matrix.injection_rate(src);
            let mut cdf = Vec::new();
            if rate > 0.0 {
                let mut acc = 0.0;
                for dst in self.topo.nodes() {
                    let r = matrix.rate(src, dst);
                    if r > 0.0 {
                        acc += r / rate;
                        cdf.push((acc, dst));
                    }
                }
            }
            rates.push(rate);
            cdfs.push(cdf);
        }

        let mut now = 0u64;
        let inject_until = warmup + measure;
        loop {
            if now < inject_until {
                for src in 0..n {
                    if rates[src] > 0.0 && rng.gen::<f64>() < rates[src] {
                        let u: f64 = rng.gen();
                        let dst = cdfs[src]
                            .iter()
                            .find(|&&(acc, _)| u <= acc)
                            .map(|&(_, d)| d)
                            .unwrap_or(cdfs[src].last().expect("nonempty cdf").1);
                        if dst == NodeId(src as u16) {
                            continue;
                        }
                        let pid = self.packets.len() as u32;
                        let measured = now >= warmup;
                        self.packets.push(PacketInfo {
                            src: NodeId(src as u16),
                            dst,
                            // Unmeasured packets are marked by u64::MAX and
                            // skipped in `record`.
                            inject_cycle: if measured { now } else { u64::MAX },
                            flits: 1,
                            ejected: 0,
                        });
                        self.class_of.push(self.initial_class(NodeId(src as u16), dst));
                        self.nodes[src].src_queue.push_back(pid);
                        self.pending_sources += 1;
                    }
                }
            } else if self.active_flits == 0 && self.pending_sources == 0 {
                break;
            }
            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                let stuck = self
                    .packets
                    .iter()
                    .filter(|p| !p.is_complete())
                    .count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(self.stats)
    }

    /// Like [`run_trace`](Self::run_trace), but on a cycle-limit failure
    /// prints a blocked-state dump to stderr before returning the error
    /// (deadlock triage aid).
    pub fn run_trace_debug(mut self, trace: &Trace) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.topo.num_nodes());
        let mut now = 0u64;
        let mut next_event = 0usize;
        loop {
            while next_event < trace.events.len() && trace.events[next_event].cycle <= now {
                let e = &trace.events[next_event];
                next_event += 1;
                let pid = self.packets.len() as u32;
                self.packets.push(PacketInfo {
                    src: e.src,
                    dst: e.dst,
                    inject_cycle: e.cycle,
                    flits: e.flits,
                    ejected: 0,
                });
                self.class_of.push(self.initial_class(e.src, e.dst));
                self.nodes[e.src.index()].src_queue.push_back(pid);
                self.pending_sources += 1;
            }
            let drained = self.active_flits == 0 && self.pending_sources == 0;
            if drained {
                if next_event == trace.events.len() {
                    break;
                }
                now = trace.events[next_event].cycle;
                continue;
            }
            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                self.dump_blocked(now);
                let stuck = self.packets.iter().filter(|p| !p.is_complete()).count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(self.stats)
    }

    /// Builds the channel wait-for graph of the stuck state and prints one
    /// cycle if present. Channels are (link, vc) pairs; injection VCs are
    /// virtual channels numbered past the links.
    fn dump_waitfor_cycle(&self) {
        let vcs = self.cfg.vcs;
        let links = self.topo.links().len();
        let chan = |lid: usize, vc: usize| lid * vcs + vc;
        let inj_chan = |node: usize, vc: usize| links * vcs + node * vcs + vc;
        let total = links * vcs + self.nodes.len() * vcs;
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (node, st) in self.nodes.iter().enumerate() {
            for (idx, vc) in st.vcs.iter().enumerate() {
                if vc.queue.is_empty() {
                    continue;
                }
                let in_port = idx / vcs;
                let in_vc = idx % vcs;
                let src_chan = if in_port == 0 {
                    inj_chan(node, in_vc)
                } else {
                    chan(st.in_links[in_port - 1].index(), in_vc)
                };
                match vc.state {
                    VcState::Active { out_port, out_vc } if out_port > 0 => {
                        let lid = st.out_links[usize::from(out_port) - 1].index();
                        if self.credits[lid][usize::from(out_vc)] == 0 {
                            edges[src_chan].push(chan(lid, usize::from(out_vc)));
                        }
                    }
                    VcState::Routed { out_port } if out_port > 0 => {
                        // Waiting for a held out VC in the packet's class.
                        let head = vc.queue.front().expect("nonempty");
                        let range = self.vc_range(self.class_of[head.packet as usize]);
                        for v in range {
                            if st.out_holder[usize::from(out_port) * vcs + v].is_some() {
                                let lid = st.out_links[usize::from(out_port) - 1].index();
                                edges[src_chan].push(chan(lid, v));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Iterative DFS cycle detection.
        let mut color = vec![0u8; total];
        let mut parent = vec![usize::MAX; total];
        for start in 0..total {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < edges[u].len() {
                    let v = edges[u][*ei];
                    *ei += 1;
                    if color[v] == 0 {
                        color[v] = 1;
                        parent[v] = u;
                        stack.push((v, 0));
                    } else if color[v] == 1 {
                        // Cycle found: unwind from u back to v.
                        let mut cyc = vec![v, u];
                        let mut w = u;
                        while w != v {
                            w = parent[w];
                            cyc.push(w);
                        }
                        eprintln!("WAIT-FOR CYCLE ({} channels):", cyc.len() - 1);
                        for &c in cyc.iter().rev() {
                            if c >= links * vcs {
                                let node = (c - links * vcs) / vcs;
                                eprintln!("  inj node {} vc {}", node, c % vcs);
                            } else {
                                let l = self.topo.link(hyppi_topology::LinkId((c / vcs) as u32));
                                eprintln!(
                                    "  link {}->{} ({:?}) vc {}",
                                    l.src.0,
                                    l.dst.0,
                                    l.class,
                                    c % vcs
                                );
                            }
                        }
                        return;
                    }
                } else {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
        eprintln!("no wait-for cycle found (stall, not deadlock)");
    }

    /// Prints every blocked head flit and why it cannot progress.
    fn dump_blocked(&self, now: u64) {
        self.dump_waitfor_cycle();
        let vcs = self.cfg.vcs;
        let mut lines = 0;
        for (node, st) in self.nodes.iter().enumerate() {
            for (idx, vc) in st.vcs.iter().enumerate() {
                let Some(head) = vc.queue.front() else { continue };
                let in_port = idx / vcs;
                let in_vc = idx % vcs;
                let reason = match vc.state {
                    VcState::Idle => "idle (RC pending)".to_string(),
                    VcState::Routed { out_port } => {
                        let holders: Vec<String> = (0..vcs)
                            .map(|v| match st.out_holder[usize::from(out_port) * vcs + v] {
                                None => format!("vc{v}:free"),
                                Some((ip, iv)) => format!("vc{v}:held({ip},{iv})"),
                            })
                            .collect();
                        format!("awaiting VA on out{} [{}]", out_port, holders.join(" "))
                    }
                    VcState::Active { out_port, out_vc } => {
                        if out_port == 0 {
                            "active->eject".to_string()
                        } else {
                            let lid = st.out_links[usize::from(out_port) - 1];
                            format!(
                                "active out{} vc{} credits={} ready={}",
                                out_port,
                                out_vc,
                                self.credits[lid.index()][usize::from(out_vc)],
                                head.ready
                            )
                        }
                    }
                };
                eprintln!(
                    "cycle {now} node {node} in{in_port}.vc{in_vc} q={} pkt{} class={:?} dst={} {}",
                    vc.queue.len(),
                    head.packet,
                    self.class_of[head.packet as usize],
                    head.dst.0,
                    reason
                );
                lines += 1;
                if lines > 60 {
                    eprintln!("... (truncated)");
                    return;
                }
            }
        }
    }

    /// One simulated cycle.
    fn step(&mut self, now: u64) {
        self.deliver_link_arrivals(now);
        self.emit_from_sources(now);
        self.route_compute();
        self.allocate_vcs();
        self.switch_traversal(now);
        // Credits freed this cycle become visible next cycle.
        for (lid, vc) in self.pending_credits.drain(..) {
            self.credits[lid.index()][usize::from(vc)] += 1;
        }
    }

    /// Stage 1: move flits that finished link traversal into input buffers.
    fn deliver_link_arrivals(&mut self, now: u64) {
        let dwell = self.cfg.pipeline_dwell();
        for lid in 0..self.pipes.len() {
            while let Some(&(arrive, vc, flit)) = self.pipes[lid].front() {
                if arrive > now {
                    break;
                }
                self.pipes[lid].pop_front();
                let link = self.topo.link(LinkId(lid as u32));
                let node = link.dst.index();
                let in_port = usize::from(self.in_port_of_link[lid]);
                let slot = in_port * self.cfg.vcs + usize::from(vc);
                let mut f = flit;
                // The arrival cycle is the link-traversal cycle; the router
                // pipeline (RC, VA/SA, ST) starts the following cycle, so a
                // hop costs `link latency + pipeline` cycles end to end.
                f.ready = now + 1 + dwell;
                self.nodes[node].vcs[slot].queue.push_back(f);
                self.buffered[node] += 1;
            }
        }
    }

    /// Stage 2: NIC emission into the injection port.
    fn emit_from_sources(&mut self, now: u64) {
        let dwell = self.cfg.pipeline_dwell();
        let vcs = self.cfg.vcs;
        for node in 0..self.nodes.len() {
            self.nodes[node].in_port_used = 0;
            if self.nodes[node].emitting.is_none() {
                if let Some(&pid) = self.nodes[node].src_queue.front() {
                    // Pick an injection VC in the packet's class.
                    let info = self.packets[pid as usize];
                    let range = self.vc_range(self.class_of[pid as usize]);
                    let pick = range.clone().find(|&v| {
                        self.nodes[node].vcs[v].queue.len() < self.cfg.buffer_depth
                    });
                    if let Some(v) = pick {
                        self.nodes[node].src_queue.pop_front();
                        self.nodes[node].emitting = Some(Emission {
                            packet: pid,
                            emitted: 0,
                            total: info.flits,
                            vc: v as u8,
                            dst: info.dst,
                            inject_cycle: info.inject_cycle,
                        });
                    }
                }
            }
            if let Some(mut em) = self.nodes[node].emitting {
                let slot = usize::from(em.vc); // in-port 0 ⇒ flat index = vc
                debug_assert!(slot < vcs);
                if self.nodes[node].vcs[slot].queue.len() < self.cfg.buffer_depth {
                    let flit = Flit {
                        packet: em.packet,
                        dst: em.dst,
                        is_head: em.emitted == 0,
                        is_tail: em.emitted + 1 == em.total,
                        ready: now + dwell,
                    };
                    self.nodes[node].vcs[slot].queue.push_back(flit);
                    self.buffered[node] += 1;
                    self.active_flits += 1;
                    em.emitted += 1;
                    self.nodes[node].emitting = if em.emitted == em.total {
                        self.pending_sources -= 1;
                        None
                    } else {
                        Some(em)
                    };
                }
            }
        }
    }

    /// Stage 3: route computation for fresh head packets.
    fn route_compute(&mut self) {
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            let st = &mut self.nodes[node];
            for vc in st.vcs.iter_mut() {
                if vc.state == VcState::Idle {
                    if let Some(head) = vc.queue.front() {
                        debug_assert!(head.is_head, "queue head after Idle must be a head flit");
                        vc.state = VcState::Routed {
                            out_port: st.route_port[head.dst.index()],
                        };
                        st.routed_count += 1;
                    }
                }
            }
        }
    }

    /// Stage 4: VC allocation (round-robin per output port).
    fn allocate_vcs(&mut self) {
        let vcs = self.cfg.vcs;
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            if self.nodes[node].routed_count == 0 {
                continue;
            }
            let total_in_vcs = self.nodes[node].in_ports() * vcs;
            for p in 0..self.nodes[node].out_ports() {
                if self.nodes[node].routed_count == 0 {
                    break;
                }
                let start = self.nodes[node].va_rr[p] as usize;
                for k in 0..total_in_vcs {
                    let idx = (start + k) % total_in_vcs;
                    let VcState::Routed { out_port } = self.nodes[node].vcs[idx].state else {
                        continue;
                    };
                    if usize::from(out_port) != p {
                        continue;
                    }
                    let Some(head) = self.nodes[node].vcs[idx].queue.front() else {
                        continue;
                    };
                    let head_packet = head.packet;
                    let range = self.vc_range(self.class_of[head_packet as usize]);
                    let free = range
                        .clone()
                        .find(|&v| self.nodes[node].out_holder[p * vcs + v].is_none());
                    if let Some(ovc) = free {
                        let in_port = (idx / vcs) as u8;
                        let in_vc = (idx % vcs) as u8;
                        self.nodes[node].out_holder[p * vcs + ovc] = Some((in_port, in_vc));
                        self.nodes[node].vcs[idx].state = VcState::Active {
                            out_port: p as u8,
                            out_vc: ovc as u8,
                        };
                        self.nodes[node].routed_count -= 1;
                        self.nodes[node].active_for_out[p] += 1;
                        self.nodes[node].va_rr[p] = ((idx + 1) % total_in_vcs) as u32;
                    }
                }
            }
        }
    }

    /// Stage 5: switch allocation + traversal, one flit per out-port and
    /// per in-port per cycle.
    fn switch_traversal(&mut self, now: u64) {
        let vcs = self.cfg.vcs;
        for node in 0..self.nodes.len() {
            if self.buffered[node] == 0 {
                continue;
            }
            let out_ports = self.nodes[node].out_ports();
            let total_in_vcs = self.nodes[node].in_ports() * vcs;
            for p in 0..out_ports {
                if self.nodes[node].active_for_out[p] == 0 {
                    continue;
                }
                let start = self.nodes[node].sa_rr[p] as usize;
                let mut winner: Option<usize> = None;
                for k in 0..total_in_vcs {
                    let idx = (start + k) % total_in_vcs;
                    let VcState::Active { out_port, out_vc } = self.nodes[node].vcs[idx].state
                    else {
                        continue;
                    };
                    if usize::from(out_port) != p {
                        continue;
                    }
                    let in_port = idx / vcs;
                    if self.nodes[node].in_port_used & (1 << in_port) != 0 {
                        continue;
                    }
                    let Some(head) = self.nodes[node].vcs[idx].queue.front() else {
                        continue;
                    };
                    if head.ready > now {
                        continue;
                    }
                    if p > 0 {
                        let lid = self.nodes[node].out_links[p - 1];
                        if self.credits[lid.index()][usize::from(out_vc)] == 0 {
                            continue;
                        }
                    }
                    winner = Some(idx);
                    break;
                }
                let Some(idx) = winner else { continue };
                self.nodes[node].sa_rr[p] = ((idx + 1) % total_in_vcs) as u32;
                let VcState::Active { out_vc, .. } = self.nodes[node].vcs[idx].state else {
                    unreachable!("winner is Active");
                };
                let flit = self.nodes[node].vcs[idx].queue.pop_front().expect("winner has a flit");
                self.buffered[node] -= 1;
                let in_port = idx / vcs;
                self.nodes[node].in_port_used |= 1 << in_port;
                self.stats.router_flits[node] += 1;

                // Return a credit upstream for the slot we just freed.
                if in_port > 0 {
                    let up = self.nodes[node].in_links[in_port - 1];
                    self.pending_credits.push((up, (idx % vcs) as u8));
                }

                if p == 0 {
                    // Ejection.
                    let pid = flit.packet as usize;
                    self.packets[pid].ejected += 1;
                    self.stats.flits_delivered += 1;
                    self.active_flits -= 1;
                    if self.packets[pid].is_complete() {
                        let info = &self.packets[pid];
                        if info.inject_cycle != u64::MAX {
                            self.stats
                                .record_packet(info.flits, now + 1 - info.inject_cycle);
                        }
                    }
                } else {
                    let lid = self.nodes[node].out_links[p - 1];
                    let link = self.topo.link(lid);
                    self.credits[lid.index()][usize::from(out_vc)] -= 1;
                    if link.is_express() {
                        // Dateline: the packet is class B from here on.
                        self.class_of[flit.packet as usize] = VcClass::PostExpress;
                    }
                    self.stats.link_flits[lid.index()] += 1;
                    self.pipes[lid.index()].push_back((
                        now + u64::from(link.latency_cycles),
                        out_vc,
                        flit,
                    ));
                }

                if flit.is_tail {
                    self.nodes[node].out_holder[p * vcs + usize::from(out_vc)] = None;
                    self.nodes[node].vcs[idx].state = VcState::Idle;
                    self.nodes[node].active_for_out[p] -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::{Gbps, LinkTechnology};
    use hyppi_topology::{express_mesh, mesh, ExpressSpec, MeshSpec};
    use hyppi_traffic::TraceEvent;

    fn small_mesh(w: u16, h: u16) -> Topology {
        mesh(MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        })
    }

    fn run(topo: &Topology, events: Vec<TraceEvent>) -> SimStats {
        let routes = RoutingTable::compute_xy(topo);
        let trace = Trace::new("test", topo.num_nodes() as u16, 0.0, events);
        Simulator::new(topo, &routes, SimConfig::paper())
            .run_trace(&trace)
            .expect("run completes")
    }

    #[test]
    fn single_flit_zero_load_latency() {
        // 2×1 mesh, one hop: 3 (src router) + 1 (link) + 3 (dst router)
        // = 7 cycles.
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(1),
                flits: 1,
            }],
        );
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.all.max, 7);
        assert_eq!(stats.flits_delivered, 1);
    }

    #[test]
    fn latency_grows_by_four_per_electronic_hop() {
        // Zero-load: each extra hop adds 3 (router) + 1 (link).
        let t = small_mesh(8, 1);
        let lat = |dst: u16| {
            run(
                &t,
                vec![TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(dst),
                    flits: 1,
                }],
            )
            .all
            .max
        };
        assert_eq!(lat(1), 7);
        assert_eq!(lat(2), 11);
        assert_eq!(lat(7), 31);
    }

    #[test]
    fn data_packet_serialization_latency() {
        // A 32-flit packet: head arrives like a 1-flit packet, tail follows
        // 31 cycles later (1 flit/cycle link bandwidth).
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(1),
                flits: 32,
            }],
        );
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.all.max, 7 + 31);
        assert_eq!(stats.flits_delivered, 32);
    }

    #[test]
    fn optical_express_link_costs_two_cycles() {
        let spec = MeshSpec {
            width: 8,
            height: 1,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        let t = express_mesh(
            spec,
            ExpressSpec {
                span: 3,
                tech: LinkTechnology::Hyppi,
            },
        );
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(3),
                flits: 1,
            }],
        );
        // One express hop: 3 + 2 + 3 = 8 vs 3 regular hops (15).
        assert_eq!(stats.all.max, 8);
    }

    #[test]
    fn all_packets_delivered_under_load() {
        // Saturating burst: every node sends to the opposite corner region.
        let t = small_mesh(4, 4);
        let mut events = Vec::new();
        for s in 0..16u16 {
            for k in 0..8u16 {
                events.push(TraceEvent {
                    cycle: u64::from(k) * 2,
                    src: NodeId(s),
                    dst: NodeId(15 - s),
                    flits: if k % 2 == 0 { 32 } else { 1 },
                });
            }
        }
        let total_flits: u64 = events.iter().map(|e| u64::from(e.flits)).sum();
        let stats = run(&t, events);
        assert_eq!(stats.all.count, 16 * 8);
        assert_eq!(stats.flits_delivered, total_flits);
    }

    #[test]
    fn determinism() {
        let t = small_mesh(4, 4);
        let mk = || {
            let mut events = Vec::new();
            for s in 0..16u16 {
                events.push(TraceEvent {
                    cycle: 0,
                    src: NodeId(s),
                    dst: NodeId((s + 5) % 16),
                    flits: 32,
                });
            }
            events
        };
        let a = run(&t, mk());
        let b = run(&t, mk());
        assert_eq!(a, b);
    }

    #[test]
    fn congestion_increases_latency() {
        let t = small_mesh(4, 1);
        // One packet alone…
        let solo = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(3),
                flits: 32,
            }],
        );
        // …vs the same packet competing with cross traffic on the line.
        let mut events = vec![TraceEvent {
            cycle: 0,
            src: NodeId(0),
            dst: NodeId(3),
            flits: 32,
        }];
        for k in 0..6 {
            events.push(TraceEvent {
                cycle: k * 4,
                src: NodeId(1),
                dst: NodeId(3),
                flits: 32,
            });
        }
        let busy = run(&t, events);
        assert!(busy.all.max > solo.all.max);
        assert_eq!(busy.flits_delivered, 32 * 7);
    }

    #[test]
    fn express_mesh_under_all_to_all_drains() {
        // Deadlock regression test: span-5 express (the dip/overshoot case)
        // under all-to-all wormhole traffic.
        let spec = MeshSpec {
            width: 16,
            height: 2,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        for span in [3u16, 5, 15] {
            let t = express_mesh(
                spec,
                ExpressSpec {
                    span,
                    tech: LinkTechnology::Hyppi,
                },
            );
            let n = t.num_nodes() as u16;
            let mut events = Vec::new();
            for s in 0..n {
                for k in 1..n {
                    events.push(TraceEvent {
                        cycle: u64::from(k) * 8,
                        src: NodeId(s),
                        dst: NodeId((s + k) % n),
                        flits: 32,
                    });
                }
            }
            let stats = run(&t, events);
            assert_eq!(stats.all.count, u64::from(n) * u64::from(n - 1), "span {span}");
        }
    }

    #[test]
    fn synthetic_injection_measures_only_after_warmup() {
        let t = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&t);
        let mut m = hyppi_traffic::TrafficMatrix::zero(16);
        for s in 0..16u16 {
            m.set(NodeId(s), NodeId((s + 3) % 16), 0.05);
        }
        let stats = Simulator::new(&t, &routes, SimConfig::paper())
            .run_synthetic(&m, 200, 800, 42)
            .expect("completes");
        assert!(stats.all.count > 0);
        // Delivered flits include warmup packets; measured count excludes.
        assert!(stats.flits_delivered >= stats.all.count);
    }

    #[test]
    fn express_path_memo_matches_ground_truth() {
        // The dateline classification relies on the memoized
        // express-on-path table; verify it against walking every route.
        let spec = MeshSpec {
            width: 16,
            height: 2,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        for span in [3u16, 5, 15] {
            let t = express_mesh(
                spec,
                ExpressSpec {
                    span,
                    tech: LinkTechnology::Hyppi,
                },
            );
            let routes = RoutingTable::compute_xy(&t);
            let sim = Simulator::new(&t, &routes, SimConfig::paper());
            for src in t.nodes() {
                for dst in t.nodes() {
                    if src == dst {
                        continue;
                    }
                    let mut at = src;
                    let mut crossed = false;
                    while at != dst {
                        let l = t.link(routes.next_link(at, dst).unwrap());
                        crossed |= l.is_express();
                        at = l.dst;
                    }
                    assert_eq!(
                        sim.route_uses_express(src, dst),
                        crossed,
                        "span {span}: {src}->{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_forward_skips_idle_gaps() {
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![
                TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(1),
                    flits: 1,
                },
                TraceEvent {
                    cycle: 1_000_000,
                    src: NodeId(1),
                    dst: NodeId(0),
                    flits: 1,
                },
            ],
        );
        assert_eq!(stats.all.count, 2);
        // Latency of the late packet is still 7: the gap was skipped, not
        // simulated.
        assert_eq!(stats.all.max, 7);
    }
}
