//! The cycle-driven simulation engine, active-set edition.
//!
//! Per-cycle cost scales with the number of in-flight flits, not with
//! network size. Four mechanisms replace the seed engine's full scans
//! (the seed engine itself survives verbatim in [`crate::reference`] as
//! the parity oracle):
//!
//! 1. **Arrival calendar.** Link pipes are gone; a flit leaving a router
//!    is booked into a cycle-indexed wheel (`wheel`, sized to the longest
//!    link latency) and delivered by draining exactly one bucket per
//!    cycle, instead of scanning every link's queue every cycle.
//! 2. **Active node sets.** Two bitsets track which routers can possibly
//!    do work: `work_mask` (any buffered flit — gates RC, VA, SA/ST) and
//!    `src_mask` (NIC queue or in-progress emission — gates NIC
//!    emission). Quiescent routers cost nothing.
//! 3. **SoA flit storage.** The per-node `Vec<VecDeque<Flit>>` nests are
//!    flattened into one contiguous flit slab (`flit_buf`) of fixed-depth
//!    ring buffers plus parallel `q_head`/`q_len`/`vc_state` arrays,
//!    indexed by global VC slot `vc_base[node] + in_port * vcs + vc`.
//!    Steady-state simulation performs zero heap allocation.
//! 4. **Idle fast-forward.** When both active sets are empty the engine
//!    jumps straight to the next timeline event — the next calendar
//!    arrival or the next trace admission — instead of stepping empty
//!    cycles one by one. (The seed engine only skipped when *fully*
//!    drained.)
//!
//! Stage order, arbitration order, credit timing, and statistics are
//! bit-for-bit identical to the reference engine; `tests/parity.rs`
//! enforces this across seeds, topologies, and workloads.

use crate::config::SimConfig;
use crate::flit::{Flit, PacketInfo};
use crate::router::{Emission, NodeState};
use crate::stats::SimStats;
use hyppi_topology::{LinkId, NodeId, RoutingTable, Topology};
use hyppi_traffic::{Trace, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded [`SimConfig::max_cycles`] without draining; with a
    /// correct configuration this indicates deadlock or overload.
    CycleLimit {
        /// Packets still incomplete at the limit.
        stuck_packets: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { stuck_packets } => {
                write!(f, "cycle limit hit with {stuck_packets} packets in flight")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Dateline VC class of a packet (see the `router` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcClass {
    /// The route never crosses an express link: any VC is safe.
    Free,
    /// Express route, before the first express traversal: class A VCs.
    PreExpress,
    /// Express route, after the first express traversal: class B VCs.
    PostExpress,
}

/// One booked link arrival: (link, destination VC, flit).
type ArrivalEvent = (u32, u8, Flit);

/// Packed per-slot metadata word: the VC state machine and the ring
/// cursor of one input VC, in a single `u32` so the arbitration loops
/// read and write slot state with one memory access.
///
/// | bits    | field                                   |
/// |---------|-----------------------------------------|
/// | 0..2    | state tag (Idle / Routed / Active)      |
/// | 2..6    | out-port (valid when Routed or Active)  |
/// | 6..11   | out-VC (valid when Active)              |
/// | 11..19  | ring head index                         |
/// | 19..27  | queue length                            |
///
/// Field widths are enforced by `SimConfig::validate` (VCs ≤ 32, buffer
/// depth ≤ 255) and the per-node port assert in `Simulator::new`.
mod meta {
    pub const IDLE: u32 = 0;
    pub const ROUTED: u32 = 1;
    pub const ACTIVE: u32 = 2;
    const TAG_MASK: u32 = 0b11;
    pub const PORT_SHIFT: u32 = 2;
    const PORT_MASK: u32 = 0xF;
    pub const OVC_SHIFT: u32 = 6;
    const OVC_MASK: u32 = 0x1F;
    pub const HEAD_SHIFT: u32 = 11;
    pub const HEAD_MASK: u32 = 0xFF;
    const LEN_SHIFT: u32 = 19;
    const LEN_MASK: u32 = 0xFF;
    /// Adding this to a word increments the queue length.
    pub const LEN_ONE: u32 = 1 << LEN_SHIFT;
    /// Clears tag + out-port + out-VC, leaving the ring cursor.
    pub const STATE_CLEAR: u32 = !((1 << HEAD_SHIFT) - 1);

    #[inline]
    pub fn tag(m: u32) -> u32 {
        m & TAG_MASK
    }

    #[inline]
    pub fn out_port(m: u32) -> usize {
        ((m >> PORT_SHIFT) & PORT_MASK) as usize
    }

    #[inline]
    pub fn out_vc(m: u32) -> usize {
        ((m >> OVC_SHIFT) & OVC_MASK) as usize
    }

    #[inline]
    pub fn head(m: u32) -> usize {
        ((m >> HEAD_SHIFT) & HEAD_MASK) as usize
    }

    #[inline]
    pub fn len(m: u32) -> usize {
        ((m >> LEN_SHIFT) & LEN_MASK) as usize
    }
}

/// Iterator over the set bits of a mask in cyclic (round-robin) order
/// starting at `start`: indices `start.., then 0..start`, restricted to
/// set bits. This visits exactly the candidates a full modular scan
/// `(start + k) % width` would accept, in the same order, so replacing
/// the scans with mask walks preserves arbitration bit-for-bit.
struct CyclicBits {
    hi: u32,
    lo: u32,
}

impl Iterator for CyclicBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let bits = if self.hi != 0 {
            &mut self.hi
        } else if self.lo != 0 {
            &mut self.lo
        } else {
            return None;
        };
        let b = bits.trailing_zeros();
        *bits &= *bits - 1;
        Some(b as usize)
    }
}

#[inline]
fn cyclic_bits(mask: u32, start: usize) -> CyclicBits {
    debug_assert!(start < 32);
    let hi_mask = u32::MAX << start;
    CyclicBits {
        hi: mask & hi_mask,
        lo: mask & !hi_mask,
    }
}

/// The simulator. Construct once per (topology, routing) pair and run a
/// trace or a synthetic load.
pub struct Simulator<'a> {
    topo: &'a Topology,
    cfg: SimConfig,
    /// Express-dateline VC classes in force (see `router` module docs).
    dateline: bool,
    nodes: Vec<NodeState>,
    // --- SoA VC storage, indexed by global slot (see module docs) ---
    /// First slot of each node (`slot = vc_base[node] + in_port*vcs + vc`).
    vc_base: Vec<u32>,
    /// Owning node of each slot (RC dirty-list lookups).
    node_of_slot: Vec<u16>,
    /// Packed per-slot metadata: state machine + ring-buffer cursor in
    /// one word, so the arbitration loops load slot state once. See the
    /// `meta_*` helpers for the bit layout.
    slot_meta: Vec<u32>,
    /// Flit slab: `ring` contiguous entries per slot (power of two ≥
    /// `cfg.buffer_depth`, so ring arithmetic is mask-based; occupancy is
    /// still bounded by `buffer_depth` via credits and emission checks).
    flit_buf: Vec<Flit>,
    /// Ring stride of `flit_buf`.
    ring: usize,
    /// `ring - 1`, for masked wrap-around.
    ring_mask: usize,
    /// In-port of each global slot (`idx / vcs`, precomputed).
    in_port_of_slot: Vec<u8>,
    /// VC index of each global slot (`idx % vcs`, precomputed).
    vc_of_slot: Vec<u8>,
    /// First class-B VC when the dateline is in force (see `vc_range`).
    class_b_start: usize,
    /// Flits buffered per node (active-set membership count).
    buffered: Vec<u32>,
    /// Free downstream slots, flattened `[link * vcs + vc]`.
    credits: Vec<u16>,
    // --- flattened per-port router control state (hot arbitration data
    // lives in contiguous global arrays, not per-node Vecs) ---
    /// First out-port entry of each node in the per-out-port arrays.
    port_base: Vec<u32>,
    /// First in-port entry of each node (= `vc_base[node] / vcs`).
    in_port_base: Vec<u32>,
    /// Out-port count per node.
    out_ports_of: Vec<u8>,
    /// Arbitration scan width per node (`in_ports * vcs`).
    total_in_vcs_of: Vec<u8>,
    /// Routed-VC bitmask per (node, out-port) — bit = in-VC index.
    routed_mask: Vec<u32>,
    /// Active-VC bitmask per (node, out-port) — bit = in-VC index.
    active_mask: Vec<u32>,
    /// VC-allocation round-robin pointer per (node, out-port).
    va_rr: Vec<u8>,
    /// Switch-allocation round-robin pointer per (node, out-port).
    sa_rr: Vec<u8>,
    /// Output VC holder per ((node, out-port), vc): `Some((in_port,
    /// in_vc))` while a packet owns the VC.
    out_holder: Vec<Option<(u8, u8)>>,
    /// Input VCs currently `Routed`, per node (VA fast skip).
    routed_count: Vec<u16>,
    /// Bitmask of in-ports that already sent a flit this cycle, per node.
    in_port_used: Vec<u32>,
    /// Raw link id per (node, out-port); `u32::MAX` for the ejection port.
    link_of_out_port: Vec<u32>,
    /// Raw link id per (node, in-port); `u32::MAX` for injection.
    link_of_in_port: Vec<u32>,
    /// Per-link latency in cycles (dense copy of the topology's).
    latency_of_link: Vec<u32>,
    /// Per-link express flag (dense copy of the topology's).
    express_link: Vec<bool>,
    // --- arrival calendar ---
    /// Cycle-indexed arrival buckets; slot `cycle & wheel_mask`.
    wheel: Vec<Vec<ArrivalEvent>>,
    wheel_mask: u64,
    /// Flits currently traversing links (booked in `wheel`).
    inflight_arrivals: u64,
    /// In-port index (at the link's dst node) fed by each link.
    in_port_of_link: Vec<u8>,
    // --- active sets ---
    /// Bit per node: has any buffered flit (gates RC/VA/SA).
    work_mask: Vec<u64>,
    /// Bit per node: NIC queue non-empty or emission in progress.
    src_mask: Vec<u64>,
    /// Slots whose fresh head packet needs route computation.
    rc_dirty: Vec<u32>,
    packets: Vec<PacketInfo>,
    /// Dateline class per packet (see [`VcClass`]).
    class_of: Vec<VcClass>,
    /// `express_on_path[dst][node]`: does the route node→dst cross an
    /// express link? Only populated when the dateline is in force.
    express_on_path: Vec<Vec<bool>>,
    /// Credits freed this cycle, flattened `[link * vcs + vc]`.
    pending_credits: Vec<u32>,
    active_flits: u64,
    /// Packets queued at NICs or mid-emission.
    pending_sources: u64,
    stats: SimStats,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator. `routes` must have been computed for `topo`
    /// (use [`RoutingTable::compute_xy`] — the deadlock-freedom argument
    /// assumes X-then-Y ordering).
    pub fn new(topo: &'a Topology, routes: &'a RoutingTable, cfg: SimConfig) -> Self {
        assert_eq!(routes.num_nodes(), topo.num_nodes());
        cfg.validate();
        let dateline = topo.count_links(|l| l.is_express()) > 0;
        let nodes: Vec<NodeState> = topo
            .nodes()
            .map(|n| NodeState::new(topo, routes, n))
            .collect();
        // Which (node → dst) routes cross an express link: walk each
        // destination's next-hop tree once, memoized.
        let mut express_on_path: Vec<Vec<bool>> = Vec::new();
        if dateline {
            express_on_path.reserve(topo.num_nodes());
            for dst in topo.nodes() {
                let mut table = vec![false; topo.num_nodes()];
                let mut visited = vec![false; topo.num_nodes()];
                visited[dst.index()] = true;
                for start in topo.nodes() {
                    if visited[start.index()] {
                        continue;
                    }
                    let mut chain = Vec::new();
                    let mut at = start;
                    while !visited[at.index()] {
                        chain.push(at);
                        let lid = routes.next_link(at, dst).expect("connected");
                        let link = topo.link(lid);
                        if link.is_express() {
                            // Everything up the chain routes through here.
                            for &n in &chain {
                                table[n.index()] = true;
                                visited[n.index()] = true;
                            }
                            chain.clear();
                        }
                        at = link.dst;
                    }
                    // Remaining chain inherits the memoized answer at `at`.
                    let tail = table[at.index()];
                    for &n in &chain {
                        table[n.index()] = tail;
                        visited[n.index()] = true;
                    }
                }
                express_on_path.push(table);
            }
        }
        let mut in_port_of_link = vec![0u8; topo.links().len()];
        for (node, state) in topo.nodes().zip(&nodes) {
            let _ = node;
            for (i, &lid) in state.in_links.iter().enumerate() {
                in_port_of_link[lid.index()] = (i + 1) as u8;
            }
        }
        // Flat slot layout.
        let mut vc_base = Vec::with_capacity(nodes.len());
        let mut node_of_slot = Vec::new();
        let mut in_port_of_slot = Vec::new();
        let mut vc_of_slot = Vec::new();
        let mut total_slots = 0u32;
        for (i, st) in nodes.iter().enumerate() {
            vc_base.push(total_slots);
            let slots = st.in_ports() * cfg.vcs;
            assert!(
                slots <= 32,
                "per-node VC count {slots} exceeds the u32 arbitration masks \
                 (node {i}: {} in-ports × {} VCs)",
                st.in_ports(),
                cfg.vcs
            );
            node_of_slot.extend(std::iter::repeat_n(i as u16, slots));
            for idx in 0..slots {
                in_port_of_slot.push((idx / cfg.vcs) as u8);
                vc_of_slot.push((idx % cfg.vcs) as u8);
            }
            total_slots += slots as u32;
        }
        let total_slots = total_slots as usize;
        // Flat per-port layout (out-ports and in-ports).
        let mut port_base = Vec::with_capacity(nodes.len());
        let mut out_ports_of = Vec::with_capacity(nodes.len());
        let mut total_in_vcs_of = Vec::with_capacity(nodes.len());
        let mut link_of_out_port = Vec::new();
        let mut link_of_in_port = Vec::new();
        let mut total_out_ports = 0u32;
        for st in &nodes {
            port_base.push(total_out_ports);
            assert!(
                st.out_ports() <= 15,
                "out-port count {} exceeds the packed slot-meta field",
                st.out_ports()
            );
            out_ports_of.push(st.out_ports() as u8);
            total_in_vcs_of.push((st.in_ports() * cfg.vcs) as u8);
            link_of_out_port.push(u32::MAX); // ejection port
            link_of_out_port.extend(st.out_links.iter().map(|l| l.index() as u32));
            link_of_in_port.push(u32::MAX); // injection port
            link_of_in_port.extend(st.in_links.iter().map(|l| l.index() as u32));
            total_out_ports += st.out_ports() as u32;
        }
        let in_port_base: Vec<u32> = vc_base.iter().map(|&b| b / cfg.vcs as u32).collect();
        let latency_of_link: Vec<u32> = topo.links().iter().map(|l| l.latency_cycles).collect();
        let express_link: Vec<bool> = topo.links().iter().map(|l| l.is_express()).collect();
        let ring = cfg.buffer_depth.next_power_of_two();
        let filler = Flit {
            packet: u32::MAX,
            dst: NodeId(0),
            is_head: false,
            is_tail: false,
            ready: 0,
        };
        // Calendar sized to cover the longest link latency. Zero-latency
        // links would land arrivals in the bucket stage 1 already drained
        // this cycle (delivering them a whole revolution late), so the
        // wheel requires every latency ≥ 1 — same-cycle delivery is not a
        // thing in the reference engine either.
        assert!(
            topo.links().iter().all(|l| l.latency_cycles >= 1),
            "link latencies must be >= 1 cycle"
        );
        let max_latency = topo
            .links()
            .iter()
            .map(|l| u64::from(l.latency_cycles))
            .max()
            .unwrap_or(1);
        let wheel_len = (max_latency + 2).next_power_of_two() as usize;
        let mask_words = nodes.len().div_ceil(64);
        Simulator {
            topo,
            cfg,
            dateline,
            buffered: vec![0; nodes.len()],
            slot_meta: vec![0; total_slots],
            flit_buf: vec![filler; total_slots * ring],
            ring,
            ring_mask: ring - 1,
            in_port_of_slot,
            vc_of_slot,
            class_b_start: cfg.vcs - (cfg.vcs / 4).max(1),
            vc_base,
            node_of_slot,
            routed_mask: vec![0; total_out_ports as usize],
            active_mask: vec![0; total_out_ports as usize],
            va_rr: vec![0; total_out_ports as usize],
            sa_rr: vec![0; total_out_ports as usize],
            out_holder: vec![None; total_out_ports as usize * cfg.vcs],
            routed_count: vec![0; nodes.len()],
            in_port_used: vec![0; nodes.len()],
            port_base,
            in_port_base,
            out_ports_of,
            total_in_vcs_of,
            link_of_out_port,
            link_of_in_port,
            latency_of_link,
            express_link,
            nodes,
            credits: vec![cfg.buffer_depth as u16; topo.links().len() * cfg.vcs],
            wheel: vec![Vec::new(); wheel_len],
            wheel_mask: (wheel_len - 1) as u64,
            inflight_arrivals: 0,
            in_port_of_link,
            work_mask: vec![0; mask_words],
            src_mask: vec![0; mask_words],
            rc_dirty: Vec::new(),
            packets: Vec::new(),
            class_of: Vec::new(),
            express_on_path,
            pending_credits: Vec::new(),
            active_flits: 0,
            pending_sources: 0,
            stats: SimStats::new(topo.links().len(), topo.num_nodes()),
        }
    }

    /// VC index range usable by a packet of the given dateline class.
    ///
    /// Class B (post-express walks — short and comparatively rare) gets
    /// the top quarter of the VCs; everything else (packets before their
    /// express traversal and packets that never touch an express link)
    /// shares the rest. Class-B channels are only ever requested by
    /// post-express packets, whose walks are monotone, so class-B
    /// dependencies are acyclic and no dependency points from class B back
    /// to class A (see the `router` module docs). Without express links no
    /// discipline is needed and every VC is open.
    #[inline]
    fn vc_range(&self, class: VcClass) -> std::ops::Range<usize> {
        if !self.dateline {
            return 0..self.cfg.vcs;
        }
        match class {
            VcClass::Free | VcClass::PreExpress => 0..self.class_b_start,
            VcClass::PostExpress => self.class_b_start..self.cfg.vcs,
        }
    }

    /// Whether the deterministic route src → dst crosses an express link
    /// (always `false` on topologies without express links).
    pub fn route_uses_express(&self, src: NodeId, dst: NodeId) -> bool {
        self.dateline && src != dst && self.express_on_path[dst.index()][src.index()]
    }

    /// Initial dateline class of a new packet.
    #[inline]
    fn initial_class(&self, src: NodeId, dst: NodeId) -> VcClass {
        if self.route_uses_express(src, dst) {
            VcClass::PreExpress
        } else {
            VcClass::Free
        }
    }

    // ---- active-set plumbing -------------------------------------------

    #[inline]
    fn set_work(&mut self, node: usize) {
        self.work_mask[node >> 6] |= 1u64 << (node & 63);
    }

    #[inline]
    fn clear_work(&mut self, node: usize) {
        self.work_mask[node >> 6] &= !(1u64 << (node & 63));
    }

    #[inline]
    fn set_src(&mut self, node: usize) {
        self.src_mask[node >> 6] |= 1u64 << (node & 63);
    }

    #[inline]
    fn clear_src(&mut self, node: usize) {
        self.src_mask[node >> 6] &= !(1u64 << (node & 63));
    }

    /// True when no router can do any work this cycle (flits may still be
    /// traversing links — check [`Self::next_arrival_cycle`]).
    #[inline]
    fn quiescent(&self) -> bool {
        self.work_mask.iter().all(|&w| w == 0) && self.src_mask.iter().all(|&w| w == 0)
    }

    /// Cycle of the earliest booked link arrival ≥ `now`, if any. The
    /// calendar only holds arrivals within one wheel revolution of `now`.
    fn next_arrival_cycle(&self, now: u64) -> Option<u64> {
        if self.inflight_arrivals == 0 {
            return None;
        }
        (0..self.wheel.len() as u64)
            .find(|off| !self.wheel[((now + off) & self.wheel_mask) as usize].is_empty())
            .map(|off| now + off)
    }

    /// Appends `f` to a VC ring, updating active-set state. Marks the slot
    /// RC-dirty when `f` lands at the head of an idle VC (then it is a
    /// fresh head flit by the VC-allocation contract).
    #[inline]
    fn push_flit(&mut self, node: usize, slot: usize, f: Flit) {
        let m = self.slot_meta[slot];
        let len = meta::len(m);
        debug_assert!(len < self.cfg.buffer_depth, "VC overflow (credit leak)");
        if len == 0 && meta::tag(m) == meta::IDLE {
            debug_assert!(f.is_head, "flit entering an idle empty VC must be a head");
            self.rc_dirty.push(slot as u32);
        }
        let pos = (meta::head(m) + len) & self.ring_mask;
        self.flit_buf[slot * self.ring + pos] = f;
        self.slot_meta[slot] = m + meta::LEN_ONE;
        self.buffered[node] += 1;
        self.set_work(node);
    }

    #[inline]
    fn front_flit(&self, slot: usize) -> Option<&Flit> {
        let m = self.slot_meta[slot];
        if meta::len(m) == 0 {
            None
        } else {
            Some(&self.flit_buf[slot * self.ring + meta::head(m)])
        }
    }

    #[inline]
    fn pop_flit(&mut self, slot: usize) -> Flit {
        let m = self.slot_meta[slot];
        debug_assert!(meta::len(m) > 0, "pop from empty VC");
        let head = meta::head(m);
        let f = self.flit_buf[slot * self.ring + head];
        let new_head = ((head + 1) & self.ring_mask) as u32;
        self.slot_meta[slot] = ((m - meta::LEN_ONE) & !(meta::HEAD_MASK << meta::HEAD_SHIFT))
            | (new_head << meta::HEAD_SHIFT);
        f
    }

    /// `(idx + 1) % total` without the division (RR pointer advance).
    #[inline]
    fn rr_next(idx: usize, total: usize) -> u8 {
        let nxt = idx + 1;
        if nxt == total {
            0
        } else {
            nxt as u8
        }
    }

    /// Queues a packet at its source NIC.
    fn admit(&mut self, src: NodeId, dst: NodeId, flits: u32, inject_cycle: u64) {
        let pid = self.packets.len() as u32;
        self.packets.push(PacketInfo {
            src,
            dst,
            inject_cycle,
            flits,
            ejected: 0,
        });
        self.class_of.push(self.initial_class(src, dst));
        self.nodes[src.index()].src_queue.push_back(pid);
        self.pending_sources += 1;
        self.set_src(src.index());
    }

    // ---- run loops ------------------------------------------------------

    /// Runs a trace to completion.
    pub fn run_trace(self, trace: &Trace) -> Result<SimStats, SimError> {
        self.run_trace_impl(trace, false)
    }

    /// Like [`run_trace`](Self::run_trace), but on a cycle-limit failure
    /// prints a blocked-state dump to stderr before returning the error
    /// (deadlock triage aid).
    pub fn run_trace_debug(self, trace: &Trace) -> Result<SimStats, SimError> {
        self.run_trace_impl(trace, true)
    }

    /// The single trace-driven run loop; `dump_on_stall` enables the
    /// deadlock-triage dump on cycle-limit failure.
    fn run_trace_impl(mut self, trace: &Trace, dump_on_stall: bool) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.topo.num_nodes());
        let mut now = 0u64;
        let mut next_event = 0usize;
        loop {
            // Admit due trace events into the source queues.
            while next_event < trace.events.len() && trace.events[next_event].cycle <= now {
                let e = &trace.events[next_event];
                next_event += 1;
                self.admit(e.src, e.dst, e.flits, e.cycle);
            }

            if self.quiescent() {
                // No router can act this cycle: fast-forward to the next
                // timeline event — a booked link arrival or the next
                // trace admission. (Without buffered flits or NIC work,
                // `active_flits` is exactly the in-flight arrival count,
                // so no-arrivals-and-no-events means fully drained.)
                let next_trace = trace.events.get(next_event).map(|e| e.cycle);
                let target = match (self.next_arrival_cycle(now), next_trace) {
                    (None, None) => break, // drained, trace exhausted
                    (Some(a), None) => a,
                    (None, Some(t)) => t,
                    (Some(a), Some(t)) => a.min(t),
                };
                if target > now {
                    now = target;
                    continue; // re-run admission at the new cycle
                }
            }

            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                if dump_on_stall {
                    self.dump_blocked(now);
                }
                let stuck = self.packets.iter().filter(|p| !p.is_complete()).count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(self.stats)
    }

    /// Runs Bernoulli-injected synthetic traffic: each node injects 1-flit
    /// packets at its row rate of `matrix`, destinations sampled from the
    /// row distribution. Packets injected during the first `warmup` cycles
    /// are not measured; injection stops after `warmup + measure` cycles and
    /// the network drains.
    pub fn run_synthetic(
        mut self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        assert_eq!(matrix.num_nodes(), self.topo.num_nodes());
        let mut rng = StdRng::seed_from_u64(seed);
        // Precompute per-node injection rate and destination CDF as
        // prefix-sum tables (binary-searched per draw).
        let n = self.topo.num_nodes();
        let mut rates = Vec::with_capacity(n);
        let mut cdf_acc: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut cdf_dst: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for src in self.topo.nodes() {
            let rate = matrix.injection_rate(src);
            let mut acc_col = Vec::new();
            let mut dst_col = Vec::new();
            if rate > 0.0 {
                let mut acc = 0.0;
                for dst in self.topo.nodes() {
                    let r = matrix.rate(src, dst);
                    if r > 0.0 {
                        acc += r / rate;
                        acc_col.push(acc);
                        dst_col.push(dst);
                    }
                }
            }
            rates.push(rate);
            cdf_acc.push(acc_col);
            cdf_dst.push(dst_col);
        }

        let mut now = 0u64;
        let inject_until = warmup + measure;
        loop {
            if now < inject_until {
                for src in 0..n {
                    if rates[src] > 0.0 && rng.gen::<f64>() < rates[src] {
                        let u: f64 = rng.gen();
                        // First entry with acc ≥ u (prefix sums are
                        // nondecreasing); the last entry backstops
                        // floating-point shortfall at u ≈ 1.
                        let i = cdf_acc[src].partition_point(|&acc| acc < u);
                        let dst = *cdf_dst[src]
                            .get(i)
                            .unwrap_or_else(|| cdf_dst[src].last().expect("nonempty cdf"));
                        if dst == NodeId(src as u16) {
                            continue;
                        }
                        let measured = now >= warmup;
                        // Unmeasured packets are marked by u64::MAX and
                        // skipped in `record`.
                        let inject_cycle = if measured { now } else { u64::MAX };
                        self.admit(NodeId(src as u16), dst, 1, inject_cycle);
                    }
                }
            } else if self.quiescent() {
                // Drain phase: jump to the next booked arrival, or stop.
                match self.next_arrival_cycle(now) {
                    None => break,
                    Some(t) if t > now => {
                        now = t;
                        continue;
                    }
                    Some(_) => {}
                }
            }
            self.step(now);
            now += 1;
            if now > self.cfg.max_cycles {
                let stuck = self.packets.iter().filter(|p| !p.is_complete()).count() as u64;
                return Err(SimError::CycleLimit {
                    stuck_packets: stuck,
                });
            }
        }
        self.stats.cycles = now;
        Ok(self.stats)
    }

    // ---- the five pipeline stages --------------------------------------

    /// One simulated cycle.
    fn step(&mut self, now: u64) {
        self.deliver_link_arrivals(now);
        self.emit_from_sources(now);
        self.route_compute();
        self.allocate_vcs();
        self.switch_traversal(now);
        // Credits freed this cycle become visible next cycle.
        for i in self.pending_credits.drain(..) {
            self.credits[i as usize] += 1;
        }
    }

    /// Stage 1: drain this cycle's calendar bucket into input buffers.
    fn deliver_link_arrivals(&mut self, now: u64) {
        let bucket = (now & self.wheel_mask) as usize;
        if self.wheel[bucket].is_empty() {
            return;
        }
        let dwell = self.cfg.pipeline_dwell();
        let mut events = std::mem::take(&mut self.wheel[bucket]);
        self.inflight_arrivals -= events.len() as u64;
        for (lid, vc, flit) in events.drain(..) {
            let link = self.topo.link(LinkId(lid));
            let node = link.dst.index();
            let in_port = usize::from(self.in_port_of_link[lid as usize]);
            let slot = self.vc_base[node] as usize + in_port * self.cfg.vcs + usize::from(vc);
            let mut f = flit;
            // The arrival cycle is the link-traversal cycle; the router
            // pipeline (RC, VA/SA, ST) starts the following cycle, so a
            // hop costs `link latency + pipeline` cycles end to end.
            f.ready = now + 1 + dwell;
            self.push_flit(node, slot, f);
        }
        // Hand the bucket's allocation back for reuse.
        self.wheel[bucket] = events;
    }

    /// Stage 2: NIC emission into the injection port, source-active nodes
    /// only. A source that cannot push (its injection VCs are full) is
    /// parked out of `src_mask`; it is re-armed when an injection-VC slot
    /// frees at this node (in-port-0 pop in switch traversal) or a new
    /// packet is admitted, so no cycle the seed engine would use for
    /// emission is missed.
    fn emit_from_sources(&mut self, now: u64) {
        let dwell = self.cfg.pipeline_dwell();
        for w in 0..self.src_mask.len() {
            let mut bits = self.src_mask[w];
            while bits != 0 {
                let node = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut pushed = false;
                if self.nodes[node].emitting.is_none() {
                    if let Some(&pid) = self.nodes[node].src_queue.front() {
                        // Pick an injection VC in the packet's class.
                        let info = self.packets[pid as usize];
                        let range = self.vc_range(self.class_of[pid as usize]);
                        let base = self.vc_base[node] as usize; // in-port 0 ⇒ slot = base + vc
                        let pick = range
                            .clone()
                            .find(|&v| meta::len(self.slot_meta[base + v]) < self.cfg.buffer_depth);
                        if let Some(v) = pick {
                            self.nodes[node].src_queue.pop_front();
                            self.nodes[node].emitting = Some(Emission {
                                packet: pid,
                                emitted: 0,
                                total: info.flits,
                                vc: v as u8,
                                dst: info.dst,
                                inject_cycle: info.inject_cycle,
                            });
                        }
                    }
                }
                if let Some(mut em) = self.nodes[node].emitting {
                    let slot = self.vc_base[node] as usize + usize::from(em.vc);
                    if meta::len(self.slot_meta[slot]) < self.cfg.buffer_depth {
                        let flit = Flit {
                            packet: em.packet,
                            dst: em.dst,
                            is_head: em.emitted == 0,
                            is_tail: em.emitted + 1 == em.total,
                            ready: now + dwell,
                        };
                        self.push_flit(node, slot, flit);
                        pushed = true;
                        self.active_flits += 1;
                        em.emitted += 1;
                        self.nodes[node].emitting = if em.emitted == em.total {
                            self.pending_sources -= 1;
                            None
                        } else {
                            Some(em)
                        };
                    }
                }
                // Done (nothing left) or parked (blocked on full VCs).
                if !pushed
                    || (self.nodes[node].emitting.is_none()
                        && self.nodes[node].src_queue.is_empty())
                {
                    self.clear_src(node);
                }
            }
        }
    }

    /// Stage 3: route computation, dirty slots only. A slot is marked when
    /// a head flit lands at the front of an idle VC (on push, or when a
    /// tail departs with the next packet queued behind it), so this visits
    /// exactly the VCs the seed engine's full scan would transition.
    fn route_compute(&mut self) {
        while let Some(slot) = self.rc_dirty.pop() {
            let slot = slot as usize;
            let m = self.slot_meta[slot];
            debug_assert_eq!(meta::tag(m), meta::IDLE, "dirty slot must be idle");
            debug_assert!(meta::len(m) > 0, "dirty slot has a queued head");
            let head = &self.flit_buf[slot * self.ring + meta::head(m)];
            debug_assert!(head.is_head, "queue head after Idle must be a head flit");
            let node = usize::from(self.node_of_slot[slot]);
            let out_port = self.nodes[node].route_port[head.dst.index()];
            let idx = slot - self.vc_base[node] as usize;
            self.slot_meta[slot] =
                (m & meta::STATE_CLEAR) | meta::ROUTED | (u32::from(out_port) << meta::PORT_SHIFT);
            self.routed_mask[self.port_base[node] as usize + usize::from(out_port)] |= 1 << idx;
            self.routed_count[node] += 1;
        }
    }

    /// Stage 4: VC allocation (round-robin per output port), work-active
    /// nodes only. The arbitration order within a node is identical to the
    /// seed engine's.
    fn allocate_vcs(&mut self) {
        let vcs = self.cfg.vcs;
        for w in 0..self.work_mask.len() {
            let mut bits = self.work_mask[w];
            while bits != 0 {
                let node = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.routed_count[node] == 0 {
                    continue;
                }
                let base = self.vc_base[node] as usize;
                let pb = self.port_base[node] as usize;
                let total_in_vcs = usize::from(self.total_in_vcs_of[node]);
                for p in 0..usize::from(self.out_ports_of[node]) {
                    if self.routed_count[node] == 0 {
                        break;
                    }
                    // Only VCs actually Routed for this port, in the same
                    // round-robin order a full scan from va_rr would use.
                    let mask = self.routed_mask[pb + p];
                    if mask == 0 {
                        continue;
                    }
                    let start = usize::from(self.va_rr[pb + p]);
                    for idx in cyclic_bits(mask, start) {
                        let m = self.slot_meta[base + idx];
                        debug_assert_eq!(meta::tag(m), meta::ROUTED);
                        debug_assert_eq!(meta::out_port(m), p);
                        debug_assert!(meta::len(m) > 0, "Routed VC holds its head flit");
                        let head = &self.flit_buf[(base + idx) * self.ring + meta::head(m)];
                        let head_packet = head.packet;
                        let range = self.vc_range(self.class_of[head_packet as usize]);
                        let free = range
                            .clone()
                            .find(|&v| self.out_holder[(pb + p) * vcs + v].is_none());
                        if let Some(ovc) = free {
                            let in_port = self.in_port_of_slot[base + idx];
                            let in_vc = self.vc_of_slot[base + idx];
                            self.out_holder[(pb + p) * vcs + ovc] = Some((in_port, in_vc));
                            self.slot_meta[base + idx] = (m & meta::STATE_CLEAR)
                                | meta::ACTIVE
                                | ((p as u32) << meta::PORT_SHIFT)
                                | ((ovc as u32) << meta::OVC_SHIFT);
                            self.routed_mask[pb + p] &= !(1 << idx);
                            self.routed_count[node] -= 1;
                            self.active_mask[pb + p] |= 1 << idx;
                            self.va_rr[pb + p] = Self::rr_next(idx, total_in_vcs);
                        }
                    }
                }
            }
        }
    }

    /// Stage 5: switch allocation + traversal, one flit per out-port and
    /// per in-port per cycle, work-active nodes only.
    fn switch_traversal(&mut self, now: u64) {
        let vcs = self.cfg.vcs;
        for w in 0..self.work_mask.len() {
            let mut bits = self.work_mask[w];
            while bits != 0 {
                let node = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // The seed engine zeroes this for every node during its
                // full emission scan; here the reset rides the switch
                // stage of active nodes (quiescent nodes have no flits to
                // arbitrate, so their stale masks are unobservable).
                self.in_port_used[node] = 0;
                let base = self.vc_base[node] as usize;
                let pb = self.port_base[node] as usize;
                let total_in_vcs = usize::from(self.total_in_vcs_of[node]);
                for p in 0..usize::from(self.out_ports_of[node]) {
                    // Only VCs actually Active on this port, in the same
                    // round-robin order a full scan from sa_rr would use.
                    let mask = self.active_mask[pb + p];
                    if mask == 0 {
                        continue;
                    }
                    let start = usize::from(self.sa_rr[pb + p]);
                    let mut winner: Option<(usize, u8)> = None;
                    for idx in cyclic_bits(mask, start) {
                        let m = self.slot_meta[base + idx];
                        debug_assert_eq!(meta::tag(m), meta::ACTIVE);
                        debug_assert_eq!(meta::out_port(m), p);
                        let in_port = usize::from(self.in_port_of_slot[base + idx]);
                        if self.in_port_used[node] & (1 << in_port) != 0 {
                            continue;
                        }
                        if meta::len(m) == 0 {
                            // Active VC with all buffered flits already
                            // forwarded (body flits still in transit).
                            continue;
                        }
                        let head = &self.flit_buf[(base + idx) * self.ring + meta::head(m)];
                        if head.ready > now {
                            continue;
                        }
                        let out_vc = meta::out_vc(m);
                        if p > 0 {
                            let lid = self.link_of_out_port[pb + p] as usize;
                            if self.credits[lid * vcs + out_vc] == 0 {
                                continue;
                            }
                        }
                        winner = Some((idx, out_vc as u8));
                        break;
                    }
                    let Some((idx, out_vc)) = winner else {
                        continue;
                    };
                    self.sa_rr[pb + p] = Self::rr_next(idx, total_in_vcs);
                    let flit = self.pop_flit(base + idx);
                    self.buffered[node] -= 1;
                    if self.buffered[node] == 0 {
                        self.clear_work(node);
                    }
                    let in_port = usize::from(self.in_port_of_slot[base + idx]);
                    self.in_port_used[node] |= 1 << in_port;
                    self.stats.router_flits[node] += 1;

                    // Return a credit upstream for the slot we just freed;
                    // an injection-port pop re-arms a parked source.
                    if in_port > 0 {
                        let up = self.link_of_in_port[self.in_port_base[node] as usize + in_port]
                            as usize;
                        self.pending_credits
                            .push((up * vcs + usize::from(self.vc_of_slot[base + idx])) as u32);
                    } else if self.nodes[node].emitting.is_some()
                        || !self.nodes[node].src_queue.is_empty()
                    {
                        self.set_src(node);
                    }

                    if p == 0 {
                        // Ejection.
                        let pid = flit.packet as usize;
                        self.packets[pid].ejected += 1;
                        self.stats.flits_delivered += 1;
                        self.active_flits -= 1;
                        if self.packets[pid].is_complete() {
                            let info = &self.packets[pid];
                            if info.inject_cycle != u64::MAX {
                                self.stats
                                    .record_packet(info.flits, now + 1 - info.inject_cycle);
                            }
                        }
                    } else {
                        let lid = self.link_of_out_port[pb + p] as usize;
                        self.credits[lid * vcs + usize::from(out_vc)] -= 1;
                        if self.express_link[lid] {
                            // Dateline: the packet is class B from here on.
                            self.class_of[flit.packet as usize] = VcClass::PostExpress;
                        }
                        self.stats.link_flits[lid] += 1;
                        let arrive = now + u64::from(self.latency_of_link[lid]);
                        self.wheel[(arrive & self.wheel_mask) as usize]
                            .push((lid as u32, out_vc, flit));
                        self.inflight_arrivals += 1;
                    }

                    if flit.is_tail {
                        self.out_holder[(pb + p) * vcs + usize::from(out_vc)] = None;
                        let m = self.slot_meta[base + idx] & meta::STATE_CLEAR;
                        self.slot_meta[base + idx] = m; // back to Idle
                        self.active_mask[pb + p] &= !(1 << idx);
                        if meta::len(m) > 0 {
                            // The next packet's head is already queued
                            // behind the departed tail: needs RC next
                            // cycle.
                            self.rc_dirty.push((base + idx) as u32);
                        }
                    }
                }
            }
        }
    }

    // ---- deadlock triage ------------------------------------------------

    /// Builds the channel wait-for graph of the stuck state and prints one
    /// cycle if present. Channels are (link, vc) pairs; injection VCs are
    /// virtual channels numbered past the links.
    fn dump_waitfor_cycle(&self) {
        let vcs = self.cfg.vcs;
        let links = self.topo.links().len();
        let chan = |lid: usize, vc: usize| lid * vcs + vc;
        let inj_chan = |node: usize, vc: usize| links * vcs + node * vcs + vc;
        let total = links * vcs + self.nodes.len() * vcs;
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (node, st) in self.nodes.iter().enumerate() {
            let base = self.vc_base[node] as usize;
            for idx in 0..st.in_ports() * vcs {
                let slot = base + idx;
                let m = self.slot_meta[slot];
                if meta::len(m) == 0 {
                    continue;
                }
                let in_port = idx / vcs;
                let in_vc = idx % vcs;
                let src_chan = if in_port == 0 {
                    inj_chan(node, in_vc)
                } else {
                    chan(st.in_links[in_port - 1].index(), in_vc)
                };
                let out_port = meta::out_port(m);
                match meta::tag(m) {
                    meta::ACTIVE if out_port > 0 => {
                        let out_vc = meta::out_vc(m);
                        let lid = st.out_links[out_port - 1].index();
                        if self.credits[lid * vcs + out_vc] == 0 {
                            edges[src_chan].push(chan(lid, out_vc));
                        }
                    }
                    meta::ROUTED if out_port > 0 => {
                        // Waiting for a held out VC in the packet's class.
                        let head = self.front_flit(slot).expect("nonempty");
                        let range = self.vc_range(self.class_of[head.packet as usize]);
                        let pb = self.port_base[node] as usize;
                        for v in range {
                            if self.out_holder[(pb + out_port) * vcs + v].is_some() {
                                let lid = st.out_links[out_port - 1].index();
                                edges[src_chan].push(chan(lid, v));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Iterative DFS cycle detection.
        let mut color = vec![0u8; total];
        let mut parent = vec![usize::MAX; total];
        for start in 0..total {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < edges[u].len() {
                    let v = edges[u][*ei];
                    *ei += 1;
                    if color[v] == 0 {
                        color[v] = 1;
                        parent[v] = u;
                        stack.push((v, 0));
                    } else if color[v] == 1 {
                        // Cycle found: unwind from u back to v.
                        let mut cyc = vec![v, u];
                        let mut w = u;
                        while w != v {
                            w = parent[w];
                            cyc.push(w);
                        }
                        eprintln!("WAIT-FOR CYCLE ({} channels):", cyc.len() - 1);
                        for &c in cyc.iter().rev() {
                            if c >= links * vcs {
                                let node = (c - links * vcs) / vcs;
                                eprintln!("  inj node {} vc {}", node, c % vcs);
                            } else {
                                let l = self.topo.link(hyppi_topology::LinkId((c / vcs) as u32));
                                eprintln!(
                                    "  link {}->{} ({:?}) vc {}",
                                    l.src.0,
                                    l.dst.0,
                                    l.class,
                                    c % vcs
                                );
                            }
                        }
                        return;
                    }
                } else {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
        eprintln!("no wait-for cycle found (stall, not deadlock)");
    }

    /// Prints every blocked head flit and why it cannot progress.
    fn dump_blocked(&self, now: u64) {
        self.dump_waitfor_cycle();
        let vcs = self.cfg.vcs;
        let mut lines = 0;
        for (node, st) in self.nodes.iter().enumerate() {
            let base = self.vc_base[node] as usize;
            for idx in 0..st.in_ports() * vcs {
                let slot = base + idx;
                let Some(head) = self.front_flit(slot) else {
                    continue;
                };
                let in_port = idx / vcs;
                let in_vc = idx % vcs;
                let m = self.slot_meta[slot];
                let out_port = meta::out_port(m);
                let reason = match meta::tag(m) {
                    meta::IDLE => "idle (RC pending)".to_string(),
                    meta::ROUTED => {
                        let pb = self.port_base[node] as usize;
                        let holders: Vec<String> = (0..vcs)
                            .map(|v| match self.out_holder[(pb + out_port) * vcs + v] {
                                None => format!("vc{v}:free"),
                                Some((ip, iv)) => format!("vc{v}:held({ip},{iv})"),
                            })
                            .collect();
                        format!("awaiting VA on out{} [{}]", out_port, holders.join(" "))
                    }
                    _ => {
                        let out_vc = meta::out_vc(m);
                        if out_port == 0 {
                            "active->eject".to_string()
                        } else {
                            let lid = st.out_links[out_port - 1];
                            format!(
                                "active out{} vc{} credits={} ready={}",
                                out_port,
                                out_vc,
                                self.credits[lid.index() * vcs + out_vc],
                                head.ready
                            )
                        }
                    }
                };
                eprintln!(
                    "cycle {now} node {node} in{in_port}.vc{in_vc} q={} pkt{} class={:?} dst={} {}",
                    meta::len(m),
                    head.packet,
                    self.class_of[head.packet as usize],
                    head.dst.0,
                    reason
                );
                lines += 1;
                if lines > 60 {
                    eprintln!("... (truncated)");
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::{Gbps, LinkTechnology};
    use hyppi_topology::{express_mesh, mesh, ExpressSpec, MeshSpec};
    use hyppi_traffic::TraceEvent;

    fn small_mesh(w: u16, h: u16) -> Topology {
        mesh(MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        })
    }

    fn run(topo: &Topology, events: Vec<TraceEvent>) -> SimStats {
        let routes = RoutingTable::compute_xy(topo);
        let trace = Trace::new("test", topo.num_nodes() as u16, 0.0, events);
        Simulator::new(topo, &routes, SimConfig::paper())
            .run_trace(&trace)
            .expect("run completes")
    }

    #[test]
    fn single_flit_zero_load_latency() {
        // 2×1 mesh, one hop: 3 (src router) + 1 (link) + 3 (dst router)
        // = 7 cycles.
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(1),
                flits: 1,
            }],
        );
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.all.max, 7);
        assert_eq!(stats.flits_delivered, 1);
    }

    #[test]
    fn latency_grows_by_four_per_electronic_hop() {
        // Zero-load: each extra hop adds 3 (router) + 1 (link).
        let t = small_mesh(8, 1);
        let lat = |dst: u16| {
            run(
                &t,
                vec![TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(dst),
                    flits: 1,
                }],
            )
            .all
            .max
        };
        assert_eq!(lat(1), 7);
        assert_eq!(lat(2), 11);
        assert_eq!(lat(7), 31);
    }

    #[test]
    fn data_packet_serialization_latency() {
        // A 32-flit packet: head arrives like a 1-flit packet, tail follows
        // 31 cycles later (1 flit/cycle link bandwidth).
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(1),
                flits: 32,
            }],
        );
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.all.max, 7 + 31);
        assert_eq!(stats.flits_delivered, 32);
    }

    #[test]
    fn optical_express_link_costs_two_cycles() {
        let spec = MeshSpec {
            width: 8,
            height: 1,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        let t = express_mesh(
            spec,
            ExpressSpec {
                span: 3,
                tech: LinkTechnology::Hyppi,
            },
        );
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(3),
                flits: 1,
            }],
        );
        // One express hop: 3 + 2 + 3 = 8 vs 3 regular hops (15).
        assert_eq!(stats.all.max, 8);
    }

    #[test]
    fn all_packets_delivered_under_load() {
        // Saturating burst: every node sends to the opposite corner region.
        let t = small_mesh(4, 4);
        let mut events = Vec::new();
        for s in 0..16u16 {
            for k in 0..8u16 {
                events.push(TraceEvent {
                    cycle: u64::from(k) * 2,
                    src: NodeId(s),
                    dst: NodeId(15 - s),
                    flits: if k % 2 == 0 { 32 } else { 1 },
                });
            }
        }
        let total_flits: u64 = events.iter().map(|e| u64::from(e.flits)).sum();
        let stats = run(&t, events);
        assert_eq!(stats.all.count, 16 * 8);
        assert_eq!(stats.flits_delivered, total_flits);
    }

    #[test]
    fn determinism() {
        let t = small_mesh(4, 4);
        let mk = || {
            let mut events = Vec::new();
            for s in 0..16u16 {
                events.push(TraceEvent {
                    cycle: 0,
                    src: NodeId(s),
                    dst: NodeId((s + 5) % 16),
                    flits: 32,
                });
            }
            events
        };
        let a = run(&t, mk());
        let b = run(&t, mk());
        assert_eq!(a, b);
    }

    #[test]
    fn congestion_increases_latency() {
        let t = small_mesh(4, 1);
        // One packet alone…
        let solo = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(3),
                flits: 32,
            }],
        );
        // …vs the same packet competing with cross traffic on the line.
        let mut events = vec![TraceEvent {
            cycle: 0,
            src: NodeId(0),
            dst: NodeId(3),
            flits: 32,
        }];
        for k in 0..6 {
            events.push(TraceEvent {
                cycle: k * 4,
                src: NodeId(1),
                dst: NodeId(3),
                flits: 32,
            });
        }
        let busy = run(&t, events);
        assert!(busy.all.max > solo.all.max);
        assert_eq!(busy.flits_delivered, 32 * 7);
    }

    #[test]
    fn express_mesh_under_all_to_all_drains() {
        // Deadlock regression test: span-5 express (the dip/overshoot case)
        // under all-to-all wormhole traffic.
        let spec = MeshSpec {
            width: 16,
            height: 2,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        for span in [3u16, 5, 15] {
            let t = express_mesh(
                spec,
                ExpressSpec {
                    span,
                    tech: LinkTechnology::Hyppi,
                },
            );
            let n = t.num_nodes() as u16;
            let mut events = Vec::new();
            for s in 0..n {
                for k in 1..n {
                    events.push(TraceEvent {
                        cycle: u64::from(k) * 8,
                        src: NodeId(s),
                        dst: NodeId((s + k) % n),
                        flits: 32,
                    });
                }
            }
            let stats = run(&t, events);
            assert_eq!(
                stats.all.count,
                u64::from(n) * u64::from(n - 1),
                "span {span}"
            );
        }
    }

    #[test]
    fn synthetic_injection_measures_only_after_warmup() {
        let t = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&t);
        let mut m = hyppi_traffic::TrafficMatrix::zero(16);
        for s in 0..16u16 {
            m.set(NodeId(s), NodeId((s + 3) % 16), 0.05);
        }
        let stats = Simulator::new(&t, &routes, SimConfig::paper())
            .run_synthetic(&m, 200, 800, 42)
            .expect("completes");
        assert!(stats.all.count > 0);
        // Delivered flits include warmup packets; measured count excludes.
        assert!(stats.flits_delivered >= stats.all.count);
    }

    #[test]
    fn express_path_memo_matches_ground_truth() {
        // The dateline classification relies on the memoized
        // express-on-path table; verify it against walking every route.
        let spec = MeshSpec {
            width: 16,
            height: 2,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        for span in [3u16, 5, 15] {
            let t = express_mesh(
                spec,
                ExpressSpec {
                    span,
                    tech: LinkTechnology::Hyppi,
                },
            );
            let routes = RoutingTable::compute_xy(&t);
            let sim = Simulator::new(&t, &routes, SimConfig::paper());
            for src in t.nodes() {
                for dst in t.nodes() {
                    if src == dst {
                        continue;
                    }
                    let mut at = src;
                    let mut crossed = false;
                    while at != dst {
                        let l = t.link(routes.next_link(at, dst).unwrap());
                        crossed |= l.is_express();
                        at = l.dst;
                    }
                    assert_eq!(
                        sim.route_uses_express(src, dst),
                        crossed,
                        "span {span}: {src}->{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_forward_skips_idle_gaps() {
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![
                TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(1),
                    flits: 1,
                },
                TraceEvent {
                    cycle: 1_000_000,
                    src: NodeId(1),
                    dst: NodeId(0),
                    flits: 1,
                },
            ],
        );
        assert_eq!(stats.all.count, 2);
        // Latency of the late packet is still 7: the gap was skipped, not
        // simulated.
        assert_eq!(stats.all.max, 7);
    }

    #[test]
    #[should_panic(expected = "latencies must be >= 1")]
    fn rejects_zero_latency_links() {
        // The arrival calendar books a flit at `now + latency`; latency 0
        // would land in the bucket stage 1 already drained this cycle and
        // deliver a whole wheel revolution late, silently breaking parity.
        let mut t = hyppi_topology::Topology::empty("zero-lat", 2, 1);
        t.add_bidi(
            NodeId(0),
            NodeId(1),
            hyppi_topology::LinkClass::Regular,
            LinkTechnology::Electronic,
            hyppi_phys::Micrometers::new(1000.0),
            0,
            Gbps::new(50.0),
        );
        let routes = RoutingTable::compute_xy(&t);
        let _ = Simulator::new(&t, &routes, SimConfig::paper());
    }

    #[test]
    fn wheel_covers_every_link_latency() {
        // The calendar's correctness needs wheel length > max link
        // latency; verify on the express mesh (2-cycle optical links).
        let t = express_mesh(
            MeshSpec::paper(LinkTechnology::Electronic),
            ExpressSpec {
                span: 5,
                tech: LinkTechnology::Hyppi,
            },
        );
        let routes = RoutingTable::compute_xy(&t);
        let sim = Simulator::new(&t, &routes, SimConfig::paper());
        let max_lat = t
            .links()
            .iter()
            .map(|l| u64::from(l.latency_cycles))
            .max()
            .unwrap();
        assert!(sim.wheel.len() as u64 > max_lat);
        assert!(sim.wheel.len().is_power_of_two());
    }

    #[test]
    fn active_sets_empty_after_drain() {
        // After a run drains, every active-set structure must be empty —
        // leaked membership would break the idle fast-forward.
        let t = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&t);
        let mut sim = Simulator::new(&t, &routes, SimConfig::paper());
        sim.admit(NodeId(0), NodeId(15), 32, 0);
        let mut now = 0;
        while !(sim.active_flits == 0 && sim.pending_sources == 0) {
            sim.step(now);
            now += 1;
            assert!(now < 10_000, "run did not drain");
        }
        assert!(sim.quiescent());
        assert!(sim.rc_dirty.is_empty());
        assert!(sim.wheel.iter().all(|b| b.is_empty()));
        assert_eq!(sim.inflight_arrivals, 0);
        assert!(sim.buffered.iter().all(|&b| b == 0));
        assert_eq!(sim.stats.flits_delivered, 32);
    }
}
