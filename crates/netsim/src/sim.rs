//! The single-shard simulator facade.
//!
//! Since the shard refactor, the engine core — calendar wheel, active
//! node bitsets, SoA flit slab, dirty-list route computation, mask-walk
//! arbitration — lives in [`crate::shard`] as `ShardState`: per-cycle
//! cost scales with the number of in-flight flits, not with network size
//! (the seed engine survives verbatim in [`crate::reference`] as the
//! parity oracle). [`Simulator`] is the P=1 case: one `ShardState` built
//! over the trivial partition, driven by the same lockstep run loop the
//! parallel [`crate::ShardedSimulator`] uses — with a single shard the
//! mailbox grid and barriers degenerate to no-ops, so the hot path is
//! identical to the pre-shard engine.
//!
//! Stage order, arbitration order, credit timing, and statistics are
//! bit-for-bit identical to the reference engine; `tests/parity.rs`
//! enforces this across seeds, topologies, and workloads, and
//! `tests/shard_parity.rs` pins the sharded engine against this one.

use crate::config::SimConfig;
use crate::shard::{
    import_shards, merge_stats, run_sharded, run_sharded_probed, run_sharded_until,
    snapshot_shards, EnginePlan, InjectTables, RunCursor, RunEnd, ShardState, Workload,
};
use crate::snapshot::{
    plan_fingerprint, synthetic_fingerprint, trace_fingerprint, Snapshot, SnapshotError,
};
use crate::stats::SimStats;
use crate::telemetry::Probe;
use hyppi_topology::{NodeId, Partition, RoutingTable, Topology};
use hyppi_traffic::{Trace, TrafficMatrix};
use rand::{rngs::StdRng, SeedableRng};

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded [`SimConfig::max_cycles`] without draining; with a
    /// correct configuration this indicates deadlock or overload.
    CycleLimit {
        /// Packets still incomplete at the limit.
        stuck_packets: u64,
    },
    /// A snapshot could not be restored (see [`SnapshotError`]).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { stuck_packets } => {
                write!(f, "cycle limit hit with {stuck_packets} packets in flight")
            }
            SimError::Snapshot(e) => write!(f, "snapshot restore failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SnapshotError> for SimError {
    fn from(e: SnapshotError) -> Self {
        SimError::Snapshot(e)
    }
}

/// Result of a bounded run ([`Simulator::run_trace_until`] and friends):
/// either the workload drained before the stop cycle, or the run paused
/// at the stop boundary and handed back a [`Snapshot`] to resume from.
// One RunOutcome exists per bounded run, so the variant-size asymmetry
// (inline SimStats vs a Vec-backed Snapshot) costs nothing worth boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run completed; here are its statistics.
    Finished(SimStats),
    /// The run paused at the requested cycle boundary; resume with the
    /// matching `resume_*` entry point (or persist the snapshot first —
    /// the byte format is stable, see `docs/SNAPSHOT_FORMAT.md`).
    Paused(Snapshot),
}

impl RunOutcome {
    /// Unwraps the completed-run statistics; panics on [`Paused`]
    /// (convenience for `stop_at = u64::MAX` call sites).
    ///
    /// [`Paused`]: RunOutcome::Paused
    pub fn expect_finished(self) -> SimStats {
        match self {
            RunOutcome::Finished(stats) => stats,
            RunOutcome::Paused(_) => panic!("run paused before completing"),
        }
    }

    /// Unwraps the pause snapshot; panics on [`Finished`] (convenience
    /// for call sites that know the workload outlives the stop cycle).
    ///
    /// [`Finished`]: RunOutcome::Finished
    pub fn expect_paused(self) -> Snapshot {
        match self {
            RunOutcome::Finished(_) => panic!("run finished before the stop cycle"),
            RunOutcome::Paused(snap) => snap,
        }
    }
}

/// Decodes `snap` against `plan`, checks the workload fingerprint, and
/// rebuilds shard state. `workload_hash` = 0 skips the workload check
/// (manual-stepping snapshots don't pin one); a snapshot taken with
/// hash 0 likewise resumes under any workload, with the trace cursor
/// rebuilt by scanning for the first event at or after the snapshot
/// cycle.
pub(crate) fn restore_shards(
    plan: &EnginePlan<'_>,
    snap: &Snapshot,
    workload_hash: u64,
) -> Result<(Vec<ShardState>, RunCursor), SimError> {
    let gs = snap.decode_for(plan_fingerprint(
        plan.topo,
        plan.routes,
        &plan.cfg,
        plan.baseline,
        plan.tenants,
    ))?;
    let stored = snap.workload_hash();
    if stored != 0 && workload_hash != 0 && stored != workload_hash {
        return Err(SimError::Snapshot(SnapshotError::WorkloadMismatch));
    }
    Ok(import_shards(plan, &gs)?)
}

/// Trace-event cursor for a snapshot that didn't pin this trace: the
/// first event not yet admitted at the snapshot boundary.
pub(crate) fn rescan_trace_cursor(trace: &Trace, now: u64) -> u64 {
    trace
        .events
        .iter()
        .position(|e| e.cycle >= now)
        .unwrap_or(trace.events.len()) as u64
}

/// The simulator. Construct once per (topology, routing) pair and run a
/// trace or a synthetic load.
pub struct Simulator<'a> {
    pub(crate) plan: EnginePlan<'a>,
    pub(crate) shard: ShardState,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator. `routes` must have been computed for `topo`
    /// (use [`RoutingTable::compute_xy`] — the deadlock-freedom argument
    /// assumes X-then-Y ordering).
    pub fn new(topo: &'a Topology, routes: &'a RoutingTable, cfg: SimConfig) -> Self {
        let plan = EnginePlan::new(topo, routes, cfg, Partition::single(topo));
        let shard = ShardState::new(&plan, 0);
        Simulator { plan, shard }
    }

    /// Whether the deterministic route src → dst crosses an express link
    /// (always `false` on topologies without express links).
    pub fn route_uses_express(&self, src: NodeId, dst: NodeId) -> bool {
        self.plan.route_uses_express(src, dst)
    }

    /// Installs the healthy-mesh baseline (topology + routes the faults
    /// were applied to) so admitted packets are charged
    /// [`SimStats::rerouted_hops`] for detours versus the healthy route.
    pub fn with_baseline(mut self, topo: &'a Topology, routes: &'a RoutingTable) -> Self {
        self.plan.set_baseline(topo, routes);
        self
    }

    /// Installs a node → tenant map: the run's [`SimStats`] then carries
    /// per-tenant lanes (see [`crate::TenantStats`]) split out of the
    /// aggregate.
    pub fn with_tenants(mut self, map: &'a hyppi_traffic::TenantMap) -> Self {
        self.plan.set_tenants(map);
        self.shard.stats.init_tenants(map.tenants);
        self
    }

    // ---- manual stepping (instrumentation API) --------------------------
    //
    // The `run_*` entry points own the clock, fast-forward idle gaps and
    // consume the simulator. For conservation audits and property tests
    // the engine can instead be driven cycle by cycle: `admit` packets,
    // `step` the clock, and read the gauges between cycles. No
    // fast-forwarding happens here — the caller advances `now` by 1.

    /// Queues a packet at its source NIC for manual stepping. `cycle` is
    /// the admission timestamp used for latency accounting (pass the
    /// current cycle). Mirrors the run loops' admission rule on faulted
    /// topologies: a pair with no route is dropped and counted in
    /// [`SimStats::unreachable_pairs`] instead of being queued.
    pub fn admit(&mut self, src: NodeId, dst: NodeId, flits: u32, cycle: u64) {
        if !self.plan.routes.reachable(src, dst) {
            self.shard.stats.unreachable_pairs += 1;
            return;
        }
        self.shard.admit(&self.plan, src, dst, flits, cycle);
    }

    /// Runs one simulated cycle (all five pipeline stages plus the
    /// credit drain). Call with a monotonically increasing `now`.
    pub fn step(&mut self, now: u64) {
        self.shard.step(&self.plan, now);
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.shard.stats
    }

    /// Flits currently inside the network: buffered in router VCs plus
    /// in flight on links. Together with [`SimStats::flits_injected`] and
    /// [`SimStats::flits_delivered`] this forms an independently checkable
    /// conservation ledger: injected = delivered + in-network, at every
    /// cycle boundary.
    pub fn in_network_flits(&self) -> u64 {
        self.shard
            .ctl
            .iter()
            .map(|c| u64::from(c.buffered))
            .sum::<u64>()
            + self.shard.inflight_arrivals
    }

    /// Packets admitted but not yet fully emitted (NIC queues plus
    /// in-progress emissions).
    pub fn pending_packets(&self) -> u64 {
        self.shard.pending_sources
    }

    /// Closed-loop window occupancy per node (packets emitted but not yet
    /// fully ejected), node-id indexed. All-zero on open-loop
    /// configurations.
    pub fn outstanding_packets(&self) -> &[u32] {
        &self.shard.outstanding
    }

    /// Runs a trace to completion.
    pub fn run_trace(self, trace: &Trace) -> Result<SimStats, SimError> {
        self.run_trace_impl(trace, false)
    }

    /// Like [`run_trace`](Self::run_trace), but on a cycle-limit failure
    /// prints a blocked-state dump to stderr before returning the error
    /// (deadlock triage aid).
    pub fn run_trace_debug(self, trace: &Trace) -> Result<SimStats, SimError> {
        self.run_trace_impl(trace, true)
    }

    /// The single trace-driven run loop; `dump_on_stall` enables the
    /// deadlock-triage dump on cycle-limit failure.
    fn run_trace_impl(self, trace: &Trace, dump_on_stall: bool) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let Simulator { plan, shard } = self;
        run_sharded(&plan, vec![shard], 1, Workload::Trace(trace), dump_on_stall)
    }

    /// Runs Bernoulli-injected synthetic traffic: each node injects 1-flit
    /// packets at its row rate of `matrix`, destinations sampled from the
    /// row distribution. Packets injected during the first `warmup` cycles
    /// are not measured; injection stops after `warmup + measure` cycles and
    /// the network drains.
    pub fn run_synthetic(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        let Simulator { plan, shard } = self;
        let tables = InjectTables::new(plan.topo, matrix);
        run_sharded(
            &plan,
            vec![shard],
            1,
            Workload::Synthetic {
                tables: &tables,
                warmup,
                measure,
                seed,
            },
            false,
        )
    }

    // ---- telemetry -------------------------------------------------------

    /// [`Self::run_trace`] with a telemetry probe attached (see
    /// [`crate::telemetry`]). The statistics are bit-for-bit those of
    /// the plain run — probes observe, they never perturb
    /// (`tests/telemetry_parity.rs` pins this).
    pub fn run_trace_probed<P: Probe>(
        self,
        trace: &Trace,
        probe: &mut P,
    ) -> Result<SimStats, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let Simulator { plan, shard } = self;
        run_sharded_probed(
            &plan,
            vec![shard],
            1,
            Workload::Trace(trace),
            false,
            probe,
            None,
        )
    }

    /// [`Self::run_synthetic`] with a telemetry probe attached — same
    /// contract as [`Self::run_trace_probed`].
    pub fn run_synthetic_probed<P: Probe>(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
        probe: &mut P,
    ) -> Result<SimStats, SimError> {
        let Simulator { plan, shard } = self;
        let tables = InjectTables::new(plan.topo, matrix);
        run_sharded_probed(
            &plan,
            vec![shard],
            1,
            Workload::Synthetic {
                tables: &tables,
                warmup,
                measure,
                seed,
            },
            false,
            probe,
            None,
        )
    }

    // ---- checkpoint / restore -------------------------------------------

    /// Serializes the engine state at the cycle boundary `now` (cycles
    /// `0..now` simulated, `now` not yet). For use with the manual
    /// stepping API — the caller owns the clock, so it supplies the
    /// boundary; the snapshot pins no workload (any `resume_*` accepts
    /// it, rebuilding the trace cursor by scanning). Bounded runs
    /// ([`run_trace_until`](Self::run_trace_until)) produce their own
    /// snapshots instead.
    pub fn snapshot(&self, now: u64) -> Snapshot {
        let cursor = RunCursor {
            now,
            next_event: 0,
            rng: StdRng::seed_from_u64(0).state(),
        };
        snapshot_shards(&self.plan, std::slice::from_ref(&self.shard), &cursor, 0)
    }

    /// Rebuilds a simulator from a snapshot, replacing this one's
    /// (necessarily fresh) state. The snapshot may have been taken by
    /// any engine at any shard count — the format is
    /// partition-independent — but must match this simulator's topology,
    /// routing, and configuration (fingerprint-checked). Continue with
    /// the manual stepping API from cycle [`Snapshot::now`], or use a
    /// `resume_*` entry point to rejoin a paused run.
    pub fn restore(self, snap: &Snapshot) -> Result<Self, SimError> {
        let Simulator { plan, .. } = self;
        let (mut shards, _) = restore_shards(&plan, snap, 0)?;
        let shard = shards.pop().expect("single partition has one shard");
        debug_assert!(shards.is_empty());
        Ok(Simulator { plan, shard })
    }

    /// Runs a trace, pausing at the cycle boundary `stop_at` if the
    /// workload hasn't drained by then. Pausing at `c` and resuming
    /// yields statistics bit-for-bit identical to the uninterrupted run
    /// — `tests/snapshot_parity.rs` pins this.
    pub fn run_trace_until(self, trace: &Trace, stop_at: u64) -> Result<RunOutcome, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let Simulator { plan, shard } = self;
        let workload = Workload::Trace(trace);
        let start = RunCursor::fresh(&workload);
        finish_or_pause(&plan, vec![shard], 1, workload, start, stop_at, || {
            trace_fingerprint(trace)
        })
    }

    /// Resumes a paused trace run from `snap`, itself pausing again at
    /// `stop_at` if the trace hasn't drained (pass `u64::MAX` to run to
    /// completion). The snapshot must carry this trace's fingerprint, or
    /// none (manual snapshots).
    pub fn resume_trace_until(
        self,
        snap: &Snapshot,
        trace: &Trace,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        assert_eq!(usize::from(trace.num_nodes), self.plan.topo.num_nodes());
        let Simulator { plan, .. } = self;
        let (shards, mut cursor) = restore_shards(&plan, snap, trace_fingerprint(trace))?;
        if snap.workload_hash() == 0 {
            cursor.next_event = rescan_trace_cursor(trace, cursor.now);
        }
        finish_or_pause(
            &plan,
            shards,
            1,
            Workload::Trace(trace),
            cursor,
            stop_at,
            || trace_fingerprint(trace),
        )
    }

    /// Resumes a paused trace run to completion.
    pub fn resume_trace(self, snap: &Snapshot, trace: &Trace) -> Result<SimStats, SimError> {
        Ok(self
            .resume_trace_until(snap, trace, u64::MAX)?
            .expect_finished())
    }

    /// Runs synthetic traffic, pausing at the cycle boundary `stop_at`
    /// if the run hasn't drained by then. Pausing at the end of warmup
    /// and resuming per load point is what makes warm-start sweeps cheap
    /// (see [`crate::SweepConfig::cold`]).
    pub fn run_synthetic_until(
        self,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        let Simulator { plan, shard } = self;
        let tables = InjectTables::new(plan.topo, matrix);
        let workload = Workload::Synthetic {
            tables: &tables,
            warmup,
            measure,
            seed,
        };
        let start = RunCursor::fresh(&workload);
        finish_or_pause(&plan, vec![shard], 1, workload, start, stop_at, || {
            synthetic_fingerprint(warmup, measure, seed)
        })
    }

    /// Resumes a paused synthetic run to completion. The snapshot must
    /// match `(warmup, measure, seed)` — the traffic matrix is
    /// deliberately *not* fingerprinted, so a post-warmup snapshot can
    /// be resumed at each rate-grid point (the matrix only shapes
    /// injections after the snapshot boundary; the RNG stream resumes
    /// from the cursor either way).
    pub fn resume_synthetic(
        self,
        snap: &Snapshot,
        matrix: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        let Simulator { plan, .. } = self;
        let tables = InjectTables::new(plan.topo, matrix);
        let (shards, cursor) =
            restore_shards(&plan, snap, synthetic_fingerprint(warmup, measure, seed))?;
        let workload = Workload::Synthetic {
            tables: &tables,
            warmup,
            measure,
            seed,
        };
        Ok(finish_or_pause(&plan, shards, 1, workload, cursor, u64::MAX, || 0)?.expect_finished())
    }
}

/// Shared tail of every bounded run: drive the engine, then either merge
/// final statistics or serialize the pause snapshot (fingerprinting the
/// workload via `workload_hash`, evaluated only on pause).
pub(crate) fn finish_or_pause(
    plan: &EnginePlan<'_>,
    mut shards: Vec<ShardState>,
    threads: usize,
    workload: Workload<'_>,
    start: RunCursor,
    stop_at: u64,
    workload_hash: impl FnOnce() -> u64,
) -> Result<RunOutcome, SimError> {
    let end = run_sharded_until(plan, &mut shards, threads, workload, false, start, stop_at)?;
    Ok(match end {
        RunEnd::Done(cycles) => RunOutcome::Finished(merge_stats(plan, &shards, cycles)),
        RunEnd::Stopped(cursor) => {
            RunOutcome::Paused(snapshot_shards(plan, &shards, &cursor, workload_hash()))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::{Gbps, LinkTechnology};
    use hyppi_topology::{express_mesh, mesh, ExpressSpec, MeshSpec};
    use hyppi_traffic::TraceEvent;

    fn small_mesh(w: u16, h: u16) -> Topology {
        mesh(MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        })
    }

    fn run(topo: &Topology, events: Vec<TraceEvent>) -> SimStats {
        let routes = RoutingTable::compute_xy(topo);
        let trace = Trace::new("test", topo.num_nodes() as u16, 0.0, events);
        Simulator::new(topo, &routes, SimConfig::paper())
            .run_trace(&trace)
            .expect("run completes")
    }

    #[test]
    fn single_flit_zero_load_latency() {
        // 2×1 mesh, one hop: 3 (src router) + 1 (link) + 3 (dst router)
        // = 7 cycles.
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(1),
                flits: 1,
            }],
        );
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.all.max, 7);
        assert_eq!(stats.flits_delivered, 1);
    }

    #[test]
    fn latency_grows_by_four_per_electronic_hop() {
        // Zero-load: each extra hop adds 3 (router) + 1 (link).
        let t = small_mesh(8, 1);
        let lat = |dst: u16| {
            run(
                &t,
                vec![TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(dst),
                    flits: 1,
                }],
            )
            .all
            .max
        };
        assert_eq!(lat(1), 7);
        assert_eq!(lat(2), 11);
        assert_eq!(lat(7), 31);
    }

    #[test]
    fn data_packet_serialization_latency() {
        // A 32-flit packet: head arrives like a 1-flit packet, tail follows
        // 31 cycles later (1 flit/cycle link bandwidth).
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(1),
                flits: 32,
            }],
        );
        assert_eq!(stats.all.count, 1);
        assert_eq!(stats.all.max, 7 + 31);
        assert_eq!(stats.flits_delivered, 32);
    }

    #[test]
    fn optical_express_link_costs_two_cycles() {
        let spec = MeshSpec {
            width: 8,
            height: 1,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        let t = express_mesh(
            spec,
            ExpressSpec {
                span: 3,
                tech: LinkTechnology::Hyppi,
            },
        );
        let stats = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(3),
                flits: 1,
            }],
        );
        // One express hop: 3 + 2 + 3 = 8 vs 3 regular hops (15).
        assert_eq!(stats.all.max, 8);
    }

    #[test]
    fn all_packets_delivered_under_load() {
        // Saturating burst: every node sends to the opposite corner region.
        let t = small_mesh(4, 4);
        let mut events = Vec::new();
        for s in 0..16u16 {
            for k in 0..8u16 {
                events.push(TraceEvent {
                    cycle: u64::from(k) * 2,
                    src: NodeId(s),
                    dst: NodeId(15 - s),
                    flits: if k % 2 == 0 { 32 } else { 1 },
                });
            }
        }
        let total_flits: u64 = events.iter().map(|e| u64::from(e.flits)).sum();
        let stats = run(&t, events);
        assert_eq!(stats.all.count, 16 * 8);
        assert_eq!(stats.flits_delivered, total_flits);
    }

    #[test]
    fn determinism() {
        let t = small_mesh(4, 4);
        let mk = || {
            let mut events = Vec::new();
            for s in 0..16u16 {
                events.push(TraceEvent {
                    cycle: 0,
                    src: NodeId(s),
                    dst: NodeId((s + 5) % 16),
                    flits: 32,
                });
            }
            events
        };
        let a = run(&t, mk());
        let b = run(&t, mk());
        assert_eq!(a, b);
    }

    #[test]
    fn congestion_increases_latency() {
        let t = small_mesh(4, 1);
        // One packet alone…
        let solo = run(
            &t,
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(3),
                flits: 32,
            }],
        );
        // …vs the same packet competing with cross traffic on the line.
        let mut events = vec![TraceEvent {
            cycle: 0,
            src: NodeId(0),
            dst: NodeId(3),
            flits: 32,
        }];
        for k in 0..6 {
            events.push(TraceEvent {
                cycle: k * 4,
                src: NodeId(1),
                dst: NodeId(3),
                flits: 32,
            });
        }
        let busy = run(&t, events);
        assert!(busy.all.max > solo.all.max);
        assert_eq!(busy.flits_delivered, 32 * 7);
    }

    #[test]
    fn express_mesh_under_all_to_all_drains() {
        // Deadlock regression test: span-5 express (the dip/overshoot case)
        // under all-to-all wormhole traffic.
        let spec = MeshSpec {
            width: 16,
            height: 2,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        for span in [3u16, 5, 15] {
            let t = express_mesh(
                spec,
                ExpressSpec {
                    span,
                    tech: LinkTechnology::Hyppi,
                },
            );
            let n = t.num_nodes() as u16;
            let mut events = Vec::new();
            for s in 0..n {
                for k in 1..n {
                    events.push(TraceEvent {
                        cycle: u64::from(k) * 8,
                        src: NodeId(s),
                        dst: NodeId((s + k) % n),
                        flits: 32,
                    });
                }
            }
            let stats = run(&t, events);
            assert_eq!(
                stats.all.count,
                u64::from(n) * u64::from(n - 1),
                "span {span}"
            );
        }
    }

    #[test]
    fn synthetic_injection_measures_only_after_warmup() {
        let t = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&t);
        let mut m = hyppi_traffic::TrafficMatrix::zero(16);
        for s in 0..16u16 {
            m.set(NodeId(s), NodeId((s + 3) % 16), 0.05);
        }
        let stats = Simulator::new(&t, &routes, SimConfig::paper())
            .run_synthetic(&m, 200, 800, 42)
            .expect("completes");
        assert!(stats.all.count > 0);
        // Delivered flits include warmup packets; measured count excludes.
        assert!(stats.flits_delivered >= stats.all.count);
    }

    #[test]
    fn express_path_memo_matches_ground_truth() {
        // The dateline classification relies on the memoized
        // express-on-path table; verify it against walking every route.
        let spec = MeshSpec {
            width: 16,
            height: 2,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        };
        for span in [3u16, 5, 15] {
            let t = express_mesh(
                spec,
                ExpressSpec {
                    span,
                    tech: LinkTechnology::Hyppi,
                },
            );
            let routes = RoutingTable::compute_xy(&t);
            let sim = Simulator::new(&t, &routes, SimConfig::paper());
            for src in t.nodes() {
                for dst in t.nodes() {
                    if src == dst {
                        continue;
                    }
                    let mut at = src;
                    let mut crossed = false;
                    while at != dst {
                        let l = t.link(routes.next_link(at, dst).unwrap());
                        crossed |= l.is_express();
                        at = l.dst;
                    }
                    assert_eq!(
                        sim.route_uses_express(src, dst),
                        crossed,
                        "span {span}: {src}->{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_forward_skips_idle_gaps() {
        let t = small_mesh(2, 1);
        let stats = run(
            &t,
            vec![
                TraceEvent {
                    cycle: 0,
                    src: NodeId(0),
                    dst: NodeId(1),
                    flits: 1,
                },
                TraceEvent {
                    cycle: 1_000_000,
                    src: NodeId(1),
                    dst: NodeId(0),
                    flits: 1,
                },
            ],
        );
        assert_eq!(stats.all.count, 2);
        // Latency of the late packet is still 7: the gap was skipped, not
        // simulated.
        assert_eq!(stats.all.max, 7);
    }

    #[test]
    #[should_panic(expected = "latencies must be >= 1")]
    fn rejects_zero_latency_links() {
        // The arrival calendar books a flit at `now + latency`; latency 0
        // would land in the bucket stage 1 already drained this cycle and
        // deliver a whole wheel revolution late, silently breaking parity.
        let mut t = hyppi_topology::Topology::empty("zero-lat", 2, 1);
        t.add_bidi(
            NodeId(0),
            NodeId(1),
            hyppi_topology::LinkClass::Regular,
            LinkTechnology::Electronic,
            hyppi_phys::Micrometers::new(1000.0),
            0,
            Gbps::new(50.0),
        );
        let routes = RoutingTable::compute_xy(&t);
        let _ = Simulator::new(&t, &routes, SimConfig::paper());
    }

    #[test]
    fn wheel_covers_every_link_latency() {
        // The calendar's correctness needs wheel length > max link
        // latency; verify on the express mesh (2-cycle optical links).
        let t = express_mesh(
            MeshSpec::paper(LinkTechnology::Electronic),
            ExpressSpec {
                span: 5,
                tech: LinkTechnology::Hyppi,
            },
        );
        let routes = RoutingTable::compute_xy(&t);
        let sim = Simulator::new(&t, &routes, SimConfig::paper());
        let max_lat = t
            .links()
            .iter()
            .map(|l| u64::from(l.latency_cycles))
            .max()
            .unwrap();
        assert!(sim.shard.wheel.len() as u64 > max_lat);
        assert!(sim.shard.wheel.len().is_power_of_two());
    }

    #[test]
    fn active_sets_empty_after_drain() {
        // After a run drains, every active-set structure must be empty —
        // leaked membership would break the idle fast-forward.
        let t = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&t);
        let mut sim = Simulator::new(&t, &routes, SimConfig::paper());
        sim.shard.admit(&sim.plan, NodeId(0), NodeId(15), 32, 0);
        let mut now = 0;
        while !(sim.shard.active_flits == 0 && sim.shard.pending_sources == 0) {
            sim.shard.step(&sim.plan, now);
            now += 1;
            assert!(now < 10_000, "run did not drain");
        }
        assert!(sim.shard.quiescent());
        assert!(sim.shard.rc_dirty.is_empty());
        assert!(sim.shard.wheel.iter().all(|b| b.is_empty()));
        assert_eq!(sim.shard.inflight_arrivals, 0);
        assert!(sim.shard.ctl.iter().all(|c| c.buffered == 0));
        assert_eq!(sim.shard.stats.flits_delivered, 32);
    }
}
