//! Shared JSON writer — a small value tree plus an escaping-correct
//! pretty renderer.
//!
//! The vendored `serde` derives are no-ops, so every machine-readable
//! export in this repo (the `repro load_sweep`/`fault_sweep` datasets,
//! `BENCH_netsim.json`, the telemetry JSONL/Chrome-trace files) is
//! hand-rolled. Before this module each emitter carried its own string
//! escaping and its own trailing-comma bookkeeping; they now all build a
//! [`Json`] tree and render it here, so escaping is correct (full control
//! character coverage, not just `"` and `\`) and well-formedness is
//! structural instead of asserted by brace counting.
//!
//! Numbers: integers keep full 64-bit precision ([`Json::UInt`] /
//! [`Json::Int`]); floats that must stay diff-stable across records use
//! [`Json::fixed`] (fixed decimal places, pre-rendered); non-finite
//! floats render as `null` (JSON has no NaN).

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer, rendered exactly.
    UInt(u64),
    /// Signed integer, rendered exactly.
    Int(i64),
    /// Float, shortest representation; NaN/infinity render as `null`.
    Num(f64),
    /// A pre-rendered numeric literal (see [`Json::fixed`]). The caller
    /// guarantees it is a valid JSON number; it is emitted verbatim.
    Raw(String),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A float rendered with exactly `decimals` decimal places — the
    /// diff-stable form every fixed-precision field of the exports uses.
    /// Non-finite values become `null`.
    pub fn fixed(v: f64, decimals: usize) -> Json {
        if v.is_finite() {
            Json::Raw(format!("{v:.decimals$}"))
        } else {
            Json::Null
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent) with a
    /// trailing newline, matching the repo's existing export layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value on a single line (no indentation) — the JSONL
    /// form used by the telemetry exports.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    let _ = write!(out, "\"{}\": ", escape(key));
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
                }
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Raw(lit) => out.push_str(lit),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": ", escape(key));
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Escapes a string for embedding between JSON quotes: `"`, `\`, and
/// every control character below 0x20 (named escapes where JSON has
/// them, `\u00XX` otherwise).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for [`Json::Obj`] that keeps call sites flat:
/// `Obj::new().field("a", 1u64).field("b", "x").build()`.
#[derive(Debug, Default, Clone)]
pub struct Obj(Vec<(String, Json)>);

impl Obj {
    /// An empty object builder.
    pub fn new() -> Self {
        Obj(Vec::new())
    }

    /// Appends one field.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.0.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

impl From<Obj> for Json {
    fn from(o: Obj) -> Json {
        o.build()
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<u8> for Json {
    fn from(v: u8) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape(r"a\b"), r"a\\b");
        assert_eq!(escape("line1\nline2\ttab"), "line1\\nline2\\ttab");
        assert_eq!(escape("\r\u{08}\u{0C}"), "\\r\\b\\f");
        assert_eq!(escape("\u{01}\u{1f}"), "\\u0001\\u001f");
        // Non-control unicode passes through untouched.
        assert_eq!(escape("héllo ✓"), "héllo ✓");
    }

    #[test]
    fn escaping_applies_to_keys_and_values() {
        let j = Obj::new().field("ke\"y", "va\\lue\n").build();
        assert_eq!(j.render_compact(), r#"{"ke\"y": "va\\lue\n"}"#);
    }

    #[test]
    fn empty_collections_render_inline() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
        let j = Obj::new()
            .field("empty_arr", Json::Arr(vec![]))
            .field("empty_obj", Json::Obj(vec![]))
            .build();
        assert_eq!(
            j.render(),
            "{\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n"
        );
    }

    #[test]
    fn numbers_keep_precision_and_reject_nonfinite() {
        // Integers above 2^53 would lose precision as f64; UInt keeps
        // them exact.
        let big = u64::MAX;
        assert_eq!(Json::UInt(big).render_compact(), format!("{big}"));
        assert_eq!(Json::Int(-42).render_compact(), "-42");
        assert_eq!(Json::Num(0.25).render_compact(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render_compact(), "null");
        assert_eq!(Json::fixed(1.0 / 3.0, 4).render_compact(), "0.3333");
        assert_eq!(Json::fixed(f64::NAN, 4).render_compact(), "null");
    }

    #[test]
    fn nested_pretty_render_is_balanced_and_ordered() {
        let j = Obj::new()
            .field("name", "sweep")
            .field("stable", true)
            .field("missing", Json::Null)
            .field(
                "points",
                Json::Arr(vec![
                    Obj::new().field("offered", Json::fixed(0.02, 4)).build(),
                    Obj::new().field("offered", Json::fixed(0.05, 4)).build(),
                ]),
            )
            .build();
        let r = j.render();
        assert_eq!(r.matches('{').count(), r.matches('}').count());
        assert_eq!(r.matches('[').count(), r.matches(']').count());
        // Insertion order is preserved.
        assert!(r.find("\"name\"").unwrap() < r.find("\"points\"").unwrap());
        assert!(r.contains("\"offered\": 0.0200"));
        assert!(r.ends_with("}\n"));
    }

    #[test]
    fn option_maps_to_null_or_value() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(Json::from(some).render_compact(), "7");
        assert_eq!(Json::from(none).render_compact(), "null");
    }
}
