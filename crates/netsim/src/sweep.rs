//! Load sweeps, saturation search, and the parallel batch runner.
//!
//! The paper's headline results are latency-vs-load curves and saturation
//! throughput; this module turns the single-run [`Simulator`] into a
//! batch instrument:
//!
//! * [`parallel_map`] — the workspace's scoped-thread fan-out (moved here
//!   from `hyppi-analytic`, which re-exports it, so the simulator crate
//!   can batch its own runs without a dependency cycle);
//! * [`SweepRunner`] — fans independent synthetic runs (injection-rate
//!   grid × seeds) across threads and merges each rate's seeds into one
//!   [`LoadPoint`] with mean/p50/p95/p99 latency and accepted throughput;
//! * [`SweepRunner::find_saturation`] — bisection search for the smallest
//!   offered load whose mean latency exceeds a configured multiple of the
//!   zero-load latency (or whose run no longer completes).
//!
//! The [`SweepConfig`] knobs compose: [`SweepConfig::with_shards`]
//! routes every run through the sharded engine (opening 32×32+ meshes)
//! and [`SweepConfig::closed_loop`] switches every run to credit-limited
//! NICs — together they power `repro load_sweep32 --closed-loop WINDOW
//! --shards P`, the large-mesh accepted-load curves. Results are
//! bit-for-bit independent of either knob's wall-clock effect.
//!
//! ## Warm-start sweeps
//!
//! By default the runner pays the warm-up phase **once per (pattern,
//! seed)** instead of once per rate-grid point: it runs the anchor
//! matrix (the pattern at [`SweepConfig::zero_load_rate`]) up to the
//! warm-up boundary, snapshots the engine there
//! ([`Simulator::run_synthetic_until`]), and resumes that [`Snapshot`]
//! for every probed rate — the measurement window then runs under the
//! point's own matrix (the snapshot workload fingerprint deliberately
//! excludes the matrix to permit exactly this rate switch). Anchors are
//! cached per pattern inside the runner, so a grid and the saturation
//! bisection that follows share them. [`SweepConfig::cold`] restores
//! the one-warm-up-per-point protocol; [`SweepRunner::run_point`] is
//! always cold so single-point probes (e.g. the public zero-load
//! latency) never depend on cache state. At the anchor rate itself a
//! warm point is bit-for-bit identical to a cold one (resuming a run's
//! own pause is exact); at other rates the two protocols differ only in
//! the pre-measurement traffic history, identically across engines and
//! shard counts.
//!
//! Every run is deterministic given its seed, so sweep results — including
//! the bisection trajectory — are bit-for-bit reproducible.

use crate::config::SimConfig;
use crate::shard::ShardedSimulator;
use crate::sim::{RunOutcome, SimError, Simulator};
use crate::snapshot::Snapshot;
use crate::stats::{LatencyStats, SimStats};
use crate::telemetry::Probe;
use hyppi_topology::{FaultSpec, NodeId, RoutingTable, ShardSpec, Topology};
use hyppi_traffic::{BurstSpec, TenantMap, TenantSpec, TrafficMatrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Applies `f` to every item on a pool of scoped worker threads, returning
/// outputs in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    // Work queue: job indices claimed atomically; items handed out through
    // per-slot mutexes so workers can take them by value.
    let jobs = AtomicUsize::new(0);
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = jobs.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i]
                    .lock()
                    .expect("item mutex not poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let out = f(item);
                *slots[i].lock().expect("slot mutex not poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot mutex not poisoned")
                .expect("every index produced a result")
        })
        .collect()
}

/// Sweep run-control parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Injection cycles discarded before measurement starts.
    pub warmup: u64,
    /// Measured injection cycles per run.
    pub measure: u64,
    /// RNG seeds; each offered load runs once per seed and the seeds'
    /// statistics are merged.
    pub seeds: Vec<u64>,
    /// A load is saturated when its mean latency exceeds
    /// `sat_multiple × zero-load latency` (or a run hits the cycle cap).
    pub sat_multiple: f64,
    /// Offered load used to probe the zero-load latency.
    pub zero_load_rate: f64,
    /// Bisection terminates when the load bracket is narrower than this.
    pub tolerance: f64,
    /// Per-run cycle cap; hitting it marks the point unstable.
    pub run_max_cycles: u64,
    /// Shards per run: 1 (default) uses the single-shard engine; > 1
    /// partitions each run across a near-square shard grid
    /// ([`ShardSpec::for_count`]). Results are bit-for-bit identical
    /// either way — this is a wall-clock knob for large meshes (32×32+).
    pub shards: usize,
    /// Worker threads per sharded run: 0 (default) runs one worker per
    /// shard; 1 keeps intra-run execution on the batch worker's thread
    /// (useful when the seed × rate fan-out already saturates the host).
    pub threads: usize,
    /// Conservative-lookahead cap per sharded run: 0 (default) keeps
    /// the window the partition derives from its minimum boundary-link
    /// latency; 1 forces per-cycle exchanges (the pre-lookahead
    /// engine); ≥ 2 caps the derived window. Results are bit-for-bit
    /// identical at any setting — another wall-clock knob.
    pub lookahead: u64,
    /// Closed-loop NIC window per run: 0 (default) is open-loop
    /// injection; > 0 caps each source at that many in-network packets
    /// (see [`crate::SimConfig::max_outstanding`]). Closed-loop sweeps
    /// measure *network* latency and an accepted-load curve that
    /// flattens at saturation instead of diverging.
    pub max_outstanding: usize,
    /// Closed-loop saturation criterion: a load is saturated once its
    /// accepted throughput falls below `(1 - accept_epsilon) ×` the
    /// offered load — i.e. the marginal accepted-per-offered has
    /// collapsed and the accepted curve has hit its plateau. Unused
    /// open-loop (there the latency multiple is the criterion).
    pub accept_epsilon: f64,
    /// Fault set applied to the (healthy) sweep topology: every run then
    /// simulates the faulted mesh with fault-avoiding up*/down* routes,
    /// charging `SimStats::rerouted_hops` against the healthy baseline.
    /// `None` (default) sweeps the topology as given.
    pub faults: Option<FaultSpec>,
    /// Temporal injection modulation applied to every run (see
    /// [`crate::SimConfig::burst`]): [`BurstSpec::Steady`] (default)
    /// keeps plain Bernoulli injection; ON/OFF and MMPP shapes burst the
    /// same mean load. Orthogonal to the spatial pattern — the pattern
    /// decides *where*, the burst process decides *when*.
    pub burst: BurstSpec,
    /// Multi-tenant partitioning: `Some` co-schedules the spec's
    /// workloads on disjoint mesh tiles and every [`LoadPoint`] gains
    /// per-tenant lanes. `None` (default) sweeps single-tenant.
    pub tenants: Option<TenantSpec>,
    /// `true` re-runs the warm-up phase for every rate-grid point (the
    /// pre-snapshot protocol); `false` (default) warm-starts each point
    /// from a cached post-warm-up [`Snapshot`] of the pattern's anchor
    /// run, paying warm-up once per seed instead of once per point (see
    /// the module docs). Warm runs stay fully deterministic and
    /// engine/shard-count independent.
    pub cold: bool,
}

impl SweepConfig {
    /// Defaults sized for the paper's 16×16 mesh: 500 warm-up + 2000
    /// measured cycles, two seeds, saturation at 3× zero-load latency.
    pub fn paper() -> Self {
        SweepConfig {
            warmup: 500,
            measure: 2000,
            seeds: vec![11, 42],
            sat_multiple: 3.0,
            zero_load_rate: 0.005,
            tolerance: 0.01,
            run_max_cycles: 2_000_000,
            shards: 1,
            threads: 0,
            lookahead: 0,
            max_outstanding: 0,
            accept_epsilon: 0.05,
            faults: None,
            burst: BurstSpec::Steady,
            tenants: None,
            cold: false,
        }
    }

    /// Routes every run through the sharded engine with a near-square
    /// grid of `shards` tiles.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard required");
        self.shards = shards;
        self
    }

    /// Caps the conservative-lookahead window of every sharded run
    /// (see [`SweepConfig::lookahead`]).
    pub fn with_lookahead(mut self, window: u64) -> Self {
        self.lookahead = window;
        self
    }

    /// Switches every run to closed-loop injection with a per-source
    /// window of `window` outstanding packets.
    pub fn closed_loop(mut self, window: usize) -> Self {
        assert!(window >= 1, "closed-loop window must admit a packet");
        self.max_outstanding = window;
        self
    }

    /// Applies a fault set to every run of the sweep (see
    /// [`SweepConfig::faults`]). [`SweepRunner::new`] panics if the spec
    /// disconnects live routers — resilience samplers draw a fresh seed
    /// in that case.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Applies a temporal burst process to every run's injection (see
    /// [`SweepConfig::burst`]).
    pub fn burstiness(mut self, spec: BurstSpec) -> Self {
        spec.validate();
        self.burst = spec;
        self
    }

    /// Co-schedules the spec's workloads as tenants on disjoint mesh
    /// tiles (see [`SweepConfig::tenants`]).
    pub fn with_tenants(mut self, spec: TenantSpec) -> Self {
        self.tenants = Some(spec);
        self
    }

    /// Disables warm-start: every rate-grid point re-runs its own
    /// warm-up phase (see [`SweepConfig::cold`]).
    pub fn cold(mut self) -> Self {
        self.cold = true;
        self
    }

    /// A cheap variant for CI smoke runs and unit tests: shorter windows,
    /// one seed, coarser bisection.
    pub fn quick() -> Self {
        SweepConfig {
            warmup: 200,
            measure: 800,
            seeds: vec![11],
            tolerance: 0.04,
            ..Self::paper()
        }
    }
}

/// One measured point of a load-latency curve (all seeds merged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Mean offered load, flits per node per cycle.
    pub offered: f64,
    /// Merged latency statistics of every completed seed run.
    pub latency: LatencyStats,
    /// Measured-packet throughput: measured flits delivered per node per
    /// measured injection cycle, averaged over completed seeds. Every
    /// admitted packet eventually completes (the network drains before a
    /// run finishes), so this tracks the offered load for every
    /// completed run regardless of injection mode; it only drops below
    /// it when a run hits the cycle cap.
    pub throughput: f64,
    /// Accepted throughput: flits ejected *inside the measurement
    /// window* per node per window cycle, averaged over completed seeds
    /// ([`crate::SimStats::accepted_flits`]). Below saturation this
    /// tracks the offered load; past it, it plateaus at the network's
    /// sustainable rate — under closed-loop injection this is the curve
    /// that flattens while open-loop offered load keeps rising, and it
    /// is the saturation criterion of closed-loop searches.
    pub accepted: f64,
    /// Total cycles simulated across completed seed runs (simulation-cost
    /// accounting for `perfcheck`).
    pub cycles: u64,
    /// Seeds that completed within the cycle cap.
    pub completed_runs: u32,
    /// False when any seed hit the cycle cap (overloaded/unstable).
    pub stable: bool,
    /// Extra hops versus the healthy baseline, summed over completed
    /// seeds (zero on healthy sweeps — see `SimStats::rerouted_hops`).
    pub rerouted_hops: u64,
    /// Packets dropped at admission for lack of a route, summed over
    /// completed seeds (see `SimStats::unreachable_pairs`).
    pub unreachable_pairs: u64,
    /// Per-tenant lanes, tenant-id indexed. Empty on single-tenant
    /// sweeps — every pre-existing field above keeps its meaning (they
    /// aggregate over all tenants).
    pub tenants: Vec<TenantLoadPoint>,
}

/// One tenant's slice of a [`LoadPoint`] (all seeds merged).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantLoadPoint {
    /// Merged latency statistics of the tenant's measured packets.
    pub latency: LatencyStats,
    /// Measured-packet throughput per tenant node per measured cycle.
    pub throughput: f64,
    /// Accepted throughput per tenant node per window cycle.
    pub accepted: f64,
}

impl LoadPoint {
    /// Mean packet latency, cycles.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }
}

/// Outcome of a bisection saturation search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationSearch {
    /// Mean latency at the zero-load probe rate, cycles.
    pub zero_load_latency: f64,
    /// Latency threshold that defines saturation, cycles.
    pub threshold: f64,
    /// Smallest probed load observed saturated. When
    /// [`saturated_in_range`](Self::saturated_in_range) is false the
    /// network never crossed the threshold and this holds the search's
    /// upper rate bound.
    pub saturation_load: f64,
    /// Highest probed load still below the threshold.
    pub last_stable_load: f64,
    /// Whether the threshold was crossed within the searched range.
    pub saturated_in_range: bool,
    /// Simulation runs spent (probes × seeds).
    pub runs: u32,
}

/// One latency-throughput curve: a measured rate grid plus the saturation
/// search outcome for the same traffic pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadCurve {
    /// Pattern / topology label.
    pub label: String,
    /// Measured grid points, in offered-load order.
    pub points: Vec<LoadPoint>,
    /// Saturation search outcome.
    pub saturation: SaturationSearch,
}

/// Batch runner: fans independent [`Simulator`] runs over a rate grid ×
/// seed matrix via [`parallel_map`] and reduces them to [`LoadPoint`]s.
///
/// The traffic pattern is supplied as a rate → [`TrafficMatrix`] generator
/// (see `hyppi_traffic::SyntheticPattern`), so the same runner sweeps
/// uniform, transpose, Soteriou or NPB-shaped loads.
pub struct SweepRunner<'a> {
    topo: &'a Topology,
    routes: &'a RoutingTable,
    /// Faulted topology + fault-avoiding routes when [`SweepConfig::faults`]
    /// is set; runs then simulate these, with `(topo, routes)` installed as
    /// the healthy baseline for `SimStats::rerouted_hops`.
    faulted: Option<(Topology, RoutingTable)>,
    sim: SimConfig,
    cfg: SweepConfig,
    /// Resolved tenant ownership when [`SweepConfig::tenants`] is set:
    /// attached to every run, and its per-tile node counts normalize the
    /// per-tenant throughput columns.
    tenant_map: Option<TenantMap>,
    /// Post-warm-up anchor snapshots, one per seed, keyed by the anchor
    /// matrix's content hash — one entry per traffic pattern swept
    /// through this runner, shared between `run_grid` and the
    /// saturation bisection (see the module docs on warm-start).
    anchors: Mutex<HashMap<u64, Arc<Vec<Snapshot>>>>,
}

/// FNV-1a over a matrix's shape and rate bit patterns: the anchor-cache
/// key that distinguishes traffic patterns swept through one runner.
fn matrix_key(m: &TrafficMatrix) -> u64 {
    fn eat(mut h: u64, v: u64) -> u64 {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
    let n = m.num_nodes();
    let mut h = eat(0xcbf2_9ce4_8422_2325, n as u64);
    for s in 0..n {
        for d in 0..n {
            h = eat(h, m.rate(NodeId(s as u16), NodeId(d as u16)).to_bits());
        }
    }
    h
}

impl<'a> SweepRunner<'a> {
    /// Builds a runner. `sim.max_cycles` is replaced by the sweep's
    /// per-run cap.
    pub fn new(
        topo: &'a Topology,
        routes: &'a RoutingTable,
        mut sim: SimConfig,
        cfg: SweepConfig,
    ) -> Self {
        assert!(!cfg.seeds.is_empty(), "at least one seed required");
        assert!(cfg.measure > 0, "measurement window must be non-empty");
        assert!(cfg.sat_multiple > 1.0, "saturation multiple must exceed 1");
        assert!(
            cfg.zero_load_rate > 0.0 && cfg.tolerance > 0.0,
            "rates must be positive"
        );
        assert!(
            (0.0..1.0).contains(&cfg.accept_epsilon),
            "accept_epsilon must be in [0, 1)"
        );
        sim.max_cycles = cfg.run_max_cycles;
        sim.max_outstanding = cfg.max_outstanding;
        sim.burst = cfg.burst;
        let tenant_map = cfg.tenants.as_ref().map(|t| t.map(topo));
        let faulted = match &cfg.faults {
            Some(spec) if !spec.is_empty() => {
                let ft = spec.apply(topo);
                let fr = RoutingTable::compute_xy_avoiding(&ft)
                    .unwrap_or_else(|e| panic!("fault spec disconnects the sweep mesh: {e}"));
                Some((ft, fr))
            }
            _ => None,
        };
        SweepRunner {
            topo,
            routes,
            faulted,
            sim,
            cfg,
            tenant_map,
            anchors: Mutex::new(HashMap::new()),
        }
    }

    /// The sweep configuration in force.
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    fn run_one(&self, matrix: &TrafficMatrix, seed: u64) -> Result<SimStats, SimError> {
        // Faulted sweeps simulate the faulted pair with the healthy pair
        // as the rerouted-hops baseline; healthy sweeps run as given.
        let (topo, routes, baseline) = match &self.faulted {
            Some((t, r)) => (t, r, Some((self.topo, self.routes))),
            None => (self.topo, self.routes, None),
        };
        if self.cfg.shards > 1 {
            let mut sim = ShardedSimulator::new(
                topo,
                routes,
                self.sim,
                ShardSpec::for_count(self.cfg.shards),
            )
            .with_threads(self.cfg.threads)
            .with_lookahead(self.cfg.lookahead);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.run_synthetic(matrix, self.cfg.warmup, self.cfg.measure, seed)
        } else {
            let mut sim = Simulator::new(topo, routes, self.sim);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.run_synthetic(matrix, self.cfg.warmup, self.cfg.measure, seed)
        }
    }

    /// Like [`run_one`](Self::run_one) but pausing at the cycle
    /// boundary `stop_at` — the anchor-producing run of a warm sweep.
    fn run_one_until(
        &self,
        matrix: &TrafficMatrix,
        seed: u64,
        stop_at: u64,
    ) -> Result<RunOutcome, SimError> {
        let (topo, routes, baseline) = match &self.faulted {
            Some((t, r)) => (t, r, Some((self.topo, self.routes))),
            None => (self.topo, self.routes, None),
        };
        let (warmup, measure) = (self.cfg.warmup, self.cfg.measure);
        if self.cfg.shards > 1 {
            let mut sim = ShardedSimulator::new(
                topo,
                routes,
                self.sim,
                ShardSpec::for_count(self.cfg.shards),
            )
            .with_threads(self.cfg.threads)
            .with_lookahead(self.cfg.lookahead);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.run_synthetic_until(matrix, warmup, measure, seed, stop_at)
        } else {
            let mut sim = Simulator::new(topo, routes, self.sim);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.run_synthetic_until(matrix, warmup, measure, seed, stop_at)
        }
    }

    /// Resumes one seed's anchor snapshot under `matrix` — the
    /// measurement leg of a warm sweep point.
    fn resume_one(
        &self,
        snap: &Snapshot,
        matrix: &TrafficMatrix,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        let (topo, routes, baseline) = match &self.faulted {
            Some((t, r)) => (t, r, Some((self.topo, self.routes))),
            None => (self.topo, self.routes, None),
        };
        let (warmup, measure) = (self.cfg.warmup, self.cfg.measure);
        if self.cfg.shards > 1 {
            let mut sim = ShardedSimulator::new(
                topo,
                routes,
                self.sim,
                ShardSpec::for_count(self.cfg.shards),
            )
            .with_threads(self.cfg.threads)
            .with_lookahead(self.cfg.lookahead);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.resume_synthetic(snap, matrix, warmup, measure, seed)
        } else {
            let mut sim = Simulator::new(topo, routes, self.sim);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.resume_synthetic(snap, matrix, warmup, measure, seed)
        }
    }

    /// Returns the pattern's per-seed anchor snapshots (building and
    /// caching them on first use), or `None` when the sweep must run
    /// cold: [`SweepConfig::cold`] is set, there is no warm-up phase to
    /// amortize, or an anchor run ended before the warm-up boundary
    /// (a cycle cap below `warmup`).
    fn warm_anchors<G>(&self, gen: &G) -> Option<Arc<Vec<Snapshot>>>
    where
        G: Fn(f64) -> TrafficMatrix + Sync,
    {
        if self.cfg.cold || self.cfg.warmup == 0 {
            return None;
        }
        let anchor = gen(self.cfg.zero_load_rate);
        let key = matrix_key(&anchor);
        if let Some(a) = self
            .anchors
            .lock()
            .expect("anchor cache not poisoned")
            .get(&key)
        {
            return Some(Arc::clone(a));
        }
        let outcomes = parallel_map(self.cfg.seeds.clone(), |seed| {
            self.run_one_until(&anchor, seed, self.cfg.warmup)
        });
        let mut snaps = Vec::with_capacity(outcomes.len());
        for out in outcomes {
            match out {
                Ok(RunOutcome::Paused(s)) => snaps.push(s),
                _ => return None,
            }
        }
        let arc = Arc::new(snaps);
        self.anchors
            .lock()
            .expect("anchor cache not poisoned")
            .insert(key, Arc::clone(&arc));
        Some(arc)
    }

    /// One merged point, warm when anchors are available.
    fn probe_point(&self, anchors: Option<&[Snapshot]>, matrix: &TrafficMatrix) -> LoadPoint {
        match anchors {
            Some(a) => {
                let offered = matrix.mean_injection();
                let jobs: Vec<(usize, u64)> = self.cfg.seeds.iter().copied().enumerate().collect();
                let outcomes =
                    parallel_map(jobs, |(si, seed)| self.resume_one(&a[si], matrix, seed));
                self.reduce(offered, outcomes)
            }
            None => self.run_point(matrix),
        }
    }

    /// Reduces per-seed outcomes for one offered load to a [`LoadPoint`].
    fn reduce(&self, offered: f64, outcomes: Vec<Result<SimStats, SimError>>) -> LoadPoint {
        let nodes = self.topo.num_nodes() as f64;
        let mut latency = LatencyStats::default();
        let mut completed = 0u32;
        let mut cycles = 0u64;
        let mut accepted_flits = 0u64;
        let mut rerouted_hops = 0u64;
        let mut unreachable_pairs = 0u64;
        let ntenants = self.tenant_map.as_ref().map_or(0, |tm| tm.tenants);
        let mut lanes = vec![TenantLoadPoint::default(); ntenants];
        let mut lane_accepted = vec![0u64; ntenants];
        for stats in outcomes.iter().flatten() {
            latency.merge(&stats.all);
            cycles += stats.cycles;
            accepted_flits += stats.accepted_flits;
            rerouted_hops += stats.rerouted_hops;
            unreachable_pairs += stats.unreachable_pairs;
            for (t, lane) in stats.tenants.iter().enumerate() {
                lanes[t].latency.merge(&lane.latency);
                lane_accepted[t] += lane.accepted_flits;
            }
            completed += 1;
        }
        let stable = completed as usize == outcomes.len();
        // Synthetic packets are 1 flit, so measured packets = measured
        // flits; normalize by the measured injection window.
        let (throughput, accepted) = if completed == 0 {
            (0.0, 0.0)
        } else {
            let window = f64::from(completed) * self.cfg.measure as f64 * nodes;
            (
                latency.count as f64 / window,
                accepted_flits as f64 / window,
            )
        };
        if completed > 0 {
            if let Some(tm) = &self.tenant_map {
                let mut tile_nodes = vec![0u64; ntenants];
                for &t in &tm.tenant_of_node {
                    tile_nodes[usize::from(t)] += 1;
                }
                for (t, lane) in lanes.iter_mut().enumerate() {
                    let window =
                        f64::from(completed) * self.cfg.measure as f64 * tile_nodes[t] as f64;
                    lane.throughput = lane.latency.count as f64 / window;
                    lane.accepted = lane_accepted[t] as f64 / window;
                }
            }
        }
        LoadPoint {
            offered,
            latency,
            throughput,
            accepted,
            cycles,
            completed_runs: completed,
            stable,
            rerouted_hops,
            unreachable_pairs,
            tenants: lanes,
        }
    }

    /// Runs every seed of one traffic matrix in parallel and merges them.
    ///
    /// Always cold (its own full warm-up), regardless of
    /// [`SweepConfig::cold`]: a single probed point never depends on
    /// anchor-cache state.
    pub fn run_point(&self, matrix: &TrafficMatrix) -> LoadPoint {
        let offered = matrix.mean_injection();
        let outcomes = parallel_map(self.cfg.seeds.clone(), |seed| self.run_one(matrix, seed));
        self.reduce(offered, outcomes)
    }

    /// Like [`Self::run_point`], but with a telemetry probe attached to
    /// the first seed's run (the remaining seeds run plain, in
    /// parallel). Always cold — the probed run executes its own warm-up
    /// so the probe observes inject events from cycle 0; a warm-start
    /// resume would skip them. The returned point is identical to what
    /// [`Self::run_point`] computes from cold runs: probes never
    /// perturb statistics.
    pub fn record_point<P: Probe>(&self, matrix: &TrafficMatrix, probe: &mut P) -> LoadPoint {
        let offered = matrix.mean_injection();
        let (&first, rest) = self.cfg.seeds.split_first().expect("at least one seed");
        let mut outcomes = vec![self.run_one_probed(matrix, first, probe)];
        outcomes.extend(parallel_map(rest.to_vec(), |seed| {
            self.run_one(matrix, seed)
        }));
        self.reduce(offered, outcomes)
    }

    /// [`Self::run_one`] with a probe attached (single-worker — see
    /// [`crate::telemetry`]).
    fn run_one_probed<P: Probe>(
        &self,
        matrix: &TrafficMatrix,
        seed: u64,
        probe: &mut P,
    ) -> Result<SimStats, SimError> {
        let (topo, routes, baseline) = match &self.faulted {
            Some((t, r)) => (t, r, Some((self.topo, self.routes))),
            None => (self.topo, self.routes, None),
        };
        if self.cfg.shards > 1 {
            let mut sim = ShardedSimulator::new(
                topo,
                routes,
                self.sim,
                ShardSpec::for_count(self.cfg.shards),
            )
            .with_threads(self.cfg.threads)
            .with_lookahead(self.cfg.lookahead);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.run_synthetic_probed(matrix, self.cfg.warmup, self.cfg.measure, seed, probe)
        } else {
            let mut sim = Simulator::new(topo, routes, self.sim);
            if let Some((bt, br)) = baseline {
                sim = sim.with_baseline(bt, br);
            }
            if let Some(tm) = &self.tenant_map {
                sim = sim.with_tenants(tm);
            }
            sim.run_synthetic_probed(matrix, self.cfg.warmup, self.cfg.measure, seed, probe)
        }
    }

    /// Sweeps a rate grid: all (rate × seed) runs fan out across threads
    /// at once, then each rate's seeds are merged. Points come back in
    /// `rates` order. Warm by default — each run resumes the seed's
    /// cached post-warm-up anchor instead of re-running warm-up (see the
    /// module docs and [`SweepConfig::cold`]).
    pub fn run_grid<G>(&self, gen: &G, rates: &[f64]) -> Vec<LoadPoint>
    where
        G: Fn(f64) -> TrafficMatrix + Sync,
    {
        let matrices: Vec<TrafficMatrix> = rates.iter().map(|&r| gen(r)).collect();
        let anchors = self.warm_anchors(gen);
        let mut jobs = Vec::with_capacity(rates.len() * self.cfg.seeds.len());
        for i in 0..rates.len() {
            for (si, &seed) in self.cfg.seeds.iter().enumerate() {
                jobs.push((i, si, seed));
            }
        }
        let outs = parallel_map(jobs, |(i, si, seed)| {
            let out = match &anchors {
                Some(a) => self.resume_one(&a[si], &matrices[i], seed),
                None => self.run_one(&matrices[i], seed),
            };
            (i, out)
        });
        let mut per_rate: Vec<Vec<Result<SimStats, SimError>>> =
            (0..rates.len()).map(|_| Vec::new()).collect();
        for (i, out) in outs {
            per_rate[i].push(out);
        }
        matrices
            .iter()
            .zip(per_rate)
            .map(|(m, outcomes)| self.reduce(m.mean_injection(), outcomes))
            .collect()
    }

    /// Mean latency at the zero-load probe rate.
    pub fn zero_load_latency<G>(&self, gen: &G) -> f64
    where
        G: Fn(f64) -> TrafficMatrix + Sync,
    {
        self.run_point(&gen(self.cfg.zero_load_rate)).mean_latency()
    }

    /// Bisection search for the saturation point: the smallest offered
    /// load in `(zero_load_rate, max_rate]` past the network's knee, or
    /// whose runs no longer complete. The criterion depends on the
    /// injection mode:
    ///
    /// * **Open loop** (`max_outstanding == 0`): mean latency exceeds
    ///   `sat_multiple ×` the zero-load latency. Mean latency grows
    ///   monotonically with offered load for the Bernoulli injectors
    ///   used here, which is what makes bisection sound.
    /// * **Closed loop**: accepted throughput falls below
    ///   `(1 - accept_epsilon) ×` the offered load — the accepted curve
    ///   has hit its plateau (Δaccepted/Δoffered has collapsed). The
    ///   latency multiple cannot work here: the NIC window bounds
    ///   network latency near `window × serviced-RTT`, so the mean never
    ///   crosses a 3× threshold cleanly; the accepted/offered ratio is
    ///   monotonically non-increasing in offered load instead, which
    ///   keeps bisection sound.
    ///
    /// The reported load is never below a probed stable rate.
    pub fn find_saturation<G>(&self, gen: &G, max_rate: f64) -> SaturationSearch
    where
        G: Fn(f64) -> TrafficMatrix + Sync,
    {
        assert!(
            max_rate > self.cfg.zero_load_rate,
            "degenerate search range"
        );
        let seeds = self.cfg.seeds.len() as u32;
        // Warm probes share the pattern's anchors with `run_grid`. The
        // zero-load probe is exact either way: it probes the anchor rate
        // itself, where warm and cold runs coincide bit-for-bit.
        let anchors = self.warm_anchors(gen);
        let probe = |m: &TrafficMatrix| self.probe_point(anchors.as_deref().map(Vec::as_slice), m);
        let zero_load_latency = probe(&gen(self.cfg.zero_load_rate)).mean_latency();
        let threshold = self.cfg.sat_multiple * zero_load_latency;
        let closed = self.cfg.max_outstanding > 0;
        let accept_floor = 1.0 - self.cfg.accept_epsilon;
        let sample_cycles =
            self.cfg.measure as f64 * self.topo.num_nodes() as f64 * f64::from(seeds);
        let saturated = |p: &LoadPoint| {
            if !p.stable {
                return true;
            }
            if closed {
                // The accepted count is a Bernoulli-thinned sample with
                // σ/μ ≈ 1/√(offered · nodes · measure · seeds); widen the
                // plateau floor by 3σ so a short-window low-load probe is
                // not declared saturated by sampling noise alone.
                let expected = p.offered * sample_cycles;
                let noise = if expected > 0.0 {
                    3.0 / expected.sqrt()
                } else {
                    0.0
                };
                p.accepted < (accept_floor - noise) * p.offered
            } else {
                p.mean_latency() > threshold
            }
        };

        let mut lo = self.cfg.zero_load_rate;
        let mut hi = max_rate;
        let mut runs = 2 * seeds; // zero-load probe + top-of-range probe
        if !saturated(&probe(&gen(hi))) {
            // The network never saturates within the searched range.
            return SaturationSearch {
                zero_load_latency,
                threshold,
                saturation_load: hi,
                last_stable_load: hi,
                saturated_in_range: false,
                runs,
            };
        }
        while hi - lo > self.cfg.tolerance {
            let mid = 0.5 * (lo + hi);
            runs += seeds;
            if saturated(&probe(&gen(mid))) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        SaturationSearch {
            zero_load_latency,
            threshold,
            saturation_load: hi,
            last_stable_load: lo,
            saturated_in_range: true,
            runs,
        }
    }

    /// One full curve: the measured grid plus the saturation search.
    pub fn run_curve<G>(
        &self,
        label: impl Into<String>,
        gen: &G,
        rates: &[f64],
        max_rate: f64,
    ) -> LoadCurve
    where
        G: Fn(f64) -> TrafficMatrix + Sync,
    {
        LoadCurve {
            label: label.into(),
            points: self.run_grid(gen, rates),
            saturation: self.find_saturation(gen, max_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyppi_phys::{Gbps, LinkTechnology};
    use hyppi_topology::{mesh, MeshSpec, NodeId};
    use hyppi_traffic::SyntheticPattern;

    fn small_mesh(w: u16, h: u16) -> Topology {
        mesh(MeshSpec {
            width: w,
            height: h,
            core_spacing_mm: 1.0,
            base_tech: LinkTechnology::Electronic,
            capacity: Gbps::new(50.0),
        })
    }

    // -- parallel_map (moved from hyppi-analytic) ------------------------

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_single_item() {
        assert_eq!(parallel_map(vec![7], |x: u64| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_heavier_work_still_ordered() {
        let out = parallel_map((0..32).collect(), |x: u64| {
            // Unequal work per item to shuffle completion order.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    // -- sweep runner ----------------------------------------------------

    #[test]
    fn zero_load_latency_matches_topology() {
        // 2×1 mesh: every packet crosses one hop, 3 + 1 + 3 = 7 cycles; at
        // the zero-load probe rate contention is negligible.
        let topo = small_mesh(2, 1);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let zl = runner.zero_load_latency(&gen);
        assert!((6.9..8.0).contains(&zl), "zero-load latency {zl}");
    }

    #[test]
    fn grid_latency_grows_with_load() {
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let points = runner.run_grid(&gen, &[0.02, 0.50]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.stable && p.latency.count > 0));
        assert!(points[1].mean_latency() > points[0].mean_latency());
        // Percentiles order correctly on a congested point.
        let p = &points[1];
        assert!(p.latency.p50() <= p.latency.p95());
        assert!(p.latency.p95() <= p.latency.p99());
        assert!(p.latency.p99() <= p.latency.max);
        // Accepted throughput tracks offered load while stable.
        assert!(points[0].throughput > 0.0);
    }

    #[test]
    fn saturation_search_brackets_and_is_deterministic() {
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let a = runner.find_saturation(&gen, 1.0);
        assert!(a.saturated_in_range, "4×4 uniform saturates below 1.0");
        // The reported saturation load is bracketed by construction.
        assert!(a.saturation_load > a.last_stable_load);
        assert!(a.saturation_load - a.last_stable_load <= runner.config().tolerance + 1e-12);
        assert!(a.saturation_load > runner.config().zero_load_rate);
        assert!(a.saturation_load < 1.0);
        // Same seeds ⇒ identical outcome, including the probe count.
        let b = runner.find_saturation(&gen, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn unsaturable_range_reports_no_crossing() {
        // 2×1 mesh searched only up to a tiny rate: never saturates.
        let topo = small_mesh(2, 1);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let s = runner.find_saturation(&gen, 0.02);
        assert!(!s.saturated_in_range);
        assert_eq!(s.saturation_load, 0.02);
        assert_eq!(s.last_stable_load, 0.02);
    }

    #[test]
    fn run_curve_combines_grid_and_search() {
        let topo = small_mesh(3, 3);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let curve = runner.run_curve("uniform 3x3", &gen, &[0.02, 0.10], 1.0);
        assert_eq!(curve.label, "uniform 3x3");
        assert_eq!(curve.points.len(), 2);
        assert!(curve.saturation.zero_load_latency > 0.0);
    }

    #[test]
    fn sharded_sweep_points_match_single_shard() {
        // The shards knob is a wall-clock lever only: every LoadPoint —
        // histogram, tails, throughput, cycle counts — must be identical.
        let topo = small_mesh(6, 6);
        let routes = RoutingTable::compute_xy(&topo);
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let single = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let sharded = SweepRunner::new(
            &topo,
            &routes,
            SimConfig::paper(),
            SweepConfig::quick().with_shards(4),
        );
        for rate in [0.04, 0.20] {
            let a = single.run_point(&gen(rate));
            let b = sharded.run_point(&gen(rate));
            assert_eq!(a, b, "rate {rate}");
        }
    }

    #[test]
    fn closed_loop_accepted_tracks_offered_below_saturation() {
        // Far below the knee, the window never binds: the accepted curve
        // and the measured-packet curve both track the offered load.
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(
            &topo,
            &routes,
            SimConfig::paper(),
            SweepConfig::quick().closed_loop(8),
        );
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let p = runner.run_point(&gen(0.05));
        assert!(p.stable);
        assert!(
            (p.accepted - p.offered).abs() < 0.25 * p.offered,
            "accepted {} vs offered {}",
            p.accepted,
            p.offered
        );
        // Closed-loop latency is network latency: bounded near zero-load
        // values at this rate, nowhere near a queueing blow-up.
        assert!(p.mean_latency() < 40.0, "latency {}", p.mean_latency());
    }

    #[test]
    fn closed_loop_saturation_brackets_on_accepted_plateau() {
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(
            &topo,
            &routes,
            SimConfig::paper(),
            SweepConfig::quick().closed_loop(16),
        );
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let a = runner.find_saturation(&gen, 1.0);
        assert!(a.saturated_in_range, "accepted load plateaus below 1.0");
        assert!(a.saturation_load > a.last_stable_load);
        assert!(a.saturation_load - a.last_stable_load <= runner.config().tolerance + 1e-12);
        // Determinism, including the probe count.
        let b = runner.find_saturation(&gen, 1.0);
        assert_eq!(a, b);
        // Past the reported saturation load the accepted curve really has
        // left the offered-load diagonal.
        let past = runner.run_point(&gen((a.saturation_load * 1.5).min(1.0)));
        assert!(past.accepted < past.offered * (1.0 - runner.config().accept_epsilon));
    }

    // -- warm-start ------------------------------------------------------

    #[test]
    fn warm_grid_matches_cold_at_anchor_rate() {
        // At the anchor rate a warm point resumes its own anchor run's
        // pause, so it must be bit-for-bit identical to the cold point.
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let warm = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let cold = SweepRunner::new(
            &topo,
            &routes,
            SimConfig::paper(),
            SweepConfig::quick().cold(),
        );
        let rate = SweepConfig::quick().zero_load_rate;
        let w = warm.run_grid(&gen, &[rate]);
        let c = cold.run_grid(&gen, &[rate]);
        assert_eq!(w, c);
    }

    #[test]
    fn warm_grid_is_deterministic_and_engine_independent() {
        let topo = small_mesh(6, 6);
        let routes = RoutingTable::compute_xy(&topo);
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let single = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let sharded = SweepRunner::new(
            &topo,
            &routes,
            SimConfig::paper(),
            SweepConfig::quick().with_shards(4),
        );
        let rates = [0.02, 0.45];
        let a = single.run_grid(&gen, &rates);
        // Repeat on the same runner: anchors now come from the cache.
        let b = single.run_grid(&gen, &rates);
        assert_eq!(a, b);
        // Warm resume is partition-independent like everything else.
        let c = sharded.run_grid(&gen, &rates);
        assert_eq!(a, c);
        // The physics survives the protocol change.
        assert!(a.iter().all(|p| p.stable && p.latency.count > 0));
        assert!(a[1].mean_latency() > a[0].mean_latency());
    }

    #[test]
    fn warm_saturation_search_is_deterministic() {
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let runner = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let a = runner.find_saturation(&gen, 1.0);
        assert!(a.saturated_in_range);
        assert!(a.saturation_load > a.last_stable_load);
        let b = runner.find_saturation(&gen, 1.0);
        assert_eq!(a, b);
        // The zero-load probe is at the anchor rate: exactly the cold value.
        assert_eq!(a.zero_load_latency, runner.zero_load_latency(&gen));
    }

    #[test]
    fn warm_faulted_sweep_still_reroutes() {
        // Warm anchors carry the faulted plan's fingerprint; the
        // resilience counters survive the warm protocol.
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let spec = FaultSpec::none().dead_link(NodeId(5), NodeId(6));
        let runner = SweepRunner::new(
            &topo,
            &routes,
            SimConfig::paper(),
            SweepConfig::quick().faults(spec),
        );
        let points = runner.run_grid(&gen, &[0.10]);
        assert!(points[0].stable);
        assert!(points[0].rerouted_hops > 0);
    }

    #[test]
    fn faulted_sweep_reports_resilience_counters() {
        let topo = small_mesh(4, 4);
        let routes = RoutingTable::compute_xy(&topo);
        let gen = |r: f64| SyntheticPattern::Uniform.matrix(&topo, r);
        let spec = FaultSpec::none()
            .dead_link(NodeId(5), NodeId(6))
            .degraded_span(NodeId(9), NodeId(10));
        let faulted = SweepRunner::new(
            &topo,
            &routes,
            SimConfig::paper(),
            SweepConfig::quick().faults(spec),
        );
        let p = faulted.run_point(&gen(0.10));
        assert!(p.stable);
        assert!(p.rerouted_hops > 0, "dead link never forced a detour");
        assert_eq!(p.unreachable_pairs, 0, "no dead routers in this spec");
        // A healthy runner on the same grid reports zeros.
        let healthy = SweepRunner::new(&topo, &routes, SimConfig::paper(), SweepConfig::quick());
        let hp = healthy.run_point(&gen(0.10));
        assert_eq!(hp.rerouted_hops, 0);
        assert_eq!(hp.unreachable_pairs, 0);
        // Faults cost latency at equal load.
        assert!(p.mean_latency() >= hp.mean_latency());
    }

    #[test]
    #[should_panic(expected = "disconnects the sweep mesh")]
    fn faulted_sweep_rejects_disconnecting_spec() {
        // Killing both horizontal spans of a 2×2 mesh splits the live
        // nodes into two connected components — an unroutable spec.
        let topo = small_mesh(2, 2);
        let routes = RoutingTable::compute_xy(&topo);
        let cfg = SweepConfig::quick().faults(
            FaultSpec::none()
                .dead_link(NodeId(0), NodeId(1))
                .dead_link(NodeId(2), NodeId(3)),
        );
        let _ = SweepRunner::new(&topo, &routes, SimConfig::paper(), cfg);
    }

    #[test]
    #[should_panic(expected = "window must admit")]
    fn rejects_zero_window() {
        let _ = SweepConfig::quick().closed_loop(0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_list() {
        let topo = small_mesh(2, 1);
        let routes = RoutingTable::compute_xy(&topo);
        let cfg = SweepConfig {
            seeds: vec![],
            ..SweepConfig::quick()
        };
        let _ = SweepRunner::new(&topo, &routes, SimConfig::paper(), cfg);
    }
}
